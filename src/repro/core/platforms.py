"""Multi-platform verification (the paper's §8 closing remark).

Rehearsal's analysis is platform-dependent: facts like ``$osfamily``
steer conditionals, and package file listings differ between
distributions.  The paper's artifact re-verifies per platform via a
command-line flag; this module packages that workflow — platform
profiles bundling facts with a package database — and adds the
suggested extension: verifying one manifest across *several* platforms
in one call and reporting where verdicts diverge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.determinism import DeterminismOptions
from repro.core.pipeline import Rehearsal, VerificationReport
from repro.resources.compiler import ModelContext
from repro.resources.package_db import PackageDatabase, PackageInfo


def _centos_packages() -> Dict[str, PackageInfo]:
    """RPM-flavoured listings for the packages the corpus exercises —
    same services, Red Hat paths and names."""

    def pkg(name, files, depends=()):
        return PackageInfo(name, tuple(files), tuple(depends))

    table = [
        pkg(
            "httpd",
            [
                "/usr/sbin/httpd",
                "/etc/httpd/conf/httpd.conf",
                "/etc/httpd/conf.d/welcome.conf",
                "/var/www/html/index.html",
                "/usr/share/doc/httpd/copyright",
            ],
        ),
        pkg(
            "ntp",
            [
                "/usr/sbin/ntpd",
                "/etc/ntp.conf",
                "/usr/share/doc/ntp/copyright",
            ],
        ),
        pkg(
            "bind",
            [
                "/usr/sbin/named",
                "/etc/named.conf",
                "/var/named/named.ca",
                "/usr/share/doc/bind/copyright",
            ],
        ),
        pkg(
            "rsyslog",
            [
                "/usr/sbin/rsyslogd",
                "/etc/rsyslog.conf",
                "/etc/rsyslog.d/listen.conf",
                "/usr/share/doc/rsyslog/copyright",
            ],
        ),
        pkg(
            "xinetd",
            [
                "/usr/sbin/xinetd",
                "/etc/xinetd.conf",
                "/etc/xinetd.d/chargen-dgram",
                "/usr/share/doc/xinetd/copyright",
            ],
        ),
        pkg(
            "nginx",
            [
                "/usr/sbin/nginx",
                "/etc/nginx/nginx.conf",
                "/etc/nginx/conf.d/default.conf",
                "/usr/share/doc/nginx/copyright",
            ],
        ),
    ]
    return {info.name: info for info in table}


@dataclass
class PlatformProfile:
    """Everything platform-specific the pipeline needs."""

    name: str
    facts: Dict[str, object]
    package_db_factory: Callable[[], PackageDatabase] = PackageDatabase

    def context(self) -> ModelContext:
        return ModelContext(
            package_db=self.package_db_factory(), platform=self.name
        )


UBUNTU = PlatformProfile(
    name="ubuntu",
    facts={
        "operatingsystem": "Ubuntu",
        "osfamily": "Debian",
        "operatingsystemrelease": "14.04",
        "lsbdistcodename": "trusty",
    },
)

CENTOS = PlatformProfile(
    name="centos",
    facts={
        "operatingsystem": "CentOS",
        "osfamily": "RedHat",
        "operatingsystemrelease": "7.2",
        "lsbdistcodename": "core",
    },
    package_db_factory=lambda: PackageDatabase(extra=_centos_packages()),
)

PLATFORMS: Dict[str, PlatformProfile] = {
    "ubuntu": UBUNTU,
    "centos": CENTOS,
}


@dataclass
class CrossPlatformReport:
    """Per-platform verification plus a consistency summary."""

    reports: Dict[str, VerificationReport] = field(default_factory=dict)

    @property
    def consistent(self) -> bool:
        """Same determinism/idempotence verdicts on every platform."""
        verdicts = {
            (r.deterministic, r.idempotent, r.error is not None)
            for r in self.reports.values()
        }
        return len(verdicts) <= 1

    @property
    def all_ok(self) -> bool:
        return all(r.ok for r in self.reports.values())

    def divergences(self) -> List[str]:
        out = []
        if self.consistent:
            return out
        for name, report in sorted(self.reports.items()):
            if report.error is not None:
                out.append(f"{name}: error — {report.error}")
            else:
                out.append(
                    f"{name}: deterministic={report.deterministic} "
                    f"idempotent={report.idempotent}"
                )
        return out


def verify_across_platforms(
    source: str,
    platforms: Sequence[str] = ("ubuntu", "centos"),
    options: Optional[DeterminismOptions] = None,
    node_name: str = "default",
) -> CrossPlatformReport:
    """Run the full verification under each platform profile."""
    report = CrossPlatformReport()
    for key in platforms:
        profile = PLATFORMS.get(key)
        if profile is None:
            raise KeyError(
                f"unknown platform {key!r}; available: {sorted(PLATFORMS)}"
            )
        tool = Rehearsal(
            context=profile.context(),
            options=options,
            facts=profile.facts,
            node_name=node_name,
        )
        report.reports[key] = tool.verify(source, name=f"<{key}>")
    return report
