# ntp — time synchronization (re-creation of the Forge ntp module the
# paper evaluates in §6).
#
# SEEDED BUG (the Fig. 3a pattern): File['/etc/ntp.conf'] overwrites a
# file that Package['ntp'] also installs, with no ordering between the
# two.  Run the file resource first and the subsequent package install
# collides with (or is clobbered by) the hand-written configuration —
# the final state depends on the order Puppet happens to choose.

class ntp {
  $servers = ['0.pool.ntp.org', '1.pool.ntp.org', '2.pool.ntp.org']

  package { 'ntp':
    ensure => installed,
  }

  # BUG: missing require => Package['ntp'] (see ntp-fixed.pp).
  file { '/etc/ntp.conf':
    ensure  => file,
    content => "# managed by puppet\nserver ${servers} iburst\ndriftfile /var/lib/ntp/ntp.drift\nrestrict default nomodify notrap\n",
  }

  service { 'ntp':
    ensure    => running,
    enable    => true,
    subscribe => File['/etc/ntp.conf'],
  }
}

include ntp
