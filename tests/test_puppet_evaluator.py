"""Tests for manifest evaluation: scoping, defines, classes,
collectors, stages, dependency edges, and graph construction."""

import networkx as nx
import pytest

from repro.errors import DependencyCycleError, PuppetEvalError
from repro.puppet import compile_catalog, evaluate_manifest
from repro.puppet.values import RefValue


def graph_of(source, **kwargs):
    catalog = evaluate_manifest(source, **kwargs)
    return catalog.build_graph()


class TestBasicResources:
    def test_single_resource(self):
        catalog = evaluate_manifest("package{'vim': ensure => present }")
        entry = catalog.get("package", "vim")
        assert entry is not None
        assert entry.resource.get_str("ensure") == "present"

    def test_multiple_titles(self):
        catalog = evaluate_manifest(
            "package{['m4', 'make']: ensure => present }"
        )
        assert catalog.has("package", "m4")
        assert catalog.has("package", "make")

    def test_duplicate_resource_rejected(self):
        with pytest.raises(PuppetEvalError, match="duplicate"):
            evaluate_manifest(
                "package{'vim': } package{'vim': ensure => present }"
            )

    def test_paper_intro_manifest(self):
        """The three-resource manifest from §1."""
        catalog = evaluate_manifest(
            """
            package{'vim': ensure => present }
            file{'/home/carol/.vimrc': content => 'syntax on' }
            user{'carol': ensure => present, managehome => true }
            """
        )
        assert len(catalog.primitive_resources()) == 3


class TestVariablesAndInterpolation:
    def test_assignment_and_use(self):
        catalog = evaluate_manifest(
            """
            $content = 'hello'
            file{'/motd': content => $content }
            """
        )
        assert catalog.get("file", "/motd").resource.get_str("content") == (
            "hello"
        )

    def test_interpolation(self):
        catalog = evaluate_manifest(
            """
            $user = 'carol'
            file{"/home/${user}/.vimrc": content => "syntax on" }
            """
        )
        assert catalog.has("file", "/home/carol/.vimrc")

    def test_dollar_var_form(self):
        catalog = evaluate_manifest(
            """
            $name = 'web'
            file{"/etc/$name.conf": content => 'x' }
            """
        )
        assert catalog.has("file", "/etc/web.conf")

    def test_reassignment_rejected(self):
        with pytest.raises(PuppetEvalError, match="reassign"):
            evaluate_manifest("$x = 1 $x = 2")

    def test_facts_available(self):
        catalog = evaluate_manifest(
            """
            if $osfamily == 'Debian' {
              package{'apt-tools': ensure => present }
            }
            """
        )
        assert catalog.has("package", "apt-tools")

    def test_custom_facts(self):
        catalog = evaluate_manifest(
            "file{\"/etc/$color\": content => 'x' }",
            facts={"color": "blue"},
        )
        assert catalog.has("file", "/etc/blue")

    def test_undefined_variable_interpolates_empty(self):
        catalog = evaluate_manifest('file{"/etc/${nope}conf": content => "x"}')
        assert catalog.has("file", "/etc/conf")


class TestDefines:
    SOURCE = """
    define myuser() {
      user {"$title":
        ensure => present,
        managehome => true
      }
      file {"/home/${title}/.vimrc":
        content => "syntax on"
      }
      User["$title"] -> File["/home/${title}/.vimrc"]
    }
    myuser {"alice": }
    myuser {"carol": }
    """

    def test_paper_fig2(self):
        catalog = evaluate_manifest(self.SOURCE)
        assert catalog.has("user", "alice")
        assert catalog.has("user", "carol")
        assert catalog.has("file", "/home/alice/.vimrc")
        graph = catalog.build_graph()
        assert graph.has_edge("User['alice']", "File['/home/alice/.vimrc']")
        assert graph.has_edge("User['carol']", "File['/home/carol/.vimrc']")

    def test_define_params_with_defaults(self):
        catalog = evaluate_manifest(
            """
            define tool($ensure = 'present') {
              package{"$title": ensure => $ensure }
            }
            tool{'vim': }
            tool{'emacs': ensure => 'absent' }
            """
        )
        assert catalog.get("package", "vim").resource.get_str("ensure") == (
            "present"
        )
        assert catalog.get("package", "emacs").resource.get_str("ensure") == (
            "absent"
        )

    def test_missing_required_param(self):
        with pytest.raises(PuppetEvalError, match="missing required"):
            evaluate_manifest(
                "define t($x) { package{\"$title\": } } t{'a': }"
            )

    def test_unknown_param_rejected(self):
        with pytest.raises(PuppetEvalError, match="unknown parameter"):
            evaluate_manifest(
                "define t() { package{\"$title\": } } t{'a': bogus => 1 }"
            )

    def test_dependency_on_define_instance_expands(self):
        """An edge to a define instance orders against its contents."""
        catalog = evaluate_manifest(
            """
            define site() {
              file{"/srv/$title": ensure => directory }
            }
            site{'blog': }
            package{'nginx': ensure => present }
            Package['nginx'] -> Site['blog']
            """
        )
        graph = catalog.build_graph()
        assert graph.has_edge("Package['nginx']", "File['/srv/blog']")


class TestClasses:
    def test_include_idempotent(self):
        catalog = evaluate_manifest(
            """
            class base { package{'curl': ensure => present } }
            include base
            include base
            """
        )
        assert catalog.has("package", "curl")

    def test_class_params(self):
        catalog = evaluate_manifest(
            """
            class web($port = 80) {
              file{'/etc/port': content => "$port" }
            }
            class { 'web': port => 8080 }
            """
        )
        assert catalog.get("file", "/etc/port").resource.get_str(
            "content"
        ) == "8080"

    def test_class_scope_access(self):
        catalog = evaluate_manifest(
            """
            class settings { $docroot = '/var/www' }
            include settings
            file{"${settings::docroot}/index.html": content => 'hi' }
            """
        )
        assert catalog.has("file", "/var/www/index.html")

    def test_inheritance(self):
        catalog = evaluate_manifest(
            """
            class base { $dir = '/srv' }
            class app inherits base {
              file{"$dir/app": ensure => directory }
            }
            include app
            """
        )
        assert catalog.has("file", "/srv/app")

    def test_class_dependency_expands_to_members(self):
        catalog = evaluate_manifest(
            """
            class a { package{'pa': ensure => present } }
            class b { package{'pb': ensure => present } }
            include a
            include b
            Class['a'] -> Class['b']
            """
        )
        graph = catalog.build_graph()
        assert graph.has_edge("Package['pa']", "Package['pb']")

    def test_unknown_class(self):
        with pytest.raises(PuppetEvalError, match="unknown class"):
            evaluate_manifest("include nothere")


class TestEdges:
    def test_chain_arrow(self):
        graph = graph_of(
            """
            package{'a': } package{'b': }
            Package['a'] -> Package['b']
            """
        )
        assert graph.has_edge("Package['a']", "Package['b']")

    def test_require_metaparam(self):
        graph = graph_of(
            """
            package{'a': }
            file{'/f': content => 'x', require => Package['a'] }
            """
        )
        assert graph.has_edge("Package['a']", "File['/f']")

    def test_before_metaparam(self):
        graph = graph_of(
            """
            package{'a': before => File['/f'] }
            file{'/f': content => 'x' }
            """
        )
        assert graph.has_edge("Package['a']", "File['/f']")

    def test_notify_subscribe(self):
        graph = graph_of(
            """
            file{'/conf': content => 'x', notify => Service['svc'] }
            service{'svc': ensure => running }
            service{'svc2': ensure => running, subscribe => File['/conf'] }
            """
        )
        assert graph.has_edge("File['/conf']", "Service['svc']")
        assert graph.has_edge("File['/conf']", "Service['svc2']")

    def test_require_array(self):
        graph = graph_of(
            """
            package{'a': } package{'b': }
            file{'/f': content => 'x', require => [Package['a'], Package['b']] }
            """
        )
        assert graph.has_edge("Package['a']", "File['/f']")
        assert graph.has_edge("Package['b']", "File['/f']")

    def test_cycle_detected(self):
        """The Fig. 3b composition failure: cpp and ocaml modules with
        contradictory false dependencies."""
        with pytest.raises(DependencyCycleError):
            graph_of(
                """
                define cpp() {
                  package{'m4': ensure => present }
                  package{'make': ensure => present }
                  Package['m4'] -> Package['make']
                }
                define ocaml() {
                  package{'ocaml': ensure => present }
                  Package['make'] -> Package['m4']
                }
                cpp{'dev': }
                ocaml{'dev2': }
                """
            )

    def test_file_autorequire_parent(self):
        graph = graph_of(
            """
            file{'/srv': ensure => directory }
            file{'/srv/app': ensure => directory }
            """
        )
        assert graph.has_edge("File['/srv']", "File['/srv/app']")

    def test_undeclared_reference(self):
        with pytest.raises(PuppetEvalError, match="undeclared"):
            graph_of("Package['ghost'] -> Package['ghost2']")


class TestVirtualAndCollectors:
    def test_virtual_not_in_graph(self):
        graph = graph_of("@user{'carol': ensure => present }")
        assert graph.number_of_nodes() == 0

    def test_collector_realizes(self):
        graph = graph_of(
            """
            @user{'carol': ensure => present }
            User <| |>
            """
        )
        assert "User['carol']" in graph.nodes

    def test_realize_function(self):
        graph = graph_of(
            """
            @user{'carol': ensure => present }
            realize(User['carol'])
            """
        )
        assert "User['carol']" in graph.nodes

    def test_collector_query_filters(self):
        catalog = evaluate_manifest(
            """
            @user{'carol': ensure => present, groups => 'admin' }
            @user{'dave': ensure => present, groups => 'dev' }
            User <| groups == 'admin' |>
            """
        )
        assert not catalog.get("user", "carol").virtual
        assert catalog.get("user", "dave").virtual

    def test_paper_collector_override(self):
        """§3.1: collectors update attributes non-modularly."""
        catalog = evaluate_manifest(
            """
            file{'/home/carol/notes': content => 'x', owner => 'carol' }
            file{'/home/dave/notes': content => 'y', owner => 'dave' }
            File <| owner == 'carol' |> { mode => 'go-rwx' }
            """
        )
        assert catalog.get("file", "/home/carol/notes").resource.get_str(
            "mode"
        ) == "go-rwx"
        assert catalog.get("file", "/home/dave/notes").resource.get_str(
            "mode"
        ) is None

    def test_collector_in_chain(self):
        graph = graph_of(
            """
            package{'pkg': }
            file{'/a.conf': content => 'x', tagged => 'conf' }
            file{'/b.conf': content => 'y', tagged => 'conf' }
            Package['pkg'] -> File <| tagged == 'conf' |>
            """
        )
        assert graph.has_edge("Package['pkg']", "File['/a.conf']")
        assert graph.has_edge("Package['pkg']", "File['/b.conf']")

    def test_exported_resources_rejected(self):
        with pytest.raises(PuppetEvalError, match="exported"):
            evaluate_manifest("@@user{'x': }")


class TestStages:
    def test_stage_ordering(self):
        graph = graph_of(
            """
            stage{'pre': before => Stage['main'] }
            class prep { package{'keyring': ensure => present } }
            class app { package{'server': ensure => present } }
            class { 'prep': stage => 'pre' }
            include app
            """
        )
        assert graph.has_edge("Package['keyring']", "Package['server']")

    def test_default_stage_is_main(self):
        catalog = evaluate_manifest(
            """
            class app { package{'x': ensure => present } }
            include app
            """
        )
        members = catalog.expand_ref(RefValue("stage", "main"))
        assert [str(m.ref) for m in members] == ["Package['x']"]


class TestControlFlowAndDefaults:
    def test_case_selects_package(self):
        catalog = evaluate_manifest(
            """
            case $operatingsystem {
              'Ubuntu', 'Debian': { $web = 'apache2' }
              default: { $web = 'httpd' }
            }
            package{$web: ensure => present }
            """
        )
        assert catalog.has("package", "apache2")

    def test_selector(self):
        catalog = evaluate_manifest(
            """
            $pkg = $osfamily ? { 'Debian' => 'apache2', default => 'httpd' }
            package{$pkg: }
            """
        )
        assert catalog.has("package", "apache2")

    def test_resource_defaults_applied(self):
        catalog = evaluate_manifest(
            """
            File { owner => 'root' }
            file{'/f': content => 'x' }
            file{'/g': content => 'y', owner => 'carol' }
            """
        )
        assert catalog.get("file", "/f").resource.get_str("owner") == "root"
        assert catalog.get("file", "/g").resource.get_str("owner") == "carol"

    def test_override_statement(self):
        catalog = evaluate_manifest(
            """
            file{'/f': content => 'x' }
            File['/f'] { content => 'overridden' }
            """
        )
        assert catalog.get("file", "/f").resource.get_str("content") == (
            "overridden"
        )

    def test_fail_function(self):
        with pytest.raises(PuppetEvalError, match="fail"):
            evaluate_manifest("fail('boom')")

    def test_notice_collected(self):
        from repro.puppet import Evaluator, parse_manifest

        ev = Evaluator()
        ev.evaluate(parse_manifest("notice('hello')"))
        assert ev.messages == ["notice: hello"]

    def test_defined_guard_pattern(self):
        """The footnote-4 idiom guarding shared resources."""
        catalog = evaluate_manifest(
            """
            if !defined(Package['make']) {
              package{'make': ensure => present }
            }
            if !defined(Package['make']) {
              package{'make': ensure => present }
            }
            """
        )
        assert catalog.has("package", "make")

    def test_node_block(self):
        catalog = evaluate_manifest(
            """
            node 'web1' { package{'nginx': } }
            node default { package{'vim': } }
            """,
            node_name="web1",
        )
        assert catalog.has("package", "nginx")
        assert not catalog.has("package", "vim")

    def test_node_default_fallback(self):
        catalog = evaluate_manifest(
            """
            node 'web1' { package{'nginx': } }
            node default { package{'vim': } }
            """,
            node_name="db9",
        )
        assert catalog.has("package", "vim")


class TestEndToEnd:
    def test_compile_catalog(self):
        catalog = evaluate_manifest(
            """
            package{'ntp': ensure => present }
            file{'/etc/ntp.conf': content => 'pool example', require => Package['ntp'] }
            service{'ntp-svc': ensure => running, subscribe => File['/etc/ntp.conf'] }
            """
        )
        graph, programs = compile_catalog(catalog)
        assert set(graph.nodes) == set(programs)
        assert graph.has_edge("Package['ntp']", "File['/etc/ntp.conf']")
        assert nx.is_directed_acyclic_graph(graph)
