# rehearsal-fuzz reproducer
# seed: 42
# case-id: 41
# generator-version: 1
# bug-class: ssh-before-user
# found-by: sabotage-drill
# disagreement: missed_nondet
# expected-deterministic: false
# expected-idempotent: none

user {
  'bob':
    ensure => 'present',
}
ssh_authorized_key {
  'bob-key':
    key => 'AAAAbob',
    user => 'bob',
}
