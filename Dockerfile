# Containerized `rehearsal serve`: the long-running verification
# daemon (see docs/serve.md).  Build and run:
#
#     docker build -t rehearsal .
#     docker run --rm -p 8421:8421 rehearsal
#     curl http://localhost:8421/healthz
#
# Extra `rehearsal serve` flags append to the entrypoint, e.g.
# `docker run ... rehearsal --workers 4 --quota 10`.  The verdict
# cache lives in /var/cache/rehearsal; mount a volume there to keep
# verdicts across container restarts.

FROM python:3.12-slim

WORKDIR /opt/rehearsal

# Install the runtime dependency first so source edits don't bust the
# pip layer (install_requires is the source of truth; this mirrors it).
RUN pip install --no-cache-dir networkx

COPY setup.py README.md ./
COPY src ./src
RUN pip install --no-cache-dir .

RUN mkdir -p /var/cache/rehearsal

EXPOSE 8421

# --host 0.0.0.0: the daemon defaults to loopback, which is unreachable
# through Docker port publishing.
ENTRYPOINT ["rehearsal", "serve", "--host", "0.0.0.0", "--port", "8421", \
            "--cache-dir", "/var/cache/rehearsal"]
