"""Finite path-state domains and symbolic values.

Each path's state ranges over the finite domain
``{dir, dne} ∪ {file(c) : c ∈ contents(p)}`` where ``contents(p)`` is
computed by a content-flow analysis over the program (literals written
to the path, contents reachable through ``cp`` chains, contents named
by predicates) plus two *generic* contents ω₁, ω₂ representing
arbitrary contents distinct from every literal.  Two generics suffice
for completeness: predicates never inspect contents, so the only way
contents are observed is equality of final states, and with two
generics any two independent initial contents can always be made to
differ (see DESIGN.md).  Contents are only ever observed through
equality of final states, never by predicates.

A symbolic value is an *indicator map*: domain value → boolean term
(the formula under which the path holds that value).  Under the
exactly-one constraint on initial variables the map always sums to
one, which makes equality a simple inner product.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Union

from repro.fs import syntax as fx
from repro.fs.domain import domain_of
from repro.fs.filesystem import DIR, Content, FileContent
from repro.fs.paths import Path
from repro.logic.terms import Term, TermBank

OMEGA_1 = "ω_1"
OMEGA_2 = "ω_2"
GENERIC_CONTENTS = (OMEGA_1, OMEGA_2)


@dataclass(frozen=True, order=True)
class VDir:
    def __repr__(self) -> str:
        return "dir"


@dataclass(frozen=True, order=True)
class VDne:
    def __repr__(self) -> str:
        return "dne"


@dataclass(frozen=True, order=True)
class VFile:
    content: str

    def __repr__(self) -> str:
        return f"file({self.content!r})"


DomainValue = Union[VDir, VDne, VFile]
V_DIR = VDir()
V_DNE = VDne()


def value_of_content(content: Optional[Content]) -> DomainValue:
    """Concrete filesystem entry → domain value."""
    if content is None:
        return V_DNE
    if not isinstance(content, FileContent):
        return V_DIR
    assert isinstance(content, FileContent)
    return VFile(content.data)


def content_of_value(value: DomainValue) -> Optional[Content]:
    if isinstance(value, VDne):
        return None
    if isinstance(value, VDir):
        return DIR
    return FileContent(value.content)


class PathDomains:
    """Per-path value domains for a program (set of FS expressions)."""

    def __init__(self, paths: Iterable[Path], contents: Mapping[Path, set[str]]):
        self.paths: list[Path] = sorted(set(paths))
        self._contents: Dict[Path, set[str]] = {
            p: set(contents.get(p, set())) | set(GENERIC_CONTENTS)
            for p in self.paths
        }

    @staticmethod
    def for_exprs(exprs: Iterable[fx.Expr]) -> "PathDomains":
        """Compute dom(G) (Fig. 8) and per-path content sets by a
        content-flow fixpoint over ``creat``/``cp``/``filecontains?``."""
        exprs = list(exprs)
        paths = domain_of(exprs)
        contents: Dict[Path, set[str]] = {p: set() for p in paths}
        copies: list[tuple[Path, Path]] = []
        for e in exprs:
            for node in fx.subexpressions(e):
                if isinstance(node, fx.Creat):
                    contents.setdefault(node.path, set()).add(node.content)
                elif isinstance(node, fx.Cp):
                    copies.append((node.src, node.dst))
                elif isinstance(node, fx.If):
                    for pred in _pred_nodes(node.pred):
                        if isinstance(pred, fx.IsFileWith):
                            contents.setdefault(pred.path, set()).add(
                                pred.content
                            )
        changed = True
        while changed:
            changed = False
            for src, dst in copies:
                src_set = contents.get(src, set())
                dst_set = contents.setdefault(dst, set())
                if not src_set <= dst_set:
                    dst_set |= src_set
                    changed = True
        return PathDomains(paths, contents)

    def values(self, path: Path) -> list[DomainValue]:
        out: list[DomainValue] = [V_DIR, V_DNE]
        out.extend(VFile(c) for c in sorted(self._contents.get(path, set())))
        return out

    def contents(self, path: Path) -> set[str]:
        return set(self._contents.get(path, set()))

    def __contains__(self, path: Path) -> bool:
        return path in self._contents

    def __len__(self) -> int:
        return len(self.paths)


def _pred_nodes(pred: fx.Pred):
    stack = [pred]
    while stack:
        cur = stack.pop()
        yield cur
        if isinstance(cur, fx.PNot):
            stack.append(cur.inner)
        elif isinstance(cur, (fx.PAnd, fx.POr)):
            stack.append(cur.left)
            stack.append(cur.right)


class SymbolicValue:
    """Indicator map: domain value → term (formula for holding it)."""

    __slots__ = ("indicators", "_fingerprint")

    def __init__(self, indicators: Dict[DomainValue, Term]):
        self.indicators = indicators
        self._fingerprint: Optional[frozenset] = None

    def fingerprint(self) -> frozenset:
        """Order-independent structural identity: the set of
        (domain value, term uid) pairs.  Terms are hash-consed by
        their bank, so within one bank two values with equal
        fingerprints denote the same function of the initial state —
        uid comparison stands in for structural term equality.
        Computed once and cached (values are immutable)."""
        fp = self._fingerprint
        if fp is None:
            fp = frozenset(
                (value, term.uid)
                for value, term in self.indicators.items()
            )
            self._fingerprint = fp
        return fp

    @staticmethod
    def const(bank: TermBank, value: DomainValue) -> "SymbolicValue":
        return SymbolicValue({value: bank.TRUE})

    def get(self, bank: TermBank, value: DomainValue) -> Term:
        return self.indicators.get(value, bank.FALSE)

    def is_dir(self, bank: TermBank) -> Term:
        return self.get(bank, V_DIR)

    def is_dne(self, bank: TermBank) -> Term:
        return self.get(bank, V_DNE)

    def is_file(self, bank: TermBank) -> Term:
        return bank.or_(
            *[
                t
                for v, t in self.indicators.items()
                if isinstance(v, VFile)
            ]
        )

    def has_content(self, bank: TermBank, content: str) -> Term:
        return self.get(bank, VFile(content))

    @staticmethod
    def ite(
        bank: TermBank, guard: Term, then_v: "SymbolicValue", else_v: "SymbolicValue"
    ) -> "SymbolicValue":
        if then_v is else_v:
            return then_v
        keys = set(then_v.indicators) | set(else_v.indicators)
        not_guard = bank.not_(guard)
        out: Dict[DomainValue, Term] = {}
        for key in keys:
            t1 = then_v.indicators.get(key, bank.FALSE)
            t2 = else_v.indicators.get(key, bank.FALSE)
            if t1 is t2:
                term = t1
            else:
                term = bank.or_(bank.and_(guard, t1), bank.and_(not_guard, t2))
            if term is not bank.FALSE:
                out[key] = term
        return SymbolicValue(out)

    def equals(self, bank: TermBank, other: "SymbolicValue") -> Term:
        """Inner product: both hold the same value.  Valid because the
        indicator maps are exactly-one under the initial-state
        constraints."""
        if self is other:
            return bank.TRUE
        keys = set(self.indicators) & set(other.indicators)
        terms = []
        for key in keys:
            t1 = self.indicators[key]
            t2 = other.indicators[key]
            if t1 is t2:
                terms.append(t1)
            else:
                terms.append(bank.and_(t1, t2))
        return bank.or_(*terms)

    def __repr__(self) -> str:
        rows = ", ".join(f"{v!r}" for v in self.indicators)
        return f"SymbolicValue({rows})"


def initial_var_name(path: Path, value: DomainValue) -> str:
    if isinstance(value, VDir):
        suffix = "dir"
    elif isinstance(value, VDne):
        suffix = "dne"
    else:
        suffix = f"file:{value.content}"
    return f"init[{path}]={suffix}"
