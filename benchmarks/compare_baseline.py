#!/usr/bin/env python3
"""Fail CI when a benchmark figure regresses against the baseline.

Usage:
    python benchmarks/compare_baseline.py BASELINE.json CURRENT.json
        [--factor 2.0] [--min-abs 0.25] [--calibrate fig11a]

Both files are ``run_figures.py --json`` reports.  The committed
baseline was recorded on a developer machine and CI runs on whatever
runner GitHub hands out, so raw wall-clock comparison would conflate
machine speed with code regressions.  The comparison therefore
*calibrates* first: the ``--calibrate`` figure (default ``fig11a`` —
pure compile/pruning work that never touches the SAT solver) measures
the machine-speed ratio, and every current figure is rescaled by it
before judging.  A uniformly slow runner cancels out; a regression in
the solving pipeline does not (it leaves the calibration figure
unchanged).  The flip side, stated plainly: a regression confined to
the calibration figure itself is absorbed — tier-1's smoke run still
exercises it, and the calibration ratio is printed on every run so a
drifting machine factor is visible in the logs.

After calibration a figure *regresses* when its seconds exceed
``baseline * factor`` **and** the absolute slowdown exceeds
``--min-abs`` seconds — the second guard keeps millisecond-scale
figures from tripping the job on scheduler noise while staying small
enough (0.25s default) that the factor, not the absolute guard,
decides for every corpus-scale figure.

The figure *sets* must match, both ways: a figure present in the
baseline but absent from the current run fails (a silently dropped
benchmark is a regression of coverage, not a speedup), and a figure
present only in the current run fails too (the signature of a renamed
key — the old name would otherwise fail as "missing" while the new one
sails through ungated; both failures name the figure so a rename reads
as a rename).  Adding a benchmark on purpose means regenerating
``benchmarks/baseline.json`` in the same change, or passing
``--allow-new`` explicitly.  Entries without a numeric ``seconds``
field fail by name instead of crashing the comparison.

Exit codes: 0 — no regression; 1 — regression or figure-set mismatch;
2 — unreadable input.
"""

from __future__ import annotations

import argparse
import json
import sys


def load(path: str) -> dict:
    with open(path, "r", encoding="utf8") as handle:
        report = json.load(handle)
    figures = report.get("figures")
    if not isinstance(figures, dict):
        raise ValueError(f"{path}: no 'figures' object")
    return figures


def seconds_of(figures: dict, key: str):
    """The numeric ``seconds`` of one figure entry, or None (with a
    reason) when the entry is malformed — a malformed entry must fail
    by name, not crash the whole comparison or pass as 0.0."""
    entry = figures.get(key)
    if not isinstance(entry, dict):
        return None, f"figure {key!r}: entry is not an object"
    raw = entry.get("seconds")
    if isinstance(raw, bool) or not isinstance(raw, (int, float)):
        return None, (
            f"figure {key!r}: 'seconds' is {raw!r}, not a number"
        )
    return float(raw), None


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline", help="committed baseline JSON report")
    parser.add_argument("current", help="freshly produced JSON report")
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="allowed slowdown factor per figure (default: 2.0)",
    )
    parser.add_argument(
        "--min-abs",
        type=float,
        default=0.25,
        help="ignore regressions smaller than this many absolute "
        "(calibrated) seconds (default: 0.25)",
    )
    parser.add_argument(
        "--calibrate",
        default="fig11a",
        metavar="KEY",
        help="figure used to measure the machine-speed ratio between "
        "the baseline machine and this one; '' disables calibration "
        "(default: fig11a, which never touches the SAT solver)",
    )
    parser.add_argument(
        "--allow-new",
        action="store_true",
        help="tolerate figures present in the current run but absent "
        "from the baseline (default: fail, so a renamed figure key "
        "cannot dodge the gate)",
    )
    args = parser.parse_args()

    try:
        baseline = load(args.baseline)
        current = load(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    scale = 1.0
    if args.calibrate:
        base_cal, _ = seconds_of(baseline, args.calibrate)
        cur_cal, _ = seconds_of(current, args.calibrate)
        base_cal = base_cal or 0.0
        cur_cal = cur_cal or 0.0
        if base_cal > 0 and cur_cal > 0:
            scale = base_cal / cur_cal
            print(
                f"calibration ({args.calibrate}): baseline "
                f"{base_cal:.3f}s, here {cur_cal:.3f}s -> machine "
                f"factor {1 / scale:.2f}x"
            )
        else:
            print(
                f"calibration figure {args.calibrate!r} unavailable; "
                "comparing raw wall clock"
            )

    failures = []
    width = max((len(k) for k in set(baseline) | set(current)), default=10)
    print(f"{'figure'.ljust(width)}  {'baseline':>9}  {'current':>9}  verdict")
    for key in sorted(baseline):
        base_seconds, problem = seconds_of(baseline, key)
        if problem is not None:
            failures.append(f"baseline {problem}")
            print(f"{key.ljust(width)}   MALFORMED        ---   FAIL")
            continue
        if key not in current:
            failures.append(
                f"figure {key!r} missing from current run (renamed? "
                "regenerate benchmarks/baseline.json)"
            )
            print(f"{key.ljust(width)}  {base_seconds:8.2f}s   MISSING   FAIL")
            continue
        cur_seconds, problem = seconds_of(current, key)
        if problem is not None:
            failures.append(f"current {problem}")
            print(f"{key.ljust(width)}  {base_seconds:8.2f}s  MALFORMED  FAIL")
            continue
        cur_seconds *= scale
        limit = base_seconds * args.factor
        regressed = (
            cur_seconds > limit
            and cur_seconds - base_seconds > args.min_abs
        )
        verdict = "FAIL" if regressed else "ok"
        if key == args.calibrate:
            verdict = "calib"
        print(
            f"{key.ljust(width)}  {base_seconds:8.2f}s  {cur_seconds:8.2f}s  "
            f"{verdict}"
        )
        if regressed and key != args.calibrate:
            failures.append(
                f"figure {key!r}: {cur_seconds:.2f}s (calibrated) "
                f"exceeds {args.factor:.1f}x baseline "
                f"({base_seconds:.2f}s)"
            )
    new_keys = sorted(set(current) - set(baseline))
    for key in new_keys:
        cur_seconds, problem = seconds_of(current, key)
        shown = "  MALFORMED" if problem else f"{cur_seconds * scale:8.2f}s"
        tag = "new" if args.allow_new else "NEW FAIL"
        print(f"{key.ljust(width)}  {'---':>9}  {shown}  {tag}")
        if not args.allow_new:
            failures.append(
                f"figure {key!r} present only in the current run "
                "(renamed or added without regenerating "
                "benchmarks/baseline.json; --allow-new to override)"
            )

    if failures:
        print("\nbenchmark comparison failed:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nno benchmark regressions.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
