"""The documented stable surface, `repro.__all__`, and the lazy-export
table must agree — and every name must actually resolve."""

import re
from pathlib import Path

import pytest

import repro

API_REFERENCE = Path(__file__).resolve().parents[1] / "docs" / "api-reference.md"


def documented_surface():
    """The bullet list under '## Stable surface' in api-reference.md."""
    text = API_REFERENCE.read_text()
    match = re.search(r"## Stable surface\n(.*?)\n## ", text, re.DOTALL)
    assert match, "api-reference.md lost its '## Stable surface' section"
    return set(re.findall(r"^- `([A-Za-z_][A-Za-z0-9_]*)`", match.group(1), re.M))


class TestStableSurface:
    def test_docs_match_dunder_all(self):
        documented = documented_surface()
        exported = set(repro.__all__)
        assert documented == exported, (
            "docs/api-reference.md 'Stable surface' and repro.__all__ "
            f"disagree: only in docs {sorted(documented - exported)}, "
            f"only in __all__ {sorted(exported - documented)}"
        )

    def test_dunder_all_matches_lazy_exports(self):
        assert set(repro.__all__) == set(repro._LAZY_EXPORTS) | {"__version__"}
        assert repro.__all__ == sorted(repro._LAZY_EXPORTS) + ["__version__"]

    def test_every_export_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_lazy_targets_define_their_names(self):
        """Each export must live in the module the table claims — the
        contract the testmap import scanner relies on."""
        import importlib

        for name, target in repro._LAZY_EXPORTS.items():
            module = importlib.import_module(target)
            assert hasattr(module, name), f"{target} does not define {name}"

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_an_export

    def test_submodule_access_still_works(self):
        assert repro.corpus.BENCHMARK_NAMES

    def test_version_shape(self):
        assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)
