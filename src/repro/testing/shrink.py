"""Delta-debugging shrinker for disagreeing fuzz cases.

Given a :class:`~repro.testing.generate.GeneratedCase` and a predicate
("does this candidate still exhibit the disagreement?"), produce the
smallest reproducer the reduction passes can reach:

1. **resource removal** — repeatedly try dropping each resource (with
   dependency indices re-wired) until no single removal reproduces;
2. **edge removal** — drop ``require`` edges one at a time (a minimal
   race usually needs *no* edges at all);
3. **attribute simplification** — drop optional attributes and shrink
   file contents to one character.

Passes iterate to a joint fixpoint, so a removal that only becomes
possible after an edge is gone is still found.  The total number of
predicate evaluations is capped: shrinking is a convenience, not a
liveness hazard.  The shrunk case serializes through
:mod:`repro.puppet.printer` like every generated case, which is what
the committed reproducers under ``tests/regressions/`` are.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, List, Optional, Tuple

from repro.testing.generate import GeneratedCase, ResourceSpec

Predicate = Callable[[GeneratedCase], bool]

#: Attributes a resource stays well-formed without.
_OPTIONAL_ATTRIBUTES = frozenset(
    {"managehome", "enable", "minute", "hour", "monthday", "month",
     "weekday"}
)


class _Shrinker:
    def __init__(self, predicate: Predicate, max_attempts: int):
        self.predicate = predicate
        self.max_attempts = max_attempts
        self.attempts = 0

    def holds(self, case: GeneratedCase) -> bool:
        if self.attempts >= self.max_attempts:
            return False
        self.attempts += 1
        try:
            return self.predicate(case)
        except Exception:
            # A candidate that crashes the toolchain is not a smaller
            # reproducer of *this* finding.
            return False

    def out_of_budget(self) -> bool:
        return self.attempts >= self.max_attempts


def shrink_case(
    case: GeneratedCase,
    predicate: Predicate,
    max_attempts: int = 300,
) -> Tuple[GeneratedCase, int]:
    """Minimize ``case`` while ``predicate`` holds; returns the
    smallest reproducer found and the number of predicate runs.

    The original case is assumed to satisfy the predicate (it is never
    re-checked); the original is returned unchanged when no reduction
    reproduces.
    """
    shrinker = _Shrinker(predicate, max_attempts)
    current = case
    changed = True
    while changed and not shrinker.out_of_budget():
        changed = False
        reduced = _drop_resources(current, shrinker)
        if reduced is not None:
            current, changed = reduced, True
        reduced = _drop_edges(current, shrinker)
        if reduced is not None:
            current, changed = reduced, True
        reduced = _simplify_attributes(current, shrinker)
        if reduced is not None:
            current, changed = reduced, True
    return current, shrinker.attempts


def _drop_resources(
    case: GeneratedCase, shrinker: _Shrinker
) -> Optional[GeneratedCase]:
    """Greedy one-at-a-time removal to a fixpoint (catalogs are ≤ 7
    resources, so ddmin's subset phases would buy nothing)."""
    current = case
    improved = False
    index = 0
    while index < len(current.resources):
        if shrinker.out_of_budget():
            break
        candidate = _without_resource(current, index)
        if candidate is not None and shrinker.holds(candidate):
            current = candidate
            improved = True  # same index now names the next resource
        else:
            index += 1
    return current if improved else None


def _without_resource(
    case: GeneratedCase, index: int
) -> Optional[GeneratedCase]:
    if len(case.resources) <= 1:
        return None
    specs: List[ResourceSpec] = []
    for i, spec in enumerate(case.resources):
        if i == index:
            continue
        requires = tuple(
            r - (1 if r > index else 0)
            for r in spec.requires
            if r != index
        )
        specs.append(replace(spec, requires=requires))
    return replace(case, resources=specs)


def _drop_edges(
    case: GeneratedCase, shrinker: _Shrinker
) -> Optional[GeneratedCase]:
    current = case
    improved = False
    i = 0
    while i < len(current.resources):
        spec = current.resources[i]
        dropped_one = False
        for req in spec.requires:
            if shrinker.out_of_budget():
                return current if improved else None
            slimmer = replace(
                spec,
                requires=tuple(r for r in spec.requires if r != req),
            )
            specs = list(current.resources)
            specs[i] = slimmer
            candidate = replace(current, resources=specs)
            if shrinker.holds(candidate):
                current = candidate
                improved = True
                dropped_one = True
                break  # re-scan this resource's remaining edges
        if not dropped_one:
            i += 1
    return current if improved else None


def _simplify_attributes(
    case: GeneratedCase, shrinker: _Shrinker
) -> Optional[GeneratedCase]:
    current = case
    improved = False
    for i in range(len(current.resources)):
        spec = current.resources[i]
        for name, value in spec.attributes:
            if shrinker.out_of_budget():
                return current if improved else None
            if name in _OPTIONAL_ATTRIBUTES:
                slimmer = replace(
                    spec,
                    attributes=tuple(
                        (k, v)
                        for k, v in spec.attributes
                        if k != name
                    ),
                )
            elif (
                name == "content"
                and isinstance(value, str)
                and len(value) > 1
            ):
                slimmer = replace(
                    spec,
                    attributes=tuple(
                        (k, value[0] if k == name else v)
                        for k, v in spec.attributes
                    ),
                )
            else:
                continue
            specs = list(current.resources)
            specs[i] = slimmer
            candidate = replace(current, resources=specs)
            if shrinker.holds(candidate):
                current = candidate
                spec = slimmer
                improved = True
    return current if improved else None
