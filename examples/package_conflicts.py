#!/usr/bin/env python3
"""Silent failures and non-idempotence: the paper's Fig. 3c and 3d.

Fig. 3c: a manifest removes Perl and installs the Go compiler.  On
Ubuntu 14.04 golang-go *depends on* Perl, so the two orders silently
reach different machine states — no error is ever raised.  Adding the
"obvious" dependency makes the manifest deterministic but leaves it
fundamentally inconsistent: installing Go reinstalls Perl, so `perl
absent` is never achieved.  The §5 invariant checker exposes this.

Fig. 3d: copying a file and deleting the source is deterministic but
not idempotent — the second run always fails.

Run:  python examples/package_conflicts.py
"""

from repro import Rehearsal
from repro.analysis import ensures_absent
from repro.core.report import render_determinism, render_idempotence
from repro.resources.package import marker_path

FIG_3C = """
package{'golang-go': ensure => present }
package{'perl': ensure => absent }
"""

FIG_3C_ORDERED = FIG_3C + """
Package['perl'] -> Package['golang-go']
"""

FIG_3D = """
file{'/dst': source => '/src' }
file{'/src': ensure => absent }
File['/dst'] -> File['/src']
"""


def main() -> None:
    tool = Rehearsal()

    print("=== Fig. 3c: remove Perl + install Go, unordered ===")
    result = tool.check_determinism(FIG_3C)
    print(render_determinism(result))
    assert not result.deterministic
    print()
    print(
        "Both diverging outcomes can be successes: this is a *silent* "
        "failure — replicas of this manifest drift apart with no error."
    )

    print()
    print("=== Fig. 3c with Package['perl'] -> Package['golang-go'] ===")
    result = tool.check_determinism(FIG_3C_ORDERED)
    print(render_determinism(result))
    assert result.deterministic
    print()
    print("Deterministic — but is 'perl absent' ever achieved?")
    invariant = tool.check_invariant(
        FIG_3C_ORDERED, ensures_absent(marker_path("perl"))
    )
    if invariant.holds:
        print("perl ends up absent on every successful run.")
    else:
        print(
            "INCONSISTENT: installing golang-go reinstalls perl "
            "(dependency), so the manifest never achieves its own "
            "declared state.  It should be rejected."
        )
    assert not invariant.holds

    print()
    print("=== Fig. 3d: copy then delete the source ===")
    result = tool.check_determinism(FIG_3D)
    print(render_determinism(result))
    assert result.deterministic
    idem = tool.check_idempotence(FIG_3D)
    print(render_idempotence(idem))
    assert not idem.idempotent
    print()
    print(
        "Individually idempotent resources composed into a manifest "
        "whose second run always fails (the first run deletes /src)."
    )


if __name__ == "__main__":
    main()
