"""SPRT burn-in: promotion, demotion, the ledger, and the CLI."""

import json
from pathlib import Path

import pytest

from repro.core.cli import main as cli_main
from repro.testing.orchestrate.burnin import (
    LEDGER_NAME,
    burn_in,
    file_sha256,
    load_ledger,
)
from repro.testing.orchestrate.sprt import SprtConfig

REPO_ROOT = Path(__file__).resolve().parent.parent
CORPUS = REPO_ROOT / "tests" / "regressions"

#: Promote after 3 consecutive passes instead of 9 — the unit tests
#: drive fake executors, so only the decision logic matters.
FAST = SprtConfig(p_stable=0.99, p_flaky=0.30, max_trials=12)


@pytest.fixture
def corpus_copy(tmp_path):
    """A quarantine holding real (valid-header) reproducers."""
    quarantine = tmp_path / "quarantine"
    pinned = tmp_path / "pinned"
    quarantine.mkdir()
    pinned.mkdir()
    for source in sorted(CORPUS.glob("*.pp"))[:2]:
        (quarantine / source.name).write_text(
            source.read_text(encoding="utf8"), encoding="utf8"
        )
    return quarantine, pinned


class TestPromotion:
    def test_stable_files_move_and_get_ledger_records(
        self, corpus_copy
    ):
        quarantine, pinned = corpus_copy
        names = sorted(p.name for p in quarantine.glob("*.pp"))
        report = burn_in(
            quarantine,
            pinned,
            config=FAST,
            executor=lambda path, seed: True,
        )
        assert [r.file for r in report.promoted] == names
        assert sorted(p.name for p in pinned.glob("*.pp")) == names
        assert list(quarantine.glob("*.pp")) == []
        ledger = load_ledger(pinned / LEDGER_NAME)
        assert [r["file"] for r in ledger["records"]] == names
        for record in ledger["records"]:
            assert record["decision"] == "promoted"
            assert record["failures"] == 0
            assert record["sha256"] == file_sha256(
                pinned / record["file"]
            )
            assert record["sprt"]["p_flaky"] == FAST.p_flaky

    def test_trial_seeds_vary_per_trial(self, corpus_copy):
        quarantine, pinned = corpus_copy
        seen = []
        burn_in(
            quarantine,
            pinned,
            config=FAST,
            executor=lambda path, seed: seen.append(seed) or True,
            base_seed=100,
        )
        per_file = len(seen) // 2
        assert seen[:per_file] == list(range(100, 100 + per_file))

    def test_name_collision_blocks_promotion(self, corpus_copy):
        quarantine, pinned = corpus_copy
        name = sorted(p.name for p in quarantine.glob("*.pp"))[0]
        (pinned / name).write_text("# already pinned\n")
        report = burn_in(
            quarantine,
            pinned,
            config=FAST,
            executor=lambda path, seed: True,
        )
        collided = [r for r in report.invalid if r.file == name]
        assert collided and "already exists" in collided[0].problems[0]
        assert (quarantine / name).exists()


class TestDemotion:
    def test_flaky_file_moves_aside_with_flake_rate(self, corpus_copy):
        quarantine, pinned = corpus_copy
        report = burn_in(
            quarantine,
            pinned,
            config=FAST,
            executor=lambda path, seed: seed % 2 == 0,
        )
        assert len(report.demoted) == 2
        for record in report.demoted:
            assert record.flake_rate is not None
            assert 0.0 < record.flake_rate <= 1.0
            assert (quarantine / "flaky" / record.file).exists()
        assert list(pinned.glob("*.pp")) == []
        # Demotions are history too: the ledger records them.
        ledger = load_ledger(pinned / LEDGER_NAME)
        assert {r["decision"] for r in ledger["records"]} == {"demoted"}


class TestEdgeCases:
    def test_invalid_header_is_reported_not_replayed(self, tmp_path):
        quarantine = tmp_path / "q"
        quarantine.mkdir()
        (quarantine / "broken.pp").write_text(
            "# rehearsal-fuzz reproducer\n# seed: nope\n"
        )
        calls = []
        report = burn_in(
            quarantine,
            tmp_path / "p",
            config=FAST,
            executor=lambda path, seed: calls.append(path) or True,
        )
        assert not calls
        assert len(report.invalid) == 1
        assert any(
            "seed" in problem for problem in report.invalid[0].problems
        )
        assert (quarantine / "broken.pp").exists()

    def test_dry_run_moves_nothing(self, corpus_copy):
        quarantine, pinned = corpus_copy
        before = sorted(p.name for p in quarantine.glob("*.pp"))
        report = burn_in(
            quarantine,
            pinned,
            config=FAST,
            executor=lambda path, seed: True,
            apply=False,
        )
        assert len(report.promoted) == len(before)
        assert sorted(p.name for p in quarantine.glob("*.pp")) == before
        assert not (pinned / LEDGER_NAME).exists()

    def test_empty_quarantine_is_a_clean_noop(self, tmp_path):
        quarantine = tmp_path / "q"
        quarantine.mkdir()
        report = burn_in(quarantine, tmp_path / "p", config=FAST)
        assert report.records == []


class TestCommittedLedger:
    """The promotion records minted for the shipped corpus."""

    def test_every_pinned_reproducer_has_a_matching_record(self):
        ledger = load_ledger(CORPUS / LEDGER_NAME)
        latest = {r["file"]: r for r in ledger["records"]}
        pinned = sorted(p.name for p in CORPUS.glob("*.pp"))
        assert pinned, "the pinned corpus is empty"
        for name in pinned:
            record = latest.get(name)
            assert record is not None, f"{name}: no promotion record"
            assert record["decision"] == "promoted"
            assert record["sha256"] == file_sha256(CORPUS / name)
            assert record["failures"] == 0
            assert record["trials"] >= 9  # default SPRT promotion


class TestCli:
    def test_burnin_promotes_a_real_reproducer(self, tmp_path, capsys):
        quarantine = tmp_path / "quarantine"
        pinned = tmp_path / "pinned"
        quarantine.mkdir()
        source = CORPUS / "clean-seed42-case16.pp"
        (quarantine / source.name).write_text(
            source.read_text(encoding="utf8"), encoding="utf8"
        )
        # p_flaky=0.3 needs only 3 real replays to promote.
        code = cli_main(
            [
                "burnin",
                "--quarantine",
                str(quarantine),
                "--pinned",
                str(pinned),
                "--p-flaky",
                "0.3",
                "--json",
                str(tmp_path / "report.json"),
            ]
        )
        assert code == 0
        assert (pinned / source.name).exists()
        payload = json.loads((tmp_path / "report.json").read_text())
        assert payload["records"][0]["decision"] == "promoted"
        assert "1 promoted" in capsys.readouterr().out

    def test_missing_quarantine_is_a_usage_error(self, tmp_path):
        code = cli_main(
            ["burnin", "--quarantine", str(tmp_path / "nope")]
        )
        assert code == 2

    def test_bad_sprt_parameters_are_a_usage_error(self, tmp_path):
        quarantine = tmp_path / "q"
        quarantine.mkdir()
        code = cli_main(
            [
                "burnin",
                "--quarantine",
                str(quarantine),
                "--p-flaky",
                "0.999",
            ]
        )
        assert code == 2
