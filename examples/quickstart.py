#!/usr/bin/env python3
"""Quickstart: detect and fix the paper's Fig. 3a bug.

A very common Puppet idiom installs a package and then overwrites one
of its default configuration files.  If the dependency between the
package and the file is omitted, Puppet may apply the resources in
either order — creating the file first fails because the package has
not created its directory yet, and succeeding orders leave different
contents in place.  Rehearsal finds this statically, produces a
concrete witness machine state, and verifies the one-line fix.

Run:  python examples/quickstart.py
"""

from repro import Rehearsal
from repro.core.report import render_determinism, render_idempotence

BUGGY = """
file {"/etc/apache2/sites-available/000-default.conf":
  content => "<VirtualHost *:80> DocumentRoot /srv/www </VirtualHost>",
}
package {"apache2": ensure => present }
"""

FIXED = BUGGY + """
Package['apache2'] -> File['/etc/apache2/sites-available/000-default.conf']
"""


def main() -> None:
    tool = Rehearsal()

    print("=== Checking the buggy manifest (Fig. 3a) ===")
    result = tool.check_determinism(BUGGY)
    print(render_determinism(result))
    assert not result.deterministic

    print()
    print("=== Checking the fixed manifest ===")
    result = tool.check_determinism(FIXED)
    print(render_determinism(result))
    assert result.deterministic

    print()
    print("=== Idempotence of the fixed manifest (§5) ===")
    idem = tool.check_idempotence(FIXED)
    print(render_idempotence(idem))
    assert idem.idempotent


if __name__ == "__main__":
    main()
