#!/usr/bin/env python3
"""Fail CI when a benchmark figure regresses against the baseline.

Usage:
    python benchmarks/compare_baseline.py BASELINE.json CURRENT.json
        [--factor 2.0] [--min-abs 0.25] [--calibrate fig11a]

Both files are ``run_figures.py --json`` reports.  The committed
baseline was recorded on a developer machine and CI runs on whatever
runner GitHub hands out, so raw wall-clock comparison would conflate
machine speed with code regressions.  The comparison therefore
*calibrates* first: the ``--calibrate`` figure (default ``fig11a`` —
pure compile/pruning work that never touches the SAT solver) measures
the machine-speed ratio, and every current figure is rescaled by it
before judging.  A uniformly slow runner cancels out; a regression in
the solving pipeline does not (it leaves the calibration figure
unchanged).  The flip side, stated plainly: a regression confined to
the calibration figure itself is absorbed — tier-1's smoke run still
exercises it, and the calibration ratio is printed on every run so a
drifting machine factor is visible in the logs.

After calibration a figure *regresses* when its seconds exceed
``baseline * factor`` **and** the absolute slowdown exceeds
``--min-abs`` seconds — the second guard keeps millisecond-scale
figures from tripping the job on scheduler noise while staying small
enough (0.25s default) that the factor, not the absolute guard,
decides for every corpus-scale figure.  A figure present in the
baseline but missing from the current run also fails (a silently
dropped benchmark is a regression of coverage, not a speedup).

Exit codes: 0 — no regression; 1 — regression or missing figure;
2 — unreadable input.
"""

from __future__ import annotations

import argparse
import json
import sys


def load(path: str) -> dict:
    with open(path, "r", encoding="utf8") as handle:
        report = json.load(handle)
    figures = report.get("figures")
    if not isinstance(figures, dict):
        raise ValueError(f"{path}: no 'figures' object")
    return figures


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline", help="committed baseline JSON report")
    parser.add_argument("current", help="freshly produced JSON report")
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="allowed slowdown factor per figure (default: 2.0)",
    )
    parser.add_argument(
        "--min-abs",
        type=float,
        default=0.25,
        help="ignore regressions smaller than this many absolute "
        "(calibrated) seconds (default: 0.25)",
    )
    parser.add_argument(
        "--calibrate",
        default="fig11a",
        metavar="KEY",
        help="figure used to measure the machine-speed ratio between "
        "the baseline machine and this one; '' disables calibration "
        "(default: fig11a, which never touches the SAT solver)",
    )
    args = parser.parse_args()

    try:
        baseline = load(args.baseline)
        current = load(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    scale = 1.0
    if args.calibrate:
        base_cal = float(
            baseline.get(args.calibrate, {}).get("seconds", 0.0)
        )
        cur_cal = float(
            current.get(args.calibrate, {}).get("seconds", 0.0)
        )
        if base_cal > 0 and cur_cal > 0:
            scale = base_cal / cur_cal
            print(
                f"calibration ({args.calibrate}): baseline "
                f"{base_cal:.3f}s, here {cur_cal:.3f}s -> machine "
                f"factor {1 / scale:.2f}x"
            )
        else:
            print(
                f"calibration figure {args.calibrate!r} unavailable; "
                "comparing raw wall clock"
            )

    failures = []
    width = max((len(k) for k in baseline), default=10)
    print(f"{'figure'.ljust(width)}  {'baseline':>9}  {'current':>9}  verdict")
    for key in sorted(baseline):
        base_seconds = float(baseline[key].get("seconds", 0.0))
        entry = current.get(key)
        if entry is None:
            failures.append(f"figure {key!r} missing from current run")
            print(f"{key.ljust(width)}  {base_seconds:8.2f}s   MISSING   FAIL")
            continue
        cur_seconds = float(entry.get("seconds", 0.0)) * scale
        limit = base_seconds * args.factor
        regressed = (
            cur_seconds > limit
            and cur_seconds - base_seconds > args.min_abs
        )
        verdict = "FAIL" if regressed else "ok"
        if key == args.calibrate:
            verdict = "calib"
        print(
            f"{key.ljust(width)}  {base_seconds:8.2f}s  {cur_seconds:8.2f}s  "
            f"{verdict}"
        )
        if regressed and key != args.calibrate:
            failures.append(
                f"figure {key!r}: {cur_seconds:.2f}s (calibrated) "
                f"exceeds {args.factor:.1f}x baseline "
                f"({base_seconds:.2f}s)"
            )
    for key in sorted(set(current) - set(baseline)):
        print(
            f"{key.ljust(width)}  {'---':>9}  "
            f"{float(current[key].get('seconds', 0.0)) * scale:8.2f}s  new"
        )

    if failures:
        print("\nbenchmark regression detected:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nno benchmark regressions.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
