# ngircd — fixed variant: the operator key requires the user account
# whose home directory receives it.

class ngircd {
  $irc_name  = 'irc.example.com'
  $irc_motd  = 'Welcome to example.com IRC'

  package { 'ngircd':
    ensure => installed,
  }

  file { '/etc/ngircd/ngircd.conf':
    ensure  => file,
    content => "[Global]\nName = ${irc_name}\nMotdPhrase = ${irc_motd}\nPorts = 6667\n[Options]\nSyslogFacility = local1\n",
    require => Package['ngircd'],
  }

  service { 'ngircd':
    ensure    => running,
    enable    => true,
    subscribe => File['/etc/ngircd/ngircd.conf'],
  }
}

class ngircd::operator {
  user { 'ircops':
    ensure     => present,
    managehome => true,
  }

  # FIX: the user account (and its home directory) must exist first.
  ssh_authorized_key { 'ircops@admin':
    ensure  => present,
    user    => 'ircops',
    key     => 'AAAAB3NzaC1yc2EAAAADAQABAAABgQDJxOPerator',
    require => User['ircops'],
  }
}

include ngircd
include ngircd::operator
