"""The resource compiler ``C : R → e`` (§3.3).

Dispatches a primitive :class:`~repro.resources.base.Resource` to its
type-specific FS model.  New resource types plug in via
:meth:`ResourceCompiler.register` without touching the analyses — the
rest of the toolchain only ever sees FS programs (§3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.errors import ResourceModelError
from repro.fs import Expr
from repro.resources.base import Resource
from repro.resources.cron import compile_cron
from repro.resources.file import compile_file
from repro.resources.group import compile_group
from repro.resources.host import compile_host
from repro.resources.misc import compile_anchor, compile_exec, compile_notify
from repro.resources.package import compile_package
from repro.resources.package_db import PackageDatabase, default_database
from repro.resources.service import compile_service
from repro.resources.ssh_authorized_key import compile_ssh_authorized_key
from repro.resources.user import compile_user

ModelFn = Callable[[Resource, "ModelContext"], Expr]


@dataclass
class ModelContext:
    """Ambient information resource models may need.

    ``package_semantics`` selects when installed-state checks happen:
    ``"direct"`` (default) checks at each resource's execution time;
    ``"snapshot"`` mirrors Puppet's real behaviour of querying the
    package manager once at the start of a run (see
    :mod:`repro.resources.snapshot`) — required to reproduce the
    Fig. 3c non-idempotence.
    """

    package_db: PackageDatabase = field(default_factory=default_database)
    platform: str = "ubuntu"
    package_semantics: str = "direct"


_BUILTIN_MODELS: Dict[str, ModelFn] = {
    "file": compile_file,
    "package": compile_package,
    "user": compile_user,
    "group": compile_group,
    "service": compile_service,
    "ssh_authorized_key": compile_ssh_authorized_key,
    "cron": compile_cron,
    "host": compile_host,
    "notify": compile_notify,
    "anchor": compile_anchor,
    "exec": compile_exec,
}


class ResourceCompiler:
    """Compiles primitive resources to FS expressions."""

    def __init__(self, context: Optional[ModelContext] = None):
        self.context = context or ModelContext()
        self._models: Dict[str, ModelFn] = dict(_BUILTIN_MODELS)

    def register(self, rtype: str, model: ModelFn) -> None:
        """Install or override the model for a resource type."""
        self._models[rtype.lower()] = model

    def supported_types(self) -> list[str]:
        return sorted(self._models)

    def compile(self, resource: Resource) -> Expr:
        model = self._models.get(resource.rtype)
        if model is None:
            raise ResourceModelError(
                f"{resource.ref}: no FS model for resource type "
                f"{resource.rtype!r}; supported types are "
                f"{', '.join(self.supported_types())}"
            )
        return model(resource, self.context)


def compile_resource(
    resource: Resource, context: Optional[ModelContext] = None
) -> Expr:
    """One-shot convenience wrapper around :class:`ResourceCompiler`."""
    return ResourceCompiler(context).compile(resource)
