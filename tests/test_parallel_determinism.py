"""Parity of the parallel solve paths with the sequential reference:
generated catalogs, the §6 corpus, the cube pool path, and byte-level
``verify-batch`` JSON rows."""

import copy
from pathlib import Path

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import determinism as det_mod
from repro.analysis.determinism import DeterminismOptions, check_determinism
from repro.bench.harness import conflicting_write
from repro.core.pipeline import Rehearsal
from repro.corpus import BENCHMARK_NAMES, load_source, manifest_paths
from repro.service import BatchVerifier
from repro.testing import CaseGenerator

SEQUENTIAL = DeterminismOptions()
PORTFOLIO = DeterminismOptions(portfolio=2)
CUBE = DeterminismOptions(solver_workers=4)

ALL_MANIFESTS = sorted(Path(p).stem for p in manifest_paths())


def race_tuple(result):
    race = result.race
    if race is None:
        return None
    return (
        str(race.resource_a),
        str(race.resource_b),
        str(race.path),
        tuple(str(p) for p in race.core_paths),
        race.ok_divergence,
    )


def determinism_view(source, options):
    result = Rehearsal(options=options).check_determinism(source)
    return (result.deterministic, result.witness_orders, race_tuple(result))


class TestCorpusParity:
    """Every corpus manifest must produce the identical verdict AND
    the identical race localization under all three backends — the
    acceptance bar of the parallel-solving work."""

    @pytest.mark.parametrize("name", ALL_MANIFESTS)
    def test_all_backends_agree(self, name):
        source = load_source(name)
        sequential = determinism_view(source, SEQUENTIAL)
        portfolio = determinism_view(source, PORTFOLIO)
        cube = determinism_view(source, CUBE)
        assert portfolio == sequential, name
        assert cube == sequential, name

    def test_corpus_covers_both_verdicts(self):
        verdicts = {
            determinism_view(load_source(name), SEQUENTIAL)[0]
            for name in BENCHMARK_NAMES
        }
        assert verdicts == {True, False}


@settings(max_examples=12, deadline=None)
@given(case_id=st.integers(0, 500))
def test_generated_catalogs_agree_across_backends(case_id):
    case = CaseGenerator(2026).generate(case_id)
    sequential = determinism_view(case.source, SEQUENTIAL)
    assert determinism_view(case.source, PORTFOLIO) == sequential
    assert determinism_view(case.source, CUBE) == sequential


class TestCubePoolPath:
    """The coarse-grained cube path (root frontier split over the
    worker pool) — forced by shrinking the engagement grain."""

    @pytest.fixture(autouse=True)
    def small_grain(self, monkeypatch):
        monkeypatch.setattr(det_mod, "CUBE_POOL_GRAIN", 2)

    def writers_graph(self, n, with_final=False):
        programs = {
            f"w{i}": conflicting_write("/shared", f"content-{i}")
            for i in range(n)
        }
        graph = nx.DiGraph()
        graph.add_nodes_from(programs)
        if with_final:
            programs["final"] = conflicting_write("/shared", "x")
            graph.add_node("final")
            for i in range(n):
                graph.add_edge(f"w{i}", "final")
        return graph, programs

    def test_nondet_verdict_and_race_match_sequential(self):
        graph, programs = self.writers_graph(3)
        seq = check_determinism(graph, programs, DeterminismOptions())
        par = check_determinism(
            graph, programs, DeterminismOptions(solver_workers=2)
        )
        assert par.deterministic is seq.deterministic is False
        assert race_tuple(par) == race_tuple(seq)
        assert par.witness_orders == seq.witness_orders

    def test_deterministic_verdict_matches_sequential(self):
        graph, programs = self.writers_graph(2, with_final=True)
        seq = check_determinism(graph, programs, DeterminismOptions())
        par = check_determinism(
            graph, programs, DeterminismOptions(solver_workers=2)
        )
        assert par.deterministic is seq.deterministic is True
        assert par.stats.distinct_finals == seq.stats.distinct_finals

    def test_pool_walks_no_more_final_states(self):
        """Cube subtrees overlap (each pays its own walk), but the
        merged, deduplicated final-state set must equal sequential's."""
        graph, programs = self.writers_graph(3)
        seq = check_determinism(graph, programs, DeterminismOptions())
        par = check_determinism(
            graph, programs, DeterminismOptions(solver_workers=3)
        )
        assert par.stats.distinct_finals == seq.stats.distinct_finals


#: Row fields that legitimately differ run-to-run or backend-to-backend.
#: The incremental-reuse counters are run-circumstance fields (schema
#: v5): the sequential side may hit the persistent store while the
#: portfolio side, which disables it, cannot.
VOLATILE_ROW_FIELDS = (
    "seconds",
    "solver_seconds",
    "cache_key",
    "solver_backend",
    "subtree_reuse_hits",
    "cnf_cache_hits",
    "commute_cache_hits",
)


def normalized_rows(report):
    rows = []
    for result in report.results:
        row = copy.deepcopy(result.to_dict())
        for field in VOLATILE_ROW_FIELDS:
            row.pop(field, None)
        if row.get("lint"):
            row["lint"].get("stats", {}).pop("seconds", None)
        rows.append(row)
    return rows


class TestBatchRowParity:
    def sources(self):
        generator = CaseGenerator(7)
        return [
            (f"case{i}.pp", generator.generate(i).source) for i in range(6)
        ]

    def run(self, options):
        verifier = BatchVerifier(options=options, cache=None)
        return verifier.verify_sources(self.sources())

    def test_portfolio_rows_byte_identical_to_sequential(self):
        sequential = self.run(DeterminismOptions())
        portfolio = self.run(DeterminismOptions(portfolio=2))
        assert normalized_rows(portfolio) == normalized_rows(sequential)

    def test_rows_carry_backend_label(self):
        report = self.run(DeterminismOptions(portfolio=2, solver_workers=2))
        labels = {r.solver_backend for r in report.results}
        assert labels == {"portfolio:2+cube:2"}
        sequential = self.run(DeterminismOptions())
        assert {r.solver_backend for r in sequential.results} == {"cdcl"}

    def test_corpus_verdicts_identical_under_portfolio(self):
        sources = [
            (name, load_source(name)) for name in BENCHMARK_NAMES
        ]
        seq = BatchVerifier(cache=None).verify_sources(sources)
        par = BatchVerifier(
            options=DeterminismOptions(portfolio=2), cache=None
        ).verify_sources(sources)
        for name in BENCHMARK_NAMES:
            a, b = seq.result_for(name), par.result_for(name)
            assert (a.status, a.deterministic, a.race_pair, a.race_path) == (
                b.status,
                b.deterministic,
                b.race_pair,
                b.race_path,
            ), name


class TestOptionsPlumbing:
    def test_options_remain_picklable(self):
        import pickle

        options = DeterminismOptions(
            solver="portfolio:2", portfolio=2, solver_workers=4
        )
        assert pickle.loads(pickle.dumps(options)) == options

    def test_backend_choice_rotates_cache_key(self):
        from repro.service.cache import cache_key

        source = load_source("ntp-nondet")
        keys = {
            cache_key(source, DeterminismOptions(), "ubuntu", "default", "x"),
            cache_key(
                source,
                DeterminismOptions(portfolio=2),
                "ubuntu",
                "default",
                "x",
            ),
            cache_key(
                source,
                DeterminismOptions(solver_workers=2),
                "ubuntu",
                "default",
                "x",
            ),
        }
        assert len(keys) == 3
