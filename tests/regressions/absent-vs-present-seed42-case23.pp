# rehearsal-fuzz reproducer
# seed: 42
# case-id: 23
# generator-version: 1
# bug-class: absent-vs-present
# found-by: sabotage-drill
# disagreement: missed_nondet
# expected-deterministic: false
# expected-idempotent: none

file {
  '/etc/fuzz/f3.conf':
    content => 'a',
    ensure => 'file',
}
file {
  '/etc/fuzz/f3.conf#2':
    ensure => 'absent',
    path => '/etc/fuzz/f3.conf',
}
