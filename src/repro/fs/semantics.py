"""Concrete (reference) semantics of FS programs — paper Fig. 5.

``eval_pred`` implements ⟦a⟧ ∈ σ → bool and ``eval_expr`` implements
⟦e⟧ ∈ σ → σ + err.  The error result is the singleton :data:`ERROR`.
This evaluator is the ground truth that the logical encoding
(:mod:`repro.smt.encoder`) is tested against.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.fs import syntax as fx
from repro.fs.filesystem import DIR, FileContent, FileSystem


class _ErrorState:
    """The distinguished error state (⟦err⟧)."""

    _instance: Optional["_ErrorState"] = None

    def __new__(cls) -> "_ErrorState":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ERROR"


ERROR = _ErrorState()

Result = Union[FileSystem, _ErrorState]


def is_error(result: Result) -> bool:
    return result is ERROR


def eval_pred(pred: fx.Pred, fs: FileSystem) -> bool:
    """Evaluate a predicate on a concrete filesystem."""
    if isinstance(pred, fx.PTrue):
        return True
    if isinstance(pred, fx.PFalse):
        return False
    if isinstance(pred, fx.IsNone):
        return not fs.exists(pred.path)
    if isinstance(pred, fx.IsFile):
        return fs.is_file(pred.path)
    if isinstance(pred, fx.IsDir):
        return fs.is_dir(pred.path)
    if isinstance(pred, fx.IsEmptyDir):
        return fs.is_empty_dir(pred.path)
    if isinstance(pred, fx.IsFileWith):
        return fs.file_content(pred.path) == pred.content
    if isinstance(pred, fx.PNot):
        return not eval_pred(pred.inner, fs)
    if isinstance(pred, fx.PAnd):
        return eval_pred(pred.left, fs) and eval_pred(pred.right, fs)
    if isinstance(pred, fx.POr):
        return eval_pred(pred.left, fs) or eval_pred(pred.right, fs)
    raise TypeError(f"unknown predicate: {pred!r}")


def eval_expr(expr: fx.Expr, fs: FileSystem) -> Result:
    """Evaluate an expression on a concrete filesystem.

    Returns the resulting :class:`FileSystem` or :data:`ERROR`.
    """
    if isinstance(expr, fx.Id):
        return fs
    if isinstance(expr, fx.Err):
        return ERROR
    if isinstance(expr, fx.Mkdir):
        path = expr.path
        if path.is_root:
            return ERROR
        if fs.is_dir(path.parent()) and not fs.exists(path):
            return fs.with_entry(path, DIR)
        return ERROR
    if isinstance(expr, fx.Creat):
        path = expr.path
        if path.is_root:
            return ERROR
        if fs.is_dir(path.parent()) and not fs.exists(path):
            return fs.with_entry(path, FileContent(expr.content))
        return ERROR
    if isinstance(expr, fx.Rm):
        path = expr.path
        if fs.is_file(path) or fs.is_empty_dir(path):
            if path.is_root:
                return ERROR
            return fs.without_entry(path)
        return ERROR
    if isinstance(expr, fx.Cp):
        src_content = fs.file_content(expr.src)
        dst = expr.dst
        if (
            src_content is not None
            and not dst.is_root
            and fs.is_dir(dst.parent())
            and not fs.exists(dst)
        ):
            return fs.with_entry(dst, FileContent(src_content))
        return ERROR
    if isinstance(expr, fx.Seq):
        intermediate = eval_expr(expr.first, fs)
        if intermediate is ERROR:
            return ERROR
        assert isinstance(intermediate, FileSystem)
        return eval_expr(expr.second, intermediate)
    if isinstance(expr, fx.If):
        branch = (
            expr.then_branch
            if eval_pred(expr.pred, fs)
            else expr.else_branch
        )
        return eval_expr(branch, fs)
    raise TypeError(f"unknown expression: {expr!r}")


def equivalent_on(e1: fx.Expr, e2: fx.Expr, fs: FileSystem) -> bool:
    """``⟦e1⟧σ = ⟦e2⟧σ`` for one concrete σ."""
    return eval_expr(e1, fs) == eval_expr(e2, fs)


def commute_on(e1: fx.Expr, e2: fx.Expr, fs: FileSystem) -> bool:
    """``⟦e1;e2⟧σ = ⟦e2;e1⟧σ`` for one concrete σ."""
    return equivalent_on(fx.seq(e1, e2), fx.seq(e2, e1), fs)
