"""Fleet test orchestration (see docs/testing.md).

Three cooperating parts keep the tier-1 suite fast and the fuzz
corpus trustworthy as both grow:

* :mod:`repro.testing.orchestrate.testmap` — dependency-aware test
  selection: a static import-graph scanner over ``src/`` and
  ``tests/`` producing a persisted, content-hashed module→test map,
  and a selector that turns a changed-file list into the minimal
  pytest file list (with a conservative full-suite fallback on map
  staleness, conftest edits, and unmapped files);
* :mod:`repro.testing.orchestrate.sprt` /
  :mod:`repro.testing.orchestrate.burnin` — sequential probability
  ratio test burn-in that promotes quarantined fuzz reproducers to
  pinned regressions (and demotes flaky ones with a flake-rate
  estimate), writing machine-readable promotion records;
* :mod:`repro.testing.orchestrate.resultsdb` /
  :mod:`repro.testing.orchestrate.pytest_plugin` /
  :mod:`repro.testing.orchestrate.report` — a SQLite per-test
  results store written by a pytest hook, rendered by ``rehearsal
  testreport`` into an HTML report with per-module duration trends
  and an SVG DAG of the module→test dependency graph.

This init deliberately imports nothing: orchestration modules are
addressed directly (``from repro.testing.orchestrate import testmap``
resolves via the submodule fallback of the lazy parent packages), so
pulling in, say, the results database does not drag the burn-in
executor — and with it the whole verification pipeline — into every
pytest process.
"""
