# logstash — fixed variant: the pipeline fragment requires the package
# that provides /etc/logstash/conf.d/.

class logstash {
  $syslog_path = '/var/log/syslog'
  $es_host     = 'es.example.com'

  package { 'logstash':
    ensure => installed,
  }

  # FIX: the package provides the conf.d directory.
  file { '/etc/logstash/conf.d/10-pipeline.conf':
    ensure  => file,
    content => "input { file { path => \"${syslog_path}\" } }\noutput { elasticsearch { hosts => [\"${es_host}:9200\"] } }\n",
    require => Package['logstash'],
  }

  service { 'logstash':
    ensure    => running,
    enable    => true,
    subscribe => File['/etc/logstash/conf.d/10-pipeline.conf'],
  }
}

include logstash
