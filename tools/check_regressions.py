#!/usr/bin/env python3
"""CI guard for the fuzz-regression corpus (``tests/regressions/``).

Asserts, for every committed reproducer:

1. its machine-readable header validates **field by field** (integer
   seed / case id / generator version, a disagreement kind the
   differential driver can actually emit, tristate expected verdicts,
   a ``found-by`` attribution, a non-empty manifest body) — every
   problem is reported with a per-field message, not just the first;
2. it was minted under the *current* generator version, so its
   seed/case-id still re-create the original catalog;
3. it parses as a Puppet manifest;
4. it is referenced by the replay test: the discovery the test
   parametrizes over must return exactly the files on disk, so a
   reproducer can neither be skipped silently nor linger unreplayed;
5. it carries a promotion record in ``promotions.json`` whose SHA-256
   matches the file — pinned reproducers only enter through
   ``rehearsal burnin``, and hand-edits after promotion invalidate
   the record (re-burn-in to re-mint it).

Quarantined reproducers (``tests/regressions/quarantine/``) get check
1 only: they are candidates, not yet replayed or promoted, but a
malformed candidate should fail CI before burn-in trips over it.

Exit codes: 0 — corpus is sound; 1 — a check failed.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.puppet.parser import parse_manifest  # noqa: E402
from repro.testing.generate import GENERATOR_VERSION  # noqa: E402
from repro.testing.orchestrate.burnin import (  # noqa: E402
    LEDGER_NAME,
    file_sha256,
    load_ledger,
)
from repro.testing.regressions import (  # noqa: E402
    discover,
    parse_header,
    validate_header,
)

REGRESSION_DIR = REPO_ROOT / "tests" / "regressions"
QUARANTINE_DIR = REGRESSION_DIR / "quarantine"
REPLAY_TEST = REPO_ROOT / "tests" / "test_regressions.py"


def _replay_parametrization():
    """The list of paths ``test_regressions.py`` actually parametrizes
    over (its module-level ``REGRESSIONS``), or None when the module
    cannot be imported or no longer exposes the list."""
    import importlib.util

    try:
        spec = importlib.util.spec_from_file_location(
            "replay_test_module", REPLAY_TEST
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
    except Exception:  # noqa: BLE001 — any import failure is a finding
        return None
    replayed = getattr(module, "REGRESSIONS", None)
    if not isinstance(replayed, list):
        return None
    return set(replayed)


def _promotion_index(failures):
    """filename -> latest promotion record, from the ledger."""
    ledger_path = REGRESSION_DIR / LEDGER_NAME
    if not ledger_path.is_file():
        failures.append(
            f"no {LEDGER_NAME} ledger next to the pinned corpus; "
            "pinned reproducers must enter through 'rehearsal burnin'"
        )
        return {}
    try:
        ledger = load_ledger(ledger_path)
    except (ValueError, json.JSONDecodeError) as exc:
        failures.append(f"{LEDGER_NAME}: unreadable: {exc}")
        return {}
    index = {}
    for i, record in enumerate(ledger["records"]):
        if not isinstance(record, dict) or "file" not in record:
            failures.append(f"{LEDGER_NAME}: record #{i} has no 'file'")
            continue
        index[record["file"]] = record  # later records win
    return index


def main() -> int:
    failures = []
    if not REGRESSION_DIR.is_dir():
        print(f"error: {REGRESSION_DIR} does not exist", file=sys.stderr)
        return 1

    discovered = discover(REGRESSION_DIR)
    if not discovered:
        failures.append("tests/regressions/ holds no reproducers")

    # Every file on disk must be in the replay test's *actual*
    # parametrization list — import the test module and read the list
    # it collects, so a rewrite that filters or hardcodes filenames
    # cannot leave a reproducer silently unreplayed.
    replayed = _replay_parametrization()
    if replayed is None:
        failures.append(
            f"cannot import {REPLAY_TEST.name} or it no longer "
            "exposes a REGRESSIONS list; the corpus is not "
            "guaranteed to be replayed"
        )
    else:
        unreplayed = [p.name for p in discovered if p not in replayed]
        if unreplayed:
            failures.append(
                f"not referenced by the replay test: {unreplayed}"
            )

    promotions = _promotion_index(failures)

    for path in discovered:
        text = path.read_text(encoding="utf8")
        problems = validate_header(text, path.name)
        if problems:
            failures.extend(problems)
            continue
        header = parse_header(text, path.name)
        if header.generator_version != GENERATOR_VERSION:
            failures.append(
                f"{path.name}: minted under generator "
                f"v{header.generator_version} but the current "
                f"generator is v{GENERATOR_VERSION} — its "
                "seed/case-id no longer re-create the catalog; "
                "re-mint the reproducer"
            )
            continue
        try:
            parse_manifest(text)
        except Exception as exc:  # noqa: BLE001 — report, don't crash
            failures.append(f"{path.name}: does not parse: {exc}")
            continue
        record = promotions.get(path.name)
        if record is None:
            if promotions:
                failures.append(
                    f"{path.name}: no promotion record in "
                    f"{LEDGER_NAME}; run 'rehearsal burnin'"
                )
        elif record.get("decision") != "promoted":
            failures.append(
                f"{path.name}: latest ledger record says "
                f"{record.get('decision')!r}, not 'promoted'"
            )
        elif record.get("sha256") != file_sha256(path):
            failures.append(
                f"{path.name}: content differs from its promotion "
                "record (edited after burn-in?); re-run "
                "'rehearsal burnin' to re-mint the record"
            )
        print(
            f"ok: {path.name} (seed {header.seed}, case "
            f"{header.case_id}, {header.disagreement}, expected "
            f"deterministic={header.expected_deterministic})"
        )

    if QUARANTINE_DIR.is_dir():
        for path in discover(QUARANTINE_DIR):
            problems = validate_header(
                path.read_text(encoding="utf8"),
                f"quarantine/{path.name}",
            )
            if problems:
                failures.extend(problems)
            else:
                print(f"ok: quarantine/{path.name} (awaiting burn-in)")

    if failures:
        print(
            f"\n{len(failures)} regression-corpus problem(s):",
            file=sys.stderr,
        )
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nregression corpus sound: {len(discovered)} reproducer(s).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
