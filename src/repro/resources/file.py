"""FS model for the ``file`` resource type (§3.3 "Files and directories").

Handles both files and directories: the ``ensure`` attribute selects
among ``present``/``file``, ``directory``, and ``absent``; ``content``
gives literal contents; ``source`` copies from another path; ``force``
allows replacing a (empty) directory by a file and vice versa.

Faithful to Puppet, a file resource does *not* create missing parent
directories — that is exactly the mechanism behind the Fig. 3a
non-determinism when the package dependency is omitted.
"""

from __future__ import annotations

from repro.errors import ResourceModelError
from repro.fs import (
    ERR,
    ID,
    Expr,
    Path,
    cp,
    creat,
    dir_,
    emptydir_,
    file_,
    file_with,
    ite,
    mkdir,
    none_,
    rm,
    seq,
)
from repro.resources.base import Resource

_VALID_ENSURES = {"present", "file", "directory", "absent"}


def compile_file(resource: Resource, context) -> Expr:
    path = Path.of(resource.get_str("path") or resource.title)
    ensure = (resource.get_str("ensure") or _implied_ensure(resource)).lower()
    if ensure == "link":
        raise ResourceModelError(
            f"{resource.ref}: symlinks are not modeled (Puppet's model "
            "hides platform-specific filesystem details, paper §7)"
        )
    if ensure not in _VALID_ENSURES:
        raise ResourceModelError(
            f"{resource.ref}: unsupported ensure => {ensure!r}"
        )
    content = resource.get_str("content")
    source = resource.get_str("source")
    force = resource.get_bool("force")
    if ensure == "directory":
        if content is not None:
            raise ResourceModelError(
                f"{resource.ref}: a directory cannot have content"
            )
        return _ensure_directory(path, force)
    if ensure == "absent":
        return _ensure_absent(path, force)
    if content is not None and source is not None:
        raise ResourceModelError(
            f"{resource.ref}: content and source are mutually exclusive"
        )
    if source is not None:
        return _ensure_file_from_source(path, Path.of(source), force)
    if content is None:
        # Puppet creates an empty file when neither is given.
        content = ""
    return _ensure_file_content(path, content, force)


def _implied_ensure(resource: Resource) -> str:
    """Puppet infers ensure from other attributes when omitted."""
    if resource.get_str("content") is not None or resource.get_str("source"):
        return "file"
    return "present"


def _ensure_file_content(path: Path, content: str, force: bool) -> Expr:
    """Place a file with exactly ``content`` at ``path``.

    The already-correct fast path (``filecontains?``) keeps the
    resource idempotent and lets the definitive-write analysis
    (Fig. 10b) classify the effect as ``file(content)``.
    """
    overwrite = seq(rm(path), creat(path, content))
    on_dir = seq(rm(path), creat(path, content)) if force else ERR
    return ite(
        file_with(path, content),
        ID,
        ite(
            file_(path),
            overwrite,
            ite(
                none_(path),
                creat(path, content),
                # It is a directory: rm only succeeds if empty.
                on_dir,
            ),
        ),
    )


def _ensure_file_from_source(path: Path, source: Path, force: bool) -> Expr:
    """Copy ``source`` over ``path`` (Fig. 3d uses this)."""
    replace = seq(rm(path), cp(source, path))
    on_dir = replace if force else ERR
    return ite(
        none_(path),
        cp(source, path),
        ite(file_(path), replace, on_dir),
    )


def _ensure_directory(path: Path, force: bool) -> Expr:
    on_file = seq(rm(path), mkdir(path)) if force else ERR
    return ite(
        dir_(path),
        ID,
        ite(none_(path), mkdir(path), on_file),
    )


def _ensure_absent(path: Path, force: bool) -> Expr:
    """Remove a file or empty directory; a populated directory is an
    error unless force purges it (not modeled — finite programs cannot
    enumerate unknown children, so force-on-populated errs)."""
    return ite(
        none_(path),
        ID,
        ite(
            file_(path),
            rm(path),
            ite(emptydir_(path), rm(path), ERR),
        ),
    )
