# logstash — log aggregation pipeline (§6 benchmark "logstash").
#
# SEEDED BUG: the pipeline definition is written into
# /etc/logstash/conf.d/, a directory provided by Package['logstash'],
# but carries no dependency on the package.

class logstash {
  $syslog_path = '/var/log/syslog'
  $es_host     = 'es.example.com'

  package { 'logstash':
    ensure => installed,
  }

  # BUG: missing require => Package['logstash'] (see logstash-fixed.pp).
  file { '/etc/logstash/conf.d/10-pipeline.conf':
    ensure  => file,
    content => "input { file { path => \"${syslog_path}\" } }\noutput { elasticsearch { hosts => [\"${es_host}:9200\"] } }\n",
  }

  service { 'logstash':
    ensure    => running,
    enable    => true,
    subscribe => File['/etc/logstash/conf.d/10-pipeline.conf'],
  }
}

include logstash
