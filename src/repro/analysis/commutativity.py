"""Syntactic commutativity checking (paper §4.3, Fig. 9).

A conventional read/write-set check cannot prove that two packages
commute, because both idempotently create shared directories like
``/usr/bin`` (false sharing).  Following the paper, the analysis
assigns each path one of four abstract values:

* ``⊥`` — untouched,
* ``R`` — read,
* ``D`` — *idempotently ensured to be a directory* via the guarded
  ``if (¬dir?(p)) mkdir(p)`` idiom, in tree order,
* ``W`` — written.

Two expressions commute when their footprints do not conflict
(Lemma 4).  Two additions over the paper's statement of the lemma:
``W``/``W`` overlaps conflict (clearly required — the printed lemma
omits it), and ``rm``/``emptydir?`` record a *children read* on the
directory, which conflicts with writes to any descendant (the
emptiness of a directory observes children that never appear in the
program text, mirroring the Fig. 8 fresh-child completion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, Hashable, Iterable, Mapping, Optional

from repro.fs import syntax as fx
from repro.fs.paths import Path


class Access(Enum):
    """Abstract access levels; BOT ⊏ READ, DIRED ⊏ WRITE."""

    BOT = 0
    READ = 1
    DIRED = 2
    WRITE = 3


def _lub(a: Access, b: Access) -> Access:
    if a == b:
        return a
    if a == Access.BOT:
        return b
    if b == Access.BOT:
        return a
    # READ ⊔ DIRED and anything with WRITE collapse to WRITE.
    return Access.WRITE


@dataclass(frozen=True)
class Footprint:
    """The per-path access summary of one expression."""

    accesses: "FrozenSet[tuple[Path, Access]]"
    children_reads: FrozenSet[Path]

    @property
    def reads(self) -> FrozenSet[Path]:
        return frozenset(p for p, a in self.accesses if a == Access.READ)

    @property
    def writes(self) -> FrozenSet[Path]:
        return frozenset(p for p, a in self.accesses if a == Access.WRITE)

    @property
    def dir_ensures(self) -> FrozenSet[Path]:
        return frozenset(p for p, a in self.accesses if a == Access.DIRED)

    def touched(self) -> FrozenSet[Path]:
        return frozenset(p for p, _ in self.accesses)


class _Analyzer:
    def __init__(self) -> None:
        self.state: Dict[Path, Access] = {}
        self.children_reads: set[Path] = set()

    # -- helpers ------------------------------------------------------------

    def _get(self, p: Path) -> Access:
        return self.state.get(p, Access.BOT)

    def read(self, p: Path) -> None:
        if p.is_root:
            return
        current = self._get(p)
        if current in (Access.DIRED, Access.WRITE):
            # Reading state this expression itself established observes
            # internal, not external, state — keep the stronger value
            # (this is what lets a package's creats read the shared
            # directories its own guarded mkdirs ensured).
            return
        self.state[p] = Access.READ

    def write(self, p: Path) -> None:
        self.state[p] = Access.WRITE

    def read_children(self, p: Path) -> None:
        self.children_reads.add(p)

    def _parent_is_dired(self, p: Path) -> bool:
        parent = p.parent()
        return parent.is_root or self._get(parent) == Access.DIRED

    # -- traversal -----------------------------------------------------------

    def pred(self, a: fx.Pred) -> None:
        if isinstance(a, (fx.IsNone, fx.IsFile, fx.IsDir, fx.IsFileWith)):
            self.read(a.path)
        elif isinstance(a, fx.IsEmptyDir):
            self.read(a.path)
            self.read_children(a.path)
        elif isinstance(a, fx.PNot):
            self.pred(a.inner)
        elif isinstance(a, (fx.PAnd, fx.POr)):
            self.pred(a.left)
            self.pred(a.right)

    def expr(self, e: fx.Expr) -> None:
        if isinstance(e, (fx.Id, fx.Err)):
            return
        guarded = _match_guarded_mkdir(e)
        if guarded is not None:
            # Fig. 9b: D only when the current value is ⊑ D and the
            # parent is already ensured (tree order); otherwise a write.
            current = self._get(guarded)
            if current in (Access.BOT, Access.DIRED) and self._parent_is_dired(
                guarded
            ):
                self.state[guarded] = Access.DIRED
            else:
                self.read(guarded.parent())
                self.write(guarded)
            return
        if isinstance(e, fx.Mkdir):
            self.read(e.path.parent())
            self.write(e.path)
        elif isinstance(e, fx.Creat):
            self.read(e.path.parent())
            self.write(e.path)
        elif isinstance(e, fx.Rm):
            self.read_children(e.path)
            self.write(e.path)
        elif isinstance(e, fx.Cp):
            self.read(e.src)
            self.read(e.dst.parent())
            self.write(e.dst)
        elif isinstance(e, fx.Seq):
            self.expr(e.first)
            self.expr(e.second)
        elif isinstance(e, fx.If):
            self.pred(e.pred)
            before = dict(self.state)
            self.expr(e.then_branch)
            then_state = self.state
            self.state = before
            self.expr(e.else_branch)
            merged = dict(self.state)
            for p, a in then_state.items():
                merged[p] = _lub(merged.get(p, Access.BOT), a)
            self.state = merged
        else:
            raise TypeError(f"unknown expression: {e!r}")


def _match_guarded_mkdir(e: fx.Expr) -> Optional[Path]:
    """Recognize ``if (¬dir?(p)) mkdir(p) else id`` and the equivalent
    ``if (dir?(p)) id else mkdir(p)``."""
    if not isinstance(e, fx.If):
        return None
    pred, then_b, else_b = e.pred, e.then_branch, e.else_branch
    if (
        isinstance(pred, fx.PNot)
        and isinstance(pred.inner, fx.IsDir)
        and isinstance(then_b, fx.Mkdir)
        and then_b.path == pred.inner.path
        and isinstance(else_b, fx.Id)
    ):
        return then_b.path
    if (
        isinstance(pred, fx.IsDir)
        and isinstance(then_b, fx.Id)
        and isinstance(else_b, fx.Mkdir)
        and else_b.path == pred.path
    ):
        return else_b.path
    return None


def footprint(e: fx.Expr) -> Footprint:
    """Compute the abstract footprint of an expression."""
    analyzer = _Analyzer()
    analyzer.expr(e)
    return Footprint(
        accesses=frozenset(
            (p, a) for p, a in analyzer.state.items() if a != Access.BOT
        ),
        children_reads=frozenset(analyzer.children_reads),
    )


def footprints_commute(f1: Footprint, f2: Footprint) -> bool:
    """Lemma 4 (extended): syntactic sufficient condition for
    ``e1; e2 ≡ e2; e1``."""
    return not (_conflicts(f1, f2) or _conflicts(f2, f1))


def _conflicts(a: Footprint, b: Footprint) -> bool:
    b_touch_rw = b.reads | b.writes
    if a.writes & (b_touch_rw | b.dir_ensures):
        return True
    if a.dir_ensures & b_touch_rw:
        return True
    # Children reads: emptiness of d observes every descendant.
    grows = b.writes | b.dir_ensures
    for d in a.children_reads:
        for p in grows:
            if d.is_ancestor_of(p):
                return True
    return False


def exprs_commute(e1: fx.Expr, e2: fx.Expr) -> bool:
    """Convenience wrapper computing footprints on the fly."""
    return footprints_commute(footprint(e1), footprint(e2))


def commutativity_matrix(
    footprints: "Mapping[Hashable, Footprint]",
) -> "Dict[Hashable, Dict[Hashable, bool]]":
    """All-pairs :func:`footprints_commute`, computed once.

    The determinacy exploration asks "does n commute with m?" on every
    branch; recomputing the pairwise check there is O(footprint) per
    query.  This matrix pays the quadratic cost a single time up front
    and answers every later query with a dict lookup.  Symmetric by
    construction (commutation is); the diagonal is True.
    """
    keys = list(footprints)
    matrix: Dict[Hashable, Dict[Hashable, bool]] = {k: {} for k in keys}
    for i, a in enumerate(keys):
        fa = footprints[a]
        matrix[a][a] = True
        for b in keys[i + 1 :]:
            commute = footprints_commute(fa, footprints[b])
            matrix[a][b] = commute
            matrix[b][a] = commute
    return matrix
