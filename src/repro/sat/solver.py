"""A CDCL SAT solver.

This replaces the Z3 backend of the original Rehearsal artifact.  The
determinacy formulas are propositional after finite-domain encoding
(see DESIGN.md), so a complete SAT solver decides exactly the same
queries.

Features: two-watched-literal propagation, first-UIP conflict-clause
learning with recursive minimization, EVSIDS branching, phase saving,
Luby restarts, and LBD-based learned-clause deletion.

The solver is *incremental*: the clause database — including learned
clauses and root-level units — survives ``solve()`` calls, so a
sequence of related queries shares all derived facts.  Queries are
distinguished by ``assumptions``, temporary unit literals applied as
the first decisions of the search (MiniSat's interface).  When the
instance is unsatisfiable *under the assumptions*, final-conflict
analysis reports the subset of assumptions in the unsat core
(``SolveResult.core``), which callers use for fault localization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import SolverError

UNDEF = 0
TRUE = 1
FALSE = -1


@dataclass
class SolveResult:
    """Outcome of a solver run.

    ``core`` is only meaningful when ``sat`` is False and the query was
    made under assumptions: it holds the subset of the assumption
    literals (as passed) whose conjunction with the clause database is
    already unsatisfiable.  An empty core on an assumption query means
    the clauses alone are unsatisfiable.
    """

    sat: bool
    assignment: Dict[int, bool] = field(default_factory=dict)
    core: List[int] = field(default_factory=list)
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0

    def __bool__(self) -> bool:
        return self.sat


class Solver:
    """CDCL solver over integer literals (DIMACS convention).

    ``config`` (a :class:`repro.sat.backend.SolverConfig`, held by
    duck-typed attribute access so this module stays import-cycle
    free) selects the restart policy, branching seed, phase polarity
    and activity decay.  ``config=None`` is byte-for-byte the
    historical behavior — the reference configuration.
    """

    def __init__(self, num_vars: int = 0, config=None):
        self.config = config
        if config is not None:
            self._var_decay = config.decay
            self._seed = config.seed
            self._phase_default = config.phase_default
            self._restart_policy = config.restart_policy
            self._restart_unit = config.restart_unit
            self._restart_growth = config.restart_growth
        else:
            self._var_decay = 0.95
            self._seed = 0
            self._phase_default = False
            self._restart_policy = "luby"
            self._restart_unit = 64
            self._restart_growth = 1.5
        self.num_vars = 0
        self._clauses: List[List[int]] = []
        self._learned: List[List[int]] = []
        self._watches: Dict[int, List[List[int]]] = {}
        self._assign: List[int] = [UNDEF]
        self._level: List[int] = [0]
        self._reason: List[Optional[List[int]]] = [None]
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._queue_head = 0
        self._activity: List[float] = [0.0]
        self._phase: List[bool] = [False]
        self._occurs: List[bool] = [False]
        self._var_inc = 1.0
        self._ok = True
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        if num_vars:
            self.ensure_vars(num_vars)

    # -- clause database ----------------------------------------------------

    def ensure_vars(self, n: int) -> None:
        while self.num_vars < n:
            self.num_vars += 1
            self._assign.append(UNDEF)
            self._level.append(0)
            self._reason.append(None)
            # With a nonzero branching seed, start each variable's
            # activity at a tiny deterministic jitter instead of 0.0:
            # too small to outweigh a single bump, but enough to
            # shuffle which variable wins ties between equally-active
            # candidates — the portfolio's branching diversification.
            self._activity.append(
                _activity_jitter(self._seed, self.num_vars)
                if self._seed
                else 0.0
            )
            self._phase.append(self._phase_default)
            self._occurs.append(False)
            self._watches[self.num_vars] = []
            self._watches[-self.num_vars] = []

    def add_clause(self, lits: Sequence[int]) -> None:
        """Add a problem clause; duplicate literals removed, tautologies
        dropped.  Empty clause makes the instance trivially UNSAT.

        Clauses may be added between ``solve()`` calls (the incremental
        interface).  The clause is simplified against the root-level
        assignment first: literals already false at level 0 must not be
        chosen as watches — propagation has moved past them, so a watch
        on one would never fire again and the solver could answer SAT
        with a model violating the clause.
        """
        if not self._ok:
            return
        if self._decision_level() != 0:
            # A real check, not an assert: simplifying the clause
            # against search-level assignments below would silently
            # corrupt it (and -O strips asserts).
            raise SolverError("clauses can only be added at decision level 0")
        seen: set[int] = set()
        clause: List[int] = []
        for lit in lits:
            if lit == 0:
                raise SolverError("literal 0 is not allowed")
            self.ensure_vars(abs(lit))
            if -lit in seen:
                return  # tautology
            if lit in seen:
                continue
            value = self._value(lit)
            if value == TRUE:
                return  # satisfied at the root: implied by a unit
            seen.add(lit)
            if value != FALSE:
                clause.append(lit)
            self._occurs[abs(lit)] = True
        if not clause:
            self._ok = False
            return
        if len(clause) == 1:
            if not self._enqueue(clause[0], clause):
                self._ok = False
            return
        self._clauses.append(clause)
        self._watch(clause)

    def _watch(self, clause: List[int]) -> None:
        self._watches[-clause[0]].append(clause)
        self._watches[-clause[1]].append(clause)

    # -- assignment helpers ---------------------------------------------------

    def _value(self, lit: int) -> int:
        v = self._assign[abs(lit)]
        if v == UNDEF:
            return UNDEF
        return v if lit > 0 else -v

    def _enqueue(self, lit: int, reason: Optional[List[int]]) -> bool:
        val = self._value(lit)
        if val == FALSE:
            return False
        if val == TRUE:
            return True
        var = abs(lit)
        self._assign[var] = TRUE if lit > 0 else FALSE
        self._level[var] = self._decision_level()
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    # -- propagation ----------------------------------------------------------

    def _propagate(self) -> Optional[List[int]]:
        """Unit propagation; returns a conflicting clause or None."""
        while self._queue_head < len(self._trail):
            lit = self._trail[self._queue_head]
            self._queue_head += 1
            self.propagations += 1
            watchers = self._watches[lit]
            self._watches[lit] = []
            i = 0
            n = len(watchers)
            while i < n:
                clause = watchers[i]
                i += 1
                # Normalize: watched literals are clause[0], clause[1].
                if clause[0] == -lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == TRUE:
                    self._watches[lit].append(clause)
                    continue
                # Look for a replacement watch.
                found = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) != FALSE:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches[-clause[1]].append(clause)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                self._watches[lit].append(clause)
                if not self._enqueue(first, clause):
                    # Conflict: restore remaining watchers first.
                    self._watches[lit].extend(watchers[i:])
                    return clause
        return None

    # -- conflict analysis -------------------------------------------------------

    def _analyze(self, conflict: List[int]) -> tuple[List[int], int]:
        """First-UIP learning; returns (learned clause, backjump level)."""
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = 0
        reason: Optional[List[int]] = conflict
        index = len(self._trail)
        cur_level = self._decision_level()

        while True:
            assert reason is not None
            for q in reason:
                if q == lit:
                    continue
                var = abs(q)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self._level[var] >= cur_level:
                        counter += 1
                    else:
                        learned.append(q)
            # Pick the next literal to expand from the trail.
            while True:
                index -= 1
                lit = self._trail[index]
                if seen[abs(lit)]:
                    break
            counter -= 1
            if counter == 0:
                learned[0] = -lit
                break
            reason = self._reason[abs(lit)]
            seen[abs(lit)] = False

        learned = self._minimize(learned, seen)
        if len(learned) == 1:
            return learned, 0
        # Backjump to the second-highest level in the clause.
        levels = sorted(
            (self._level[abs(q)] for q in learned[1:]), reverse=True
        )
        # Move the second-watch literal into position 1.
        best = max(range(1, len(learned)), key=lambda i: self._level[abs(learned[i])])
        learned[1], learned[best] = learned[best], learned[1]
        return learned, levels[0]

    def _minimize(self, learned: List[int], seen: List[bool]) -> List[int]:
        """Remove literals implied by the rest of the clause (recursive
        clause minimization, memoized — Tseitin reasons can be very
        wide, so the naive recursion is exponential)."""
        memo: Dict[int, bool] = {}
        kept = [learned[0]]
        for q in learned[1:]:
            if not self._redundant(q, seen, memo, depth=0):
                kept.append(q)
        return kept

    def _redundant(
        self, lit: int, seen: List[bool], memo: Dict[int, bool], depth: int
    ) -> bool:
        var = abs(lit)
        cached = memo.get(var)
        if cached is not None:
            return cached
        if depth > 24:
            return False
        reason = self._reason[var]
        if reason is None:
            memo[var] = False
            return False
        result = True
        for q in reason:
            if abs(q) == var:
                continue
            qvar = abs(q)
            if self._level[qvar] == 0 or seen[qvar]:
                continue
            if not self._redundant(q, seen, memo, depth + 1):
                result = False
                break
        memo[var] = result
        return result

    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for i in range(1, self.num_vars + 1):
                self._activity[i] *= 1e-100
            self._var_inc *= 1e-100

    def _decay(self) -> None:
        self._var_inc /= self._var_decay

    # -- backtracking ---------------------------------------------------------

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        limit = self._trail_lim[level]
        for lit in reversed(self._trail[limit:]):
            var = abs(lit)
            self._phase[var] = self._assign[var] == TRUE
            self._assign[var] = UNDEF
            self._reason[var] = None
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._queue_head = len(self._trail)

    # -- branching --------------------------------------------------------------

    def _pick_branch(self) -> int:
        best_var = 0
        best_act = -1.0
        for var in range(1, self.num_vars + 1):
            # Vars in no clause (e.g. eliminated by preprocessing) are
            # free: branching on them only pads the trail.
            if (
                self._occurs[var]
                and self._assign[var] == UNDEF
                and self._activity[var] > best_act
            ):
                best_act = self._activity[var]
                best_var = var
        if best_var == 0:
            return 0
        return best_var if self._phase[best_var] else -best_var

    # -- main loop ---------------------------------------------------------------

    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
    ) -> SolveResult:
        """Decide satisfiability under temporary ``assumptions``.

        The clause database (problem clauses, learned clauses,
        root-level units) persists across calls; only the assumptions
        are forgotten.  Following MiniSat, assumptions are applied as
        the first decisions of the search and *re-applied after every
        restart*, so learned unit clauses can be retained at level 0
        without ever losing an assumption.  On UNSAT,
        ``SolveResult.core`` holds the implicated assumptions.
        """
        self._backtrack(0)
        if not self._ok:
            return self._result(False)
        assumptions = list(assumptions)
        for lit in assumptions:
            if lit == 0:
                raise SolverError("literal 0 is not allowed")
            self.ensure_vars(abs(lit))
            self._occurs[abs(lit)] = True
        if self._propagate() is not None:
            self._ok = False
            return self._result(False)

        restart_unit = self._restart_unit
        luby_index = 1
        geometric_interval = float(restart_unit)
        if self._restart_policy == "geometric":
            conflicts_until_restart = restart_unit
        else:
            conflicts_until_restart = restart_unit * _luby(luby_index)
        max_learned = max(1000, len(self._clauses) // 2)
        # The budget is per call: self.conflicts accumulates over the
        # solver's lifetime, so a reused instance must not charge this
        # query for conflicts earlier queries spent.
        conflict_limit = (
            self.conflicts + max_conflicts
            if max_conflicts is not None
            else None
        )

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_until_restart -= 1
                if self._decision_level() == 0:
                    self._ok = False
                    return self._result(False)
                learned, back_level = self._analyze(conflict)
                self._backtrack(back_level)
                if len(learned) == 1:
                    # A learned unit is implied by the clauses alone
                    # (conflict analysis never resolves on assumption
                    # literals), so it is sound — and valuable for
                    # later calls — to fix it at level 0.  Its reason
                    # is itself, which keeps final-conflict analysis
                    # from mistaking it for an assumption.
                    if not self._enqueue(learned[0], learned):
                        self._ok = False
                        self._backtrack(0)
                        return self._result(False)
                else:
                    self._learned.append(learned)
                    self._watch(learned)
                    self._enqueue(learned[0], learned)
                self._decay()
                if conflict_limit is not None and self.conflicts >= conflict_limit:
                    # Leave the solver reusable: every exit path —
                    # including this abnormal one — returns at level 0
                    # so clauses can still be added afterwards.
                    self._backtrack(0)
                    raise SolverError("conflict budget exhausted")
                if len(self._learned) > max_learned:
                    self._reduce_learned()
                    max_learned = int(max_learned * 1.3)
                continue

            if conflicts_until_restart <= 0:
                self.restarts += 1
                if self._restart_policy == "geometric":
                    geometric_interval *= self._restart_growth
                    conflicts_until_restart = int(geometric_interval)
                else:
                    luby_index += 1
                    conflicts_until_restart = restart_unit * _luby(luby_index)
                self._backtrack(0)
                continue

            # Re-establish assumptions first: decision level k holds
            # assumption k (or a dummy level when it already holds).
            lit = 0
            while self._decision_level() < len(assumptions):
                p = assumptions[self._decision_level()]
                v = self._value(p)
                if v == TRUE:
                    self._trail_lim.append(len(self._trail))
                elif v == FALSE:
                    core = self._analyze_final(p)
                    self._backtrack(0)
                    return self._result(False, core=core)
                else:
                    lit = p
                    break
            if lit == 0 and self._decision_level() >= len(assumptions):
                lit = self._pick_branch()
                if lit == 0:
                    result = self._result(True)
                    self._backtrack(0)
                    return result
            self.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(lit, None)

    def _analyze_final(self, p: int) -> List[int]:
        """``p`` is an assumption found FALSE while (re-)applying the
        assumptions: every decision currently on the trail is itself an
        assumption.  Walk the implication graph of ¬p back to decisions
        to collect the implicated assumptions (MiniSat's analyzeFinal).
        """
        core = {p}
        var0 = abs(p)
        if self._level[var0] == 0:
            return sorted(core)  # the clauses alone imply ¬p
        seen = {var0}
        start = self._trail_lim[0]
        for i in range(len(self._trail) - 1, start - 1, -1):
            lit = self._trail[i]
            var = abs(lit)
            if var not in seen:
                continue
            seen.discard(var)
            reason = self._reason[var]
            if reason is None:
                core.add(lit)  # a decision == an earlier assumption
            else:
                for q in reason:
                    qv = abs(q)
                    if qv != var and self._level[qv] > 0:
                        seen.add(qv)
        return sorted(core)

    def _reduce_learned(self) -> None:
        """Drop the less active half of learned clauses (keeping those
        currently used as reasons)."""
        reasons = {id(r) for r in self._reason if r is not None}
        self._learned.sort(key=len)
        keep = self._learned[: len(self._learned) // 2]
        drop = self._learned[len(self._learned) // 2 :]
        kept_drop = [c for c in drop if id(c) in reasons or len(c) <= 2]
        removed = {id(c) for c in drop if id(c) not in reasons and len(c) > 2}
        self._learned = keep + kept_drop
        for lit in list(self._watches):
            self._watches[lit] = [
                c for c in self._watches[lit] if id(c) not in removed
            ]

    def _result(self, sat: bool, core: Optional[List[int]] = None) -> SolveResult:
        assignment: Dict[int, bool] = {}
        if sat:
            assignment = {
                var: self._assign[var] == TRUE
                for var in range(1, self.num_vars + 1)
                if self._assign[var] != UNDEF
            }
        return SolveResult(
            sat=sat,
            assignment=assignment,
            core=list(core or ()),
            conflicts=self.conflicts,
            decisions=self.decisions,
            propagations=self.propagations,
            restarts=self.restarts,
        )

    # -- database inspection ------------------------------------------------

    def root_units(self) -> List[int]:
        """The literals fixed at decision level 0 (problem units plus
        learned units)."""
        limit = self._trail_lim[0] if self._trail_lim else len(self._trail)
        return list(self._trail[:limit])

    def clause_database(
        self, include_learned: bool = False
    ) -> List[List[int]]:
        """A snapshot of the current clause database: root-level units
        as unit clauses, then problem clauses (and optionally learned
        clauses).  Together with :attr:`num_vars` this is exactly what
        :func:`repro.sat.dimacs.write_dimacs` needs to dump the
        instance for offline debugging."""
        if not self._ok:
            # Known unsatisfiable regardless of clauses: the empty
            # clause reproduces that verdict on re-read.
            return [[]]
        clauses: List[List[int]] = [[lit] for lit in self.root_units()]
        clauses.extend(list(c) for c in self._clauses)
        if include_learned:
            clauses.extend(list(c) for c in self._learned)
        return clauses


_JITTER_MASK = (1 << 64) - 1


def _activity_jitter(seed: int, var: int) -> float:
    """A deterministic pseudo-random initial activity in [0, 1e-4)
    from (seed, var) — splitmix64-style integer mixing, so the jitter
    is stable across processes and Python hash randomization."""
    x = (seed * 0x9E3779B97F4A7C15 + var * 0xBF58476D1CE4E5B9) & _JITTER_MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _JITTER_MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _JITTER_MASK
    x ^= x >> 31
    return (x / float(_JITTER_MASK + 1)) * 1e-4


def _luby(i: int) -> int:
    """The Luby restart sequence (1-based): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8…

    If i = 2^k - 1 the value is 2^(k-1); otherwise recurse on
    i - 2^(k-1) + 1 where 2^(k-1) ≤ i < 2^k - 1.
    """
    while True:
        k = i.bit_length()
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i = i - (1 << (k - 1)) + 1


def solve_cnf(
    clauses: Sequence[Sequence[int]], num_vars: int = 0
) -> SolveResult:
    """One-shot convenience wrapper."""
    solver = Solver(num_vars)
    for clause in clauses:
        solver.add_clause(clause)
    return solver.solve()
