"""Benchmark harness for the paper's §6 figures."""

from repro.bench.harness import (
    BenchResult,
    TIMEOUT,
    batch_cache_rows,
    batch_throughput_rows,
    fig11a_rows,
    fig11b_rows,
    fig11c_rows,
    fig12_rows,
    fig13_deterministic_rows,
    fig13_rows,
    render_rows,
    synthetic_conflict_graph,
    timed_determinism,
    verdict_rows,
)

__all__ = [
    "BenchResult",
    "TIMEOUT",
    "batch_cache_rows",
    "batch_throughput_rows",
    "fig11a_rows",
    "fig11b_rows",
    "fig11c_rows",
    "fig12_rows",
    "fig13_deterministic_rows",
    "fig13_rows",
    "render_rows",
    "synthetic_conflict_graph",
    "timed_determinism",
    "verdict_rows",
]
