"""Hash-consed boolean formulas.

The symbolic execution of FS programs builds very large formula DAGs
with heavy sharing (the same sub-state formulas appear in many branch
states).  A :class:`TermBank` interns every node so that structurally
equal terms are pointer-equal, constant-folds trivial cases, and keeps
memory linear in the number of *distinct* subterms.

Terms are plain integers? No — terms are small immutable node objects
owned by their bank; identity comparison is valid within one bank.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Optional, Tuple


@dataclass(frozen=True)
class Term:
    """A node in the formula DAG.

    ``kind`` is one of ``"true" | "false" | "var" | "not" | "and" | "or"``.
    ``args`` holds child terms; ``name`` is set for variables only.
    Use :class:`TermBank` to construct terms — do not instantiate
    directly, or sharing and constant folding are lost.
    """

    kind: str
    args: Tuple["Term", ...] = ()
    name: str = ""
    uid: int = field(default=0, compare=False)

    def __repr__(self) -> str:
        return term_to_str(self)


def term_to_str(t: Term, max_depth: int = 6) -> str:
    if t.kind == "true":
        return "true"
    if t.kind == "false":
        return "false"
    if t.kind == "var":
        return t.name
    if max_depth <= 0:
        return "..."
    inner = ", ".join(term_to_str(a, max_depth - 1) for a in t.args)
    return f"{t.kind}({inner})"


class TermBank:
    """Interning factory for :class:`Term` nodes.

    Guarantees: structural equality implies identity; ``and_``/``or_``
    flatten nested same-kind nodes, drop units, short-circuit on
    dominators, and sort arguments for canonical form; double negation
    cancels.

    Construction is thread-safe: interning serializes on a lock, so
    concurrent builders (the cube sub-explorers of
    :mod:`repro.analysis.determinism` share one bank across a thread
    pool) can never mint two nodes for one structural key or reuse a
    uid.  Everything else is reads of immutable nodes and needs no
    locking.
    """

    def __init__(self) -> None:
        self._intern: Dict[tuple, Term] = {}
        self._lock = threading.Lock()
        self._next_uid = 2
        self.TRUE = Term("true", uid=0)
        self.FALSE = Term("false", uid=1)
        self._intern[("true",)] = self.TRUE
        self._intern[("false",)] = self.FALSE
        self._vars: Dict[str, Term] = {}
        self._digests: Dict[int, str] = {}

    # -- construction -------------------------------------------------------

    def var(self, name: str) -> Term:
        existing = self._vars.get(name)
        if existing is not None:
            return existing
        t = self._mk(("var", name), "var", (), name)
        self._vars[name] = t
        return t

    def const(self, value: bool) -> Term:
        return self.TRUE if value else self.FALSE

    def not_(self, t: Term) -> Term:
        if t is self.TRUE:
            return self.FALSE
        if t is self.FALSE:
            return self.TRUE
        if t.kind == "not":
            return t.args[0]
        return self._mk(("not", t.uid), "not", (t,))

    def and_(self, *terms: Term) -> Term:
        return self._nary("and", self.TRUE, self.FALSE, terms)

    def or_(self, *terms: Term) -> Term:
        return self._nary("or", self.FALSE, self.TRUE, terms)

    def implies(self, a: Term, b: Term) -> Term:
        return self.or_(self.not_(a), b)

    def iff(self, a: Term, b: Term) -> Term:
        if a is b:
            return self.TRUE
        return self.and_(self.implies(a, b), self.implies(b, a))

    def xor(self, a: Term, b: Term) -> Term:
        return self.not_(self.iff(a, b))

    def ite(self, cond: Term, then_t: Term, else_t: Term) -> Term:
        if cond is self.TRUE:
            return then_t
        if cond is self.FALSE:
            return else_t
        if then_t is else_t:
            return then_t
        return self.or_(
            self.and_(cond, then_t), self.and_(self.not_(cond), else_t)
        )

    def exactly_one(self, terms: Iterable[Term]) -> Term:
        """Pairwise at-most-one plus at-least-one."""
        items = list(terms)
        at_least = self.or_(*items)
        at_most = [
            self.not_(self.and_(items[i], items[j]))
            for i in range(len(items))
            for j in range(i + 1, len(items))
        ]
        return self.and_(at_least, *at_most)

    # -- internals ----------------------------------------------------------

    def _nary(
        self, kind: str, unit: Term, dominator: Term, terms: Tuple[Term, ...]
    ) -> Term:
        flat: list[Term] = []
        seen: set[int] = set()
        stack = list(reversed(terms))
        while stack:
            t = stack.pop()
            if t is dominator:
                return dominator
            if t is unit:
                continue
            if t.kind == kind:
                stack.extend(reversed(t.args))
                continue
            if t.uid not in seen:
                seen.add(t.uid)
                flat.append(t)
        # x and not-x in the same conjunction/disjunction collapses.
        for t in flat:
            if t.kind == "not" and t.args[0].uid in seen:
                return dominator
        if not flat:
            return unit
        if len(flat) == 1:
            return flat[0]
        flat.sort(key=lambda t: t.uid)
        key = (kind,) + tuple(t.uid for t in flat)
        return self._mk(key, kind, tuple(flat))

    def _mk(
        self, key: tuple, kind: str, args: Tuple[Term, ...], name: str = ""
    ) -> Term:
        # Lock-free fast path: hits are the common case and a dict read
        # is atomic; the check-then-insert (and the uid bump) must be
        # serialized or two threads can intern distinct twins.
        existing = self._intern.get(key)
        if existing is not None:
            return existing
        with self._lock:
            existing = self._intern.get(key)
            if existing is not None:
                return existing
            t = Term(kind, args, name, uid=self._next_uid)
            self._next_uid += 1
            self._intern[key] = t
            return t

    # -- inspection -----------------------------------------------------------

    @property
    def num_terms(self) -> int:
        return len(self._intern)

    def digest(self, t: Term) -> str:
        """Stable structural digest of ``t``, memoized per bank.

        See :func:`structural_digest` for the stability contract.  The
        memo is keyed by uid, which is safe because uids are never
        reused within a bank.
        """
        cached = self._digests.get(t.uid)
        if cached is not None:
            return cached
        structural_digest(t, self._digests)
        return self._digests[t.uid]

    def variables(self, t: Term) -> set[str]:
        """Variable names occurring in a term DAG."""
        out: set[str] = set()
        seen: set[int] = set()
        stack = [t]
        while stack:
            cur = stack.pop()
            if cur.uid in seen:
                continue
            seen.add(cur.uid)
            if cur.kind == "var":
                out.add(cur.name)
            else:
                stack.extend(cur.args)
        return out

    def evaluate(self, t: Term, assignment: Dict[str, bool]) -> bool:
        """Evaluate under a total assignment (used for model checking
        and in tests); missing variables default to False."""
        memo: Dict[int, bool] = {}

        def go(node: Term) -> bool:
            cached = memo.get(node.uid)
            if cached is not None:
                return cached
            if node.kind == "true":
                value = True
            elif node.kind == "false":
                value = False
            elif node.kind == "var":
                value = assignment.get(node.name, False)
            elif node.kind == "not":
                value = not go(node.args[0])
            elif node.kind == "and":
                value = all(go(a) for a in node.args)
            elif node.kind == "or":
                value = any(go(a) for a in node.args)
            else:
                raise TypeError(f"unknown term kind: {node.kind}")
            memo[node.uid] = value
            return value

        return go(t)


def structural_digest(t: Term, memo: Optional[Dict[int, str]] = None) -> str:
    """Content digest of a term that is stable across processes.

    Uids are process-local (interning order depends on construction
    order), so anything persisted across runs must key on structure
    instead.  Two subtleties make a naive hash unstable:

    - ``_nary`` sorts and/or arguments *by uid*, so the same formula
      built in a different order carries its arguments in a different
      order.  The digest therefore hashes the **sorted child digests**
      for and/or nodes — order-insensitive, matching the semantics.
    - Banks constant-fold identically regardless of order, so equal
      formulas always reach this function as DAGs with equal node
      *sets*; only argument order can differ.

    ``memo`` maps uid -> hex digest and may be shared across calls
    within one bank (uids are never reused).
    """
    if memo is None:
        memo = {}
    stack = [t]
    while stack:
        cur = stack[-1]
        if cur.uid in memo:
            stack.pop()
            continue
        pending = [a for a in cur.args if a.uid not in memo]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        if cur.kind == "true":
            payload = b"T"
        elif cur.kind == "false":
            payload = b"F"
        elif cur.kind == "var":
            payload = b"v:" + cur.name.encode("utf-8")
        elif cur.kind == "not":
            payload = b"n:" + memo[cur.args[0].uid].encode("ascii")
        else:  # and / or
            child = sorted(memo[a.uid] for a in cur.args)
            payload = cur.kind.encode("ascii") + b":" + ":".join(child).encode("ascii")
        memo[cur.uid] = hashlib.blake2b(payload, digest_size=16).hexdigest()
    return memo[t.uid]


def iter_dag(t: Term) -> Iterator[Term]:
    """All distinct nodes reachable from ``t``."""
    seen: set[int] = set()
    stack = [t]
    while stack:
        cur = stack.pop()
        if cur.uid in seen:
            continue
        seen.add(cur.uid)
        yield cur
        stack.extend(cur.args)


def dag_size(t: Term) -> int:
    return sum(1 for _ in iter_dag(t))
