"""Unit tests for repro.fs.paths."""

import pytest

from repro.fs.paths import Path, closure_under_parents


class TestParsing:
    def test_root(self):
        assert Path.of("/") == Path.root()
        assert Path.of("/").is_root

    def test_simple(self):
        assert Path.of("/a/b").parts == ("a", "b")

    def test_trailing_slash(self):
        assert Path.of("/a/b/") == Path.of("/a/b")

    def test_repeated_slashes(self):
        assert Path.of("/a//b") == Path.of("/a/b")

    def test_relative_rejected(self):
        with pytest.raises(ValueError):
            Path.of("a/b")

    def test_str_roundtrip(self):
        assert str(Path.of("/etc/apache2/sites")) == "/etc/apache2/sites"
        assert str(Path.root()) == "/"


class TestStructure:
    def test_parent(self):
        assert Path.of("/a/b").parent() == Path.of("/a")
        assert Path.of("/a").parent() == Path.root()

    def test_root_parent_is_root(self):
        assert Path.root().parent() == Path.root()

    def test_child(self):
        assert Path.of("/a").child("b") == Path.of("/a/b")

    def test_child_rejects_slash(self):
        with pytest.raises(ValueError):
            Path.of("/a").child("b/c")

    def test_child_rejects_empty(self):
        with pytest.raises(ValueError):
            Path.of("/a").child("")

    def test_join(self):
        assert Path.of("/a").join("b/c") == Path.of("/a/b/c")

    def test_name(self):
        assert Path.of("/a/b").name == "b"
        assert Path.root().name == ""

    def test_depth(self):
        assert Path.root().depth() == 0
        assert Path.of("/a/b/c").depth() == 3


class TestRelations:
    def test_ancestors(self):
        got = list(Path.of("/a/b/c").ancestors())
        assert got == [Path.of("/a/b"), Path.of("/a"), Path.root()]

    def test_is_ancestor_of(self):
        assert Path.of("/a").is_ancestor_of(Path.of("/a/b/c"))
        assert not Path.of("/a/b").is_ancestor_of(Path.of("/a"))
        assert not Path.of("/a").is_ancestor_of(Path.of("/a"))
        assert not Path.of("/a").is_ancestor_of(Path.of("/ab"))

    def test_is_child_of(self):
        assert Path.of("/a/b").is_child_of(Path.of("/a"))
        assert not Path.of("/a/b/c").is_child_of(Path.of("/a"))
        assert Path.of("/a").is_child_of(Path.root())

    def test_ordering_is_total(self):
        paths = [Path.of("/b"), Path.of("/a/c"), Path.of("/a")]
        assert sorted(paths) == [
            Path.of("/a"),
            Path.of("/a/c"),
            Path.of("/b"),
        ]

    def test_hashable(self):
        assert len({Path.of("/a"), Path.of("/a"), Path.of("/b")}) == 2


class TestClosure:
    def test_closure_under_parents(self):
        got = closure_under_parents({Path.of("/a/b/c")})
        assert got == {
            Path.of("/a/b/c"),
            Path.of("/a/b"),
            Path.of("/a"),
        }

    def test_closure_excludes_root(self):
        assert Path.root() not in closure_under_parents({Path.of("/a")})
