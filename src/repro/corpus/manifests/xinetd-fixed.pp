# xinetd — fixed variant: the main configuration requires the package,
# so the packaged default is always laid down first and then
# deterministically replaced.

class xinetd {
  $instances = 50

  package { 'xinetd':
    ensure => installed,
  }

  # FIX: overwrite the packaged default only after it exists.
  file { '/etc/xinetd.conf':
    ensure  => file,
    content => "defaults\n{\n    instances   = ${instances}\n    log_type    = SYSLOG daemon info\n}\nincludedir /etc/xinetd.d\n",
    require => Package['xinetd'],
  }

  file { '/etc/xinetd.d/tftp':
    ensure  => file,
    content => "service tftp\n{\n    socket_type = dgram\n    protocol    = udp\n    server      = /usr/sbin/in.tftpd\n    disable     = no\n}\n",
    require => Package['xinetd'],
  }

  service { 'xinetd':
    ensure    => running,
    enable    => true,
    subscribe => [File['/etc/xinetd.conf'], File['/etc/xinetd.d/tftp']],
  }
}

include xinetd
