"""CNF preprocessing (SatELite-style) with model reconstruction.

The Tseitin encodings the analyses produce are highly redundant: the
asserted root literal cascades through unit propagation, most auxiliary
variables are functionally defined and can be resolved away, and the
pairwise exactly-one blocks generate heavily subsumed clauses.  This
module simplifies an instance before it reaches the CDCL solver:

* **unit propagation** to fixpoint;
* **pure-literal elimination** (a variable occurring in one polarity
  only is fixed to that polarity);
* **subsumption** (a clause that is a superset of another is dropped)
  and **self-subsuming resolution** (when resolving C∨l with D∨¬l
  yields a clause subsuming D∨¬l, the literal ¬l is stripped from it);
* **bounded variable elimination** (Davis–Putnam resolution on a
  variable whose resolvent set is no larger than the clauses it
  replaces).

All transformations are satisfiability-preserving but not
model-preserving, so :class:`Preprocessed` records a reconstruction
stack: :meth:`Preprocessed.reconstruct` extends any model of the
simplified instance to a model of the *original* clauses.  Variables
whose value must survive untouched (named inputs, assumption
selectors) are declared ``frozen``: they are never structurally
eliminated, which also makes them safe to mention in clauses or
assumptions added after preprocessing.  A non-frozen eliminated
variable can still be referenced later by first calling
:meth:`Preprocessed.restore`, which soundly re-introduces its saved
clauses (the resolvents they imply are already in the database and
stay).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.errors import SolverError

#: Skip variable elimination when both occurrence lists are longer than
#: this — the resolvent check alone would be quadratic noise.
ELIM_OCCURRENCE_CAP = 10

#: Upper bound on simplification rounds; each round strictly shrinks
#: the instance, so this is a safety net, not a tuning knob.
MAX_ROUNDS = 30


@dataclass
class PreprocessStats:
    """What the pass did, for instrumentation and benchmarks."""

    clauses_before: int = 0
    clauses_after: int = 0
    literals_before: int = 0
    literals_after: int = 0
    units_fixed: int = 0
    pure_literals: int = 0
    subsumed: int = 0
    strengthened: int = 0
    eliminated_vars: int = 0
    rounds: int = 0


@dataclass
class Preprocessed:
    """The simplified instance plus everything needed to map a model
    of it back onto the original clauses."""

    clauses: List[List[int]]
    num_vars: int
    unsat: bool = False
    stats: PreprocessStats = field(default_factory=PreprocessStats)
    #: Forced assignments (units) discovered during preprocessing.
    assigned: Dict[int, bool] = field(default_factory=dict)
    #: Reconstruction stack, in application order.  Entries are
    #: ("assign", lit) for forced units and ("elim", var, saved_clauses)
    #: for pure literals and variable elimination.
    _stack: List[tuple] = field(default_factory=list)
    #: Variables currently eliminated ("elim" entries still alive).
    eliminated: Set[int] = field(default_factory=set)

    def reconstruct(self, model: Dict[int, bool]) -> Dict[int, bool]:
        """Extend a model of :attr:`clauses` to a model of the original
        instance.  Variables absent from ``model`` are treated as False
        (the solver's don't-care convention)."""
        out = dict(model)
        for entry in reversed(self._stack):
            if entry[0] == "assign":
                lit = entry[1]
                out[abs(lit)] = lit > 0
                continue
            _, var, saved = entry
            if var not in self.eliminated:
                continue  # restored: the solver chose its value
            need_true = False
            need_false = False
            for clause in saved:
                satisfied = False
                polarity = 0
                for lit in clause:
                    v = abs(lit)
                    if v == var:
                        polarity = 1 if lit > 0 else -1
                        continue
                    if out.get(v, False) == (lit > 0):
                        satisfied = True
                        break
                if satisfied:
                    continue
                if polarity > 0:
                    need_true = True
                elif polarity < 0:
                    need_false = True
            # Davis–Putnam guarantees one value satisfies every saved
            # clause; prefer the forced polarity, default False.
            out[var] = need_true
            if need_true and need_false:
                raise SolverError(
                    f"model reconstruction conflict on eliminated var {var}"
                )
        return out

    def restore(self, var: int) -> List[List[int]]:
        """Soundly re-introduce an eliminated variable: returns its
        saved clauses (simplified against the assignments known at
        preprocessing time) for the caller to add back to the solver,
        and drops the variable's reconstruction entry so the solver's
        choice for it wins.  Restoration *cascades*: a saved clause can
        mention a variable eliminated later in the pass, whose value
        must then also come from the solver, so that variable is
        restored too.  Returns [] when the variable was never
        eliminated."""
        if var not in self.eliminated:
            return []
        saved_by_var: Dict[int, List[List[int]]] = {}
        for entry in self._stack:
            if entry[0] == "elim":
                saved_by_var[entry[1]] = entry[2]
        restored: List[List[int]] = []
        worklist = [var]
        while worklist:
            v = worklist.pop()
            if v not in self.eliminated:
                continue
            self.eliminated.discard(v)
            for clause in saved_by_var.get(v, ()):
                simplified = self._apply_assignments(clause)
                if simplified is None:
                    continue
                restored.append(simplified)
                for lit in simplified:
                    if abs(lit) in self.eliminated:
                        worklist.append(abs(lit))
        return restored

    def simplify_clause(self, clause: Sequence[int]) -> Optional[List[int]]:
        """Simplify a *new* clause against the forced assignments found
        during preprocessing (None = already satisfied).  Any clause
        added to the solver after preprocessing must pass through here,
        because the solver never saw the dropped unit clauses."""
        return self._apply_assignments(clause)

    def _apply_assignments(self, clause: Sequence[int]) -> Optional[List[int]]:
        out: List[int] = []
        for lit in clause:
            value = self.assigned.get(abs(lit))
            if value is None:
                out.append(lit)
            elif value == (lit > 0):
                return None  # satisfied
        return out


class _Preprocessor:
    def __init__(
        self,
        clauses: Sequence[Sequence[int]],
        num_vars: int,
        frozen: Iterable[int],
    ):
        self.num_vars = num_vars
        self.frozen = set(frozen)
        self.result = Preprocessed(clauses=[], num_vars=num_vars)
        self.stats = self.result.stats
        self.unsat = False
        # Clause storage with tombstones + occurrence lists.  ``dirty``
        # holds indices of clauses added or strengthened since they
        # were last used as subsumption candidates, so each sweep only
        # revisits what changed (SatELite's touched-clause queue).
        self.clauses: List[Optional[List[int]]] = []
        self.signatures: List[int] = []
        self.occ: Dict[int, Set[int]] = {}
        self.unit_queue: List[int] = []
        self.dirty: Set[int] = set()
        for clause in clauses:
            self._add(clause)

    # -- storage ------------------------------------------------------------

    def _add(self, lits: Sequence[int]) -> None:
        seen: Set[int] = set()
        clause: List[int] = []
        for lit in lits:
            if lit == 0:
                raise SolverError("literal 0 is not allowed")
            if -lit in seen:
                return  # tautology
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)
            self.num_vars = max(self.num_vars, abs(lit))
        if not clause:
            self.unsat = True
            return
        if len(clause) == 1:
            self.unit_queue.append(clause[0])
            return
        idx = len(self.clauses)
        self.clauses.append(clause)
        self.signatures.append(self._signature(clause))
        self.dirty.add(idx)
        for lit in clause:
            self.occ.setdefault(lit, set()).add(idx)

    def _remove(self, idx: int) -> None:
        clause = self.clauses[idx]
        if clause is None:
            return
        for lit in clause:
            self.occ.get(lit, set()).discard(idx)
        self.clauses[idx] = None
        self.dirty.discard(idx)

    def _strengthen(self, idx: int, lit: int) -> None:
        """Remove ``lit`` from clause ``idx`` (it is false or resolved
        away)."""
        clause = self.clauses[idx]
        assert clause is not None
        self.occ.get(lit, set()).discard(idx)
        clause.remove(lit)
        if len(clause) == 1:
            self.unit_queue.append(clause[0])
            self._remove(idx)
        elif not clause:
            self.unsat = True
        else:
            self.signatures[idx] = self._signature(clause)
            self.dirty.add(idx)

    # -- passes -------------------------------------------------------------

    def propagate_units(self) -> bool:
        changed = False
        while self.unit_queue and not self.unsat:
            lit = self.unit_queue.pop()
            var = abs(lit)
            known = self.result.assigned.get(var)
            if known is not None:
                if known != (lit > 0):
                    self.unsat = True
                continue
            if var in self.result.eliminated:
                raise SolverError(
                    f"unit on eliminated variable {var}: elimination "
                    "must drain pending units first"
                )
            changed = True
            self.result.assigned[var] = lit > 0
            self.result._stack.append(("assign", lit))
            self.stats.units_fixed += 1
            for idx in list(self.occ.get(lit, ())):
                self._remove(idx)
            for idx in list(self.occ.get(-lit, ())):
                self._strengthen(idx, -lit)
        return changed

    def pure_literals(self) -> bool:
        changed = False
        for var in range(1, self.num_vars + 1):
            if self.unsat:
                break
            if var in self.frozen or var in self.result.assigned:
                continue
            if var in self.result.eliminated:
                continue
            pos = self.occ.get(var, set())
            neg = self.occ.get(-var, set())
            if pos and neg:
                continue
            if not pos and not neg:
                continue
            lit = var if pos else -var
            saved = [list(self.clauses[i]) for i in (pos or neg)]
            self.result._stack.append(("elim", var, saved))
            self.result.eliminated.add(var)
            self.stats.pure_literals += 1
            for idx in list(pos or neg):
                self._remove(idx)
            changed = True
        return changed

    def _signature(self, clause: List[int]) -> int:
        sig = 0
        for lit in clause:
            sig |= 1 << (abs(lit) & 63)
        return sig

    def subsumption(self) -> bool:
        """Backward subsumption + self-subsuming resolution over the
        clauses touched since the last sweep."""
        changed = False
        while self.dirty and not self.unsat:
            idx = self.dirty.pop()
            clause = self.clauses[idx]
            if clause is None:
                continue
            sig = self.signatures[idx]
            # Candidates live in the occurrence list of the rarest
            # literal of the clause (every superset must contain it).
            best_lit = min(
                clause, key=lambda l: len(self.occ.get(l, ()))
            )
            lits = set(clause)
            for other_idx in list(self.occ.get(best_lit, ())):
                if other_idx == idx:
                    continue
                other = self.clauses[other_idx]
                if other is None or len(other) < len(clause):
                    continue
                if sig & ~self.signatures[other_idx]:
                    continue
                if lits <= set(other):
                    self._remove(other_idx)
                    self.stats.subsumed += 1
                    changed = True
            # Self-subsuming resolution: C = A∨l strengthens D = B∨¬l
            # when A ⊆ B.
            for lit in clause:
                rest_sig = self._signature([q for q in lits if q != lit])
                for other_idx in list(self.occ.get(-lit, ())):
                    other = self.clauses[other_idx]
                    if other is None or len(other) < len(clause):
                        continue
                    if rest_sig & ~self.signatures[other_idx]:
                        continue
                    other_lits = set(other)
                    if lits - {lit} <= other_lits - {-lit}:
                        self._strengthen(other_idx, -lit)
                        self.stats.strengthened += 1
                        changed = True
                        if self.unsat:
                            return changed
                if self.clauses[idx] is None:
                    break  # the clause itself became a unit meanwhile
        return changed

    def eliminate_variables(self) -> bool:
        changed = False
        for var in range(1, self.num_vars + 1):
            if self.unsat:
                break
            if var in self.frozen or var in self.result.assigned:
                continue
            if var in self.result.eliminated:
                continue
            pos = self.occ.get(var, set())
            neg = self.occ.get(-var, set())
            if not pos or not neg:
                continue  # pure or absent: handled elsewhere
            if len(pos) > ELIM_OCCURRENCE_CAP and len(neg) > ELIM_OCCURRENCE_CAP:
                continue
            resolvents: List[List[int]] = []
            budget = len(pos) + len(neg)
            feasible = True
            for pi in pos:
                pc = self.clauses[pi]
                assert pc is not None
                for ni in neg:
                    nc = self.clauses[ni]
                    assert nc is not None
                    resolvent = self._resolve(pc, nc, var)
                    if resolvent is None:
                        continue  # tautology
                    resolvents.append(resolvent)
                    if len(resolvents) > budget:
                        feasible = False
                        break
                if not feasible:
                    break
            if not feasible:
                continue
            saved = [list(self.clauses[i]) for i in pos | neg]
            self.result._stack.append(("elim", var, saved))
            self.result.eliminated.add(var)
            self.stats.eliminated_vars += 1
            for idx in list(pos | neg):
                self._remove(idx)
            for resolvent in resolvents:
                self._add(resolvent)
            changed = True
            if self.unit_queue:
                # A unit resolvent must be applied before any further
                # elimination: a later elimination of its variable
                # would record an "elim" stack entry under an "assign"
                # one, and reconstruction would replay them in the
                # wrong order (the Davis–Putnam choice overwriting the
                # forced value).
                self.propagate_units()
                if self.unsat:
                    break
        return changed

    @staticmethod
    def _resolve(
        pc: List[int], nc: List[int], var: int
    ) -> Optional[List[int]]:
        out: Dict[int, int] = {}
        for lit in pc:
            if abs(lit) != var:
                out[lit] = lit
        for lit in nc:
            if abs(lit) == var:
                continue
            if -lit in out:
                return None  # tautology
            out[lit] = lit
        return list(out)

    # -- driver -------------------------------------------------------------

    def run(self) -> Preprocessed:
        self.stats.clauses_before = sum(
            1 for c in self.clauses if c is not None
        ) + len(self.unit_queue)
        self.stats.literals_before = sum(
            len(c) for c in self.clauses if c is not None
        ) + len(self.unit_queue)
        rounds = 0
        changed = True
        while changed and not self.unsat and rounds < MAX_ROUNDS:
            rounds += 1
            changed = False
            changed |= self.propagate_units()
            if self.unsat:
                break
            changed |= self.subsumption()
            changed |= self.propagate_units()
            if self.unsat:
                break
            changed |= self.pure_literals()
            changed |= self.eliminate_variables()
            changed |= self.propagate_units()
        self.stats.rounds = rounds
        self.result.unsat = self.unsat
        self.result.num_vars = self.num_vars
        if not self.unsat:
            self.result.clauses = [
                list(c) for c in self.clauses if c is not None
            ]
        self.stats.clauses_after = len(self.result.clauses)
        self.stats.literals_after = sum(
            len(c) for c in self.result.clauses
        )
        return self.result


def preprocess(
    clauses: Sequence[Sequence[int]],
    num_vars: int = 0,
    frozen: Iterable[int] = (),
) -> Preprocessed:
    """Simplify a CNF instance; see the module docstring.

    ``frozen`` variables keep their clauses (no pure-literal or
    variable elimination touches them), so they may safely appear in
    assumptions and in clauses added after preprocessing.
    """
    return _Preprocessor(clauses, num_vars, frozen).run()
