#!/usr/bin/env python3
"""Batch verification: audit the full benchmark corpus like a CI lint.

Runs the complete Rehearsal pipeline (determinism, then idempotence
when sound) over the 13 benchmark configurations of the paper's §6 and
prints a verdict table plus the analysis statistics the paper's
Fig. 11 instruments (path counts, exploration branches, solver sizes).

Run:  python examples/corpus_audit.py
"""

from repro import Rehearsal
from repro.corpus import BENCHMARK_NAMES, CASES, load_source


def main() -> None:
    tool = Rehearsal()
    header = (
        f"{'benchmark':<18} {'resources':>9} {'paths':>6} {'branches':>8} "
        f"{'det':>5} {'idem':>5} {'time':>8}  notes"
    )
    print(header)
    print("-" * len(header))
    failures = 0
    for name in BENCHMARK_NAMES:
        case = CASES[name]
        report = tool.verify(load_source(name), name=name)
        det = report.deterministic
        stats = (
            report.determinism.stats
            if report.determinism is not None
            else None
        )
        idem = report.idempotent
        notes = ""
        if det is False:
            failures += 1
            notes = case.bug or "non-deterministic"
        print(
            f"{name:<18} {report.resource_count:>9} "
            f"{(stats.modeled_paths if stats else 0):>6} "
            f"{(stats.branches_explored if stats else 0):>8} "
            f"{_fmt(det):>5} {_fmt(idem):>5} "
            f"{report.total_seconds:>7.2f}s  {notes}"
        )
    print("-" * len(header))
    print(
        f"{failures} of {len(BENCHMARK_NAMES)} configurations have "
        "determinism bugs (paper §6: six)."
    )

    print()
    print("Verifying the published fixes:")
    for name in BENCHMARK_NAMES:
        fixed = CASES[name].fixed_by
        if fixed is None:
            continue
        report = tool.verify(load_source(fixed), name=fixed)
        status = "ok" if report.ok else "STILL BROKEN"
        print(
            f"  {fixed:<18} deterministic={_fmt(report.deterministic)} "
            f"idempotent={_fmt(report.idempotent)} -> {status}"
        )


def _fmt(value) -> str:
    if value is None:
        return "-"
    return "yes" if value else "NO"


if __name__ == "__main__":
    main()
