"""Invariant checking over deterministic manifests (paper §5).

Treating the (deterministic) manifest as a single expression ``e``, an
invariant asks: on every input where ``e`` succeeds, does the final
state satisfy a property?  The paper's example: a path ends up as a
file with specific content (a resource declared it and nothing
clobbered it).  The check is the unsatisfiability of
``∃σ̂. ok(e)σ̂ ∧ ¬P(f(e)σ̂)``.

Invariants also recover the Fig. 3c diagnosis under execution-time
package checks: asserting that perl's installed marker is absent at
the end exposes that ``remove perl -> install go`` silently reinstalls
perl — the manifest is inconsistent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.fs import FileSystem
from repro.fs import syntax as fx
from repro.fs.paths import Path
from repro.logic.terms import Term, TermBank
from repro.smt.encoder import apply_expr
from repro.smt.model import decode_filesystem
from repro.smt.query import Query
from repro.smt.state import SymbolicState, initial_constraints, initial_state
from repro.smt.values import PathDomains, V_DIR, V_DNE, VFile


@dataclass
class InvariantResult:
    holds: bool
    witness_fs: Optional[FileSystem] = None
    total_seconds: float = 0.0

    def __bool__(self) -> bool:
        return self.holds


FinalStateProperty = Callable[[TermBank, SymbolicState], Term]
"""A property of the final symbolic state, as a term builder."""


def check_invariant(
    e: fx.Expr,
    prop: FinalStateProperty,
    well_formed_initial: bool = True,
    extra_paths: tuple[Path, ...] = (),
) -> InvariantResult:
    """Does every successful run of ``e`` satisfy ``prop``?

    ``extra_paths`` extends the modeled domain so properties may speak
    about paths the program never mentions.
    """
    start = time.perf_counter()
    bank = TermBank()
    domains = PathDomains.for_exprs([e, _mention(extra_paths)])
    init = initial_state(bank, domains)
    final = apply_expr(bank, init, e)
    goal = bank.and_(
        initial_constraints(bank, domains, well_formed=well_formed_initial),
        final.ok,
        bank.not_(prop(bank, final)),
    )
    query = Query(bank)
    query.assert_term(goal)
    result = query.check()
    elapsed = time.perf_counter() - start
    if not result.sat:
        return InvariantResult(True, total_seconds=elapsed)
    witness = decode_filesystem(domains, result.named_model)
    return InvariantResult(False, witness_fs=witness, total_seconds=elapsed)


def _mention(paths: tuple[Path, ...]) -> fx.Expr:
    """A no-op expression that forces paths into the modeled domain."""
    out: fx.Expr = fx.ID
    for p in paths:
        # Raw If node: the smart constructor would fold identical
        # branches away and lose the domain mention.
        out = fx.Seq(out, fx.If(fx.none_(p), fx.ID, fx.ID))
    return out


# -- ready-made properties ----------------------------------------------------


def ensures_file(path: Path, content: str) -> FinalStateProperty:
    """The final state has ``path`` as a file with exactly ``content``
    (the paper's §5 example)."""

    def prop(bank: TermBank, state: SymbolicState) -> Term:
        return state.value(path).has_content(bank, content)

    return prop


def ensures_directory(path: Path) -> FinalStateProperty:
    def prop(bank: TermBank, state: SymbolicState) -> Term:
        return state.value(path).is_dir(bank)

    return prop


def ensures_absent(path: Path) -> FinalStateProperty:
    def prop(bank: TermBank, state: SymbolicState) -> Term:
        return state.value(path).is_dne(bank)

    return prop


def ensures_present(path: Path) -> FinalStateProperty:
    def prop(bank: TermBank, state: SymbolicState) -> Term:
        return bank.not_(state.value(path).is_dne(bank))

    return prop
