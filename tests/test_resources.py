"""Tests for the resource models (C : R → FS, §3.3)."""

import pytest

from repro.errors import (
    PackageNotFoundError,
    ResourceModelError,
    UnsupportedResourceError,
)
from repro.fs import ERROR, FileSystem, Path, eval_expr
from repro.resources import (
    ModelContext,
    PackageDatabase,
    Resource,
    ResourceCompiler,
    ResourceRef,
    compile_resource,
    synthetic_package,
)
from repro.resources.package import marker_path
from repro.resources.ssh_authorized_key import keyfile_path, logical_key_path
from repro.resources.user import account_path, home_path


@pytest.fixture()
def compiler():
    return ResourceCompiler()


def apply(compiler, resource, fs=None):
    return eval_expr(compiler.compile(resource), fs or FileSystem.empty())


def fs_with(entries):
    return FileSystem.from_dict(entries)


class TestResourceRef:
    def test_type_normalized(self):
        assert ResourceRef("File", "/a") == ResourceRef("file", "/a")

    def test_str(self):
        assert str(ResourceRef("file", "/a")) == "File['/a']"

    def test_resource_ref(self):
        r = Resource("Package", "vim")
        assert r.ref == ResourceRef("package", "vim")


class TestFileResource:
    def test_create_file_with_content(self, compiler):
        r = Resource("file", "/etc/motd", {"content": "hello"})
        out = apply(compiler, r, fs_with({"/etc": None}))
        assert out.file_content(Path.of("/etc/motd")) == "hello"

    def test_title_is_default_path(self, compiler):
        r = Resource("file", "/f", {"content": "x"})
        out = apply(compiler, r)
        assert out.is_file(Path.of("/f"))

    def test_path_attribute_overrides_title(self, compiler):
        r = Resource("file", "motd", {"path": "/g", "content": "x"})
        out = apply(compiler, r)
        assert out.is_file(Path.of("/g"))

    def test_missing_parent_errors(self, compiler):
        """The Fig. 3a failure mode: config file before its package."""
        r = Resource("file", "/etc/apache2/foo.conf", {"content": "x"})
        assert apply(compiler, r) is ERROR

    def test_overwrites_existing_file(self, compiler):
        r = Resource("file", "/f", {"content": "new"})
        out = apply(compiler, r, fs_with({"/f": "old"}))
        assert out.file_content(Path.of("/f")) == "new"

    def test_idempotent_when_content_matches(self, compiler):
        r = Resource("file", "/f", {"content": "x"})
        once = apply(compiler, r)
        twice = eval_expr(compiler.compile(r), once)
        assert once == twice

    def test_directory(self, compiler):
        r = Resource("file", "/srv", {"ensure": "directory"})
        out = apply(compiler, r)
        assert out.is_dir(Path.of("/srv"))

    def test_directory_existing_is_noop(self, compiler):
        r = Resource("file", "/srv", {"ensure": "directory"})
        state = fs_with({"/srv": None})
        assert apply(compiler, r, state) == state

    def test_directory_over_file_requires_force(self, compiler):
        r = Resource("file", "/srv", {"ensure": "directory"})
        assert apply(compiler, r, fs_with({"/srv": "f"})) is ERROR
        forced = Resource(
            "file", "/srv", {"ensure": "directory", "force": True}
        )
        out = apply(compiler, forced, fs_with({"/srv": "f"}))
        assert out.is_dir(Path.of("/srv"))

    def test_absent_removes_file(self, compiler):
        r = Resource("file", "/f", {"ensure": "absent"})
        out = apply(compiler, r, fs_with({"/f": "x"}))
        assert not out.exists(Path.of("/f"))

    def test_absent_missing_is_noop(self, compiler):
        r = Resource("file", "/f", {"ensure": "absent"})
        assert apply(compiler, r) == FileSystem.empty()

    def test_absent_nonempty_dir_errors(self, compiler):
        r = Resource("file", "/d", {"ensure": "absent"})
        assert apply(compiler, r, fs_with({"/d": None, "/d/f": "x"})) is ERROR

    def test_source_copies(self, compiler):
        r = Resource("file", "/dst", {"source": "/src"})
        out = apply(compiler, r, fs_with({"/src": "payload"}))
        assert out.file_content(Path.of("/dst")) == "payload"

    def test_content_and_source_conflict(self, compiler):
        r = Resource("file", "/f", {"content": "x", "source": "/s"})
        with pytest.raises(ResourceModelError):
            compiler.compile(r)

    def test_link_rejected(self, compiler):
        r = Resource("file", "/f", {"ensure": "link"})
        with pytest.raises(ResourceModelError):
            compiler.compile(r)

    def test_empty_content_default(self, compiler):
        r = Resource("file", "/f", {})
        out = apply(compiler, r)
        assert out.file_content(Path.of("/f")) == ""

    def test_dir_cannot_have_content(self, compiler):
        r = Resource("file", "/d", {"ensure": "directory", "content": "x"})
        with pytest.raises(ResourceModelError):
            compiler.compile(r)


class TestPackageResource:
    def test_install_creates_files_and_marker(self, compiler):
        r = Resource("package", "vim", {"ensure": "present"})
        out = apply(compiler, r)
        assert out.is_file(Path.of("/usr/bin/vim"))
        assert out.is_file(Path.of("/usr/share/vim/vimrc"))
        assert out.is_file(marker_path("vim"))

    def test_install_is_idempotent(self, compiler):
        r = Resource("package", "vim", {})
        once = apply(compiler, r)
        twice = eval_expr(compiler.compile(r), once)
        assert once == twice

    def test_install_unique_contents(self, compiler):
        r = Resource("package", "vim", {})
        out = apply(compiler, r)
        c1 = out.file_content(Path.of("/usr/bin/vim"))
        c2 = out.file_content(Path.of("/usr/share/vim/vimrc"))
        assert c1 != c2

    def test_remove_deletes_files(self, compiler):
        installed = apply(compiler, Resource("package", "vim", {}))
        r = Resource("package", "vim", {"ensure": "absent"})
        out = eval_expr(compiler.compile(r), installed)
        assert not out.exists(Path.of("/usr/bin/vim"))
        assert not out.exists(marker_path("vim"))

    def test_remove_missing_is_noop(self, compiler):
        r = Resource("package", "vim", {"ensure": "absent"})
        assert apply(compiler, r) == FileSystem.empty()

    def test_install_pulls_dependencies(self, compiler):
        """golang-go depends on perl (Fig. 3c, Ubuntu 14.04)."""
        r = Resource("package", "golang-go", {})
        out = apply(compiler, r)
        assert out.is_file(marker_path("golang-go"))
        assert out.is_file(marker_path("perl"))

    def test_remove_cascades_to_dependents(self, compiler):
        go = apply(compiler, Resource("package", "golang-go", {}))
        r = Resource("package", "perl", {"ensure": "absent"})
        out = eval_expr(compiler.compile(r), go)
        assert not out.exists(marker_path("perl"))
        assert not out.exists(marker_path("golang-go"))

    def test_fig3c_two_distinct_success_states(self, compiler):
        """remove-perl and install-go in either order reach different
        final states — the silent failure of Fig. 3c."""
        remove_perl = compiler.compile(
            Resource("package", "perl", {"ensure": "absent"})
        )
        install_go = compiler.compile(Resource("package", "golang-go", {}))
        from repro.fs import seq

        initial = FileSystem.empty()
        order1 = eval_expr(seq(remove_perl, install_go), initial)
        order2 = eval_expr(seq(install_go, remove_perl), initial)
        assert order1 is not ERROR and order2 is not ERROR
        assert order1 != order2
        assert order1.is_file(marker_path("golang-go"))
        assert not order2.exists(marker_path("golang-go"))

    def test_synthetic_package(self, compiler):
        r = Resource("package", "no-such-package-xyz", {})
        out = apply(compiler, r)
        assert out.is_file(Path.of("/usr/bin/no-such-package-xyz"))

    def test_strict_database_rejects_unknown(self):
        ctx = ModelContext(package_db=PackageDatabase(synthesize=False))
        compiler = ResourceCompiler(ctx)
        with pytest.raises(PackageNotFoundError):
            compiler.compile(Resource("package", "no-such-package-xyz", {}))

    def test_bad_ensure(self, compiler):
        r = Resource("package", "vim", {"ensure": "sideways"})
        with pytest.raises(ResourceModelError):
            compiler.compile(r)


class TestUserResource:
    def test_present_creates_account(self, compiler):
        r = Resource("user", "carol", {"ensure": "present"})
        out = apply(compiler, r)
        assert out.is_file(account_path("carol"))
        assert not out.exists(home_path("carol"))

    def test_managehome_creates_home(self, compiler):
        r = Resource(
            "user", "carol", {"ensure": "present", "managehome": True}
        )
        out = apply(compiler, r)
        assert out.is_dir(home_path("carol"))

    def test_present_idempotent(self, compiler):
        r = Resource("user", "carol", {"managehome": True})
        once = apply(compiler, r)
        assert eval_expr(compiler.compile(r), once) == once

    def test_absent_removes_account(self, compiler):
        r = Resource("user", "carol", {"managehome": True})
        created = apply(compiler, r)
        gone = eval_expr(
            compiler.compile(
                Resource(
                    "user", "carol", {"ensure": "absent", "managehome": True}
                )
            ),
            created,
        )
        assert not gone.exists(account_path("carol"))
        assert not gone.exists(home_path("carol"))


class TestSshKeyResource:
    def test_requires_user_home(self, compiler):
        """Without the user's home directory the key-file write fails —
        the missing user→key dependency bug from §6."""
        r = Resource(
            "ssh_authorized_key", "carol@laptop", {"user": "carol", "key": "AAAA"}
        )
        assert apply(compiler, r) is ERROR

    def test_succeeds_after_user(self, compiler):
        user = Resource("user", "carol", {"managehome": True})
        state = apply(compiler, user)
        key = Resource(
            "ssh_authorized_key", "carol@laptop", {"user": "carol", "key": "AAAA"}
        )
        out = eval_expr(compiler.compile(key), state)
        assert out.is_file(logical_key_path("carol", "carol@laptop"))
        assert out.is_file(keyfile_path("carol"))

    def test_two_keys_same_user_commute(self, compiler):
        from repro.fs import seq

        user = Resource("user", "carol", {"managehome": True})
        base = apply(compiler, user)
        k1 = compiler.compile(
            Resource("ssh_authorized_key", "k1", {"user": "carol", "key": "A"})
        )
        k2 = compiler.compile(
            Resource("ssh_authorized_key", "k2", {"user": "carol", "key": "B"})
        )
        assert eval_expr(seq(k1, k2), base) == eval_expr(seq(k2, k1), base)

    def test_user_attribute_required(self, compiler):
        r = Resource("ssh_authorized_key", "k", {"key": "A"})
        with pytest.raises(ResourceModelError):
            compiler.compile(r)


class TestOtherResources:
    def test_group(self, compiler):
        out = apply(compiler, Resource("group", "admins", {}))
        assert out.is_file(Path.of("/etc/groups/admins"))

    def test_service_running(self, compiler):
        out = apply(
            compiler,
            Resource("service", "nginx", {"ensure": "running", "enable": True}),
        )
        assert out.is_file(Path.of("/var/run/services/nginx"))
        assert out.is_file(Path.of("/etc/rc.d/nginx"))

    def test_service_idempotent(self, compiler):
        r = Resource("service", "nginx", {"ensure": "running"})
        once = apply(compiler, r)
        assert eval_expr(compiler.compile(r), once) == once

    def test_cron(self, compiler):
        r = Resource(
            "cron",
            "logrotate",
            {"command": "/usr/sbin/logrotate", "hour": "2"},
        )
        out = apply(compiler, r)
        assert out.is_file(Path.of("/var/spool/cron/root/logrotate"))

    def test_cron_requires_command(self, compiler):
        with pytest.raises(ResourceModelError):
            compiler.compile(Resource("cron", "x", {}))

    def test_host(self, compiler):
        r = Resource("host", "db.internal", {"ip": "10.0.0.5"})
        out = apply(compiler, r)
        assert out.file_content(Path.of("/etc/hosts.d/db.internal")) == (
            "host:db.internal:10.0.0.5"
        )

    def test_notify_is_noop(self, compiler):
        out = apply(compiler, Resource("notify", "hello", {}))
        assert out == FileSystem.empty()

    def test_exec_rejected(self, compiler):
        with pytest.raises(UnsupportedResourceError):
            compiler.compile(Resource("exec", "apt-get update", {}))

    def test_unknown_type_rejected(self, compiler):
        with pytest.raises(ResourceModelError):
            compiler.compile(Resource("mount", "/mnt", {}))

    def test_register_custom_model(self, compiler):
        from repro.fs import ID

        compiler.register("mount", lambda r, c: ID)
        assert apply(compiler, Resource("mount", "/mnt", {})) == (
            FileSystem.empty()
        )


class TestPackageDatabase:
    def test_curated_lookup(self):
        db = PackageDatabase()
        info = db.lookup("apache2")
        assert "/etc/apache2/sites-available/000-default.conf" in info.files

    def test_synthetic_deterministic(self):
        assert synthetic_package("foo") == synthetic_package("foo")
        assert synthetic_package("foo") != synthetic_package("bar")

    def test_install_closure_order(self):
        db = PackageDatabase()
        names = [p.name for p in db.install_closure("golang-go")]
        assert names.index("perl") < names.index("golang-go")

    def test_reverse_dependents(self):
        db = PackageDatabase()
        names = [p.name for p in db.reverse_dependents("perl")]
        assert "golang-go" in names
        assert "amavisd-new" in names

    def test_register_extra(self):
        db = PackageDatabase(synthesize=False)
        from repro.resources import PackageInfo

        db.register(PackageInfo("custom", ("/usr/bin/custom",)))
        assert db.lookup("custom").files == ("/usr/bin/custom",)
