"""Unit tests for the FS reference semantics (paper Fig. 5)."""

from repro.fs import (
    DIR,
    ERROR,
    FileSystem,
    Path,
    cp,
    creat,
    dir_,
    emptydir_,
    eval_expr,
    eval_pred,
    file_,
    file_with,
    ite,
    mkdir,
    none_,
    pand,
    pnot,
    por,
    rm,
    seq,
    ERR,
    ID,
)


def fs(entries=None):
    return FileSystem.from_dict(entries or {})


class TestPredicates:
    def test_none_on_empty(self):
        assert eval_pred(none_(Path.of("/a")), fs())

    def test_root_is_dir(self):
        assert eval_pred(dir_(Path.root()), fs())
        assert not eval_pred(none_(Path.root()), fs())

    def test_file(self):
        state = fs({"/a": None, "/a/f": "x"})
        assert eval_pred(file_(Path.of("/a/f")), state)
        assert not eval_pred(file_(Path.of("/a")), state)

    def test_dir(self):
        state = fs({"/a": None})
        assert eval_pred(dir_(Path.of("/a")), state)
        assert not eval_pred(dir_(Path.of("/missing")), state)

    def test_emptydir(self):
        state = fs({"/a": None, "/b": None, "/b/f": "x"})
        assert eval_pred(emptydir_(Path.of("/a")), state)
        assert not eval_pred(emptydir_(Path.of("/b")), state)

    def test_emptydir_on_file(self):
        state = fs({"/f": "x"})
        assert not eval_pred(emptydir_(Path.of("/f")), state)

    def test_file_with(self):
        state = fs({"/f": "hello"})
        assert eval_pred(file_with(Path.of("/f"), "hello"), state)
        assert not eval_pred(file_with(Path.of("/f"), "other"), state)

    def test_connectives(self):
        state = fs({"/a": None})
        p = Path.of("/a")
        assert eval_pred(pand(dir_(p), pnot(file_(p))), state)
        assert eval_pred(por(file_(p), dir_(p)), state)
        assert not eval_pred(pand(dir_(p), file_(p)), state)


class TestMkdir:
    def test_creates_directory(self):
        out = eval_expr(mkdir("/a"), fs())
        assert out.is_dir(Path.of("/a"))

    def test_requires_parent(self):
        assert eval_expr(mkdir("/a/b"), fs()) is ERROR

    def test_requires_absent(self):
        assert eval_expr(mkdir("/a"), fs({"/a": None})) is ERROR
        assert eval_expr(mkdir("/a"), fs({"/a": "f"})) is ERROR

    def test_nested(self):
        out = eval_expr(seq(mkdir("/a"), mkdir("/a/b")), fs())
        assert out.is_dir(Path.of("/a/b"))


class TestCreat:
    def test_creates_file(self):
        out = eval_expr(creat("/f", "data"), fs())
        assert out.file_content(Path.of("/f")) == "data"

    def test_requires_parent_dir(self):
        assert eval_expr(creat("/a/f", "x"), fs()) is ERROR
        assert eval_expr(creat("/a/f", "x"), fs({"/a": "file"})) is ERROR

    def test_no_overwrite(self):
        assert eval_expr(creat("/f", "x"), fs({"/f": "old"})) is ERROR


class TestRm:
    def test_removes_file(self):
        out = eval_expr(rm("/f"), fs({"/f": "x"}))
        assert not out.exists(Path.of("/f"))

    def test_removes_empty_dir(self):
        out = eval_expr(rm("/d"), fs({"/d": None}))
        assert not out.exists(Path.of("/d"))

    def test_rejects_nonempty_dir(self):
        assert eval_expr(rm("/d"), fs({"/d": None, "/d/f": "x"})) is ERROR

    def test_rejects_missing(self):
        assert eval_expr(rm("/nope"), fs()) is ERROR


class TestCp:
    def test_copies_content(self):
        out = eval_expr(cp("/src", "/dst"), fs({"/src": "payload"}))
        assert out.file_content(Path.of("/dst")) == "payload"

    def test_requires_source_file(self):
        assert eval_expr(cp("/src", "/dst"), fs()) is ERROR
        assert eval_expr(cp("/src", "/dst"), fs({"/src": None})) is ERROR

    def test_requires_fresh_destination(self):
        state = fs({"/src": "x", "/dst": "y"})
        assert eval_expr(cp("/src", "/dst"), state) is ERROR

    def test_requires_destination_parent(self):
        assert eval_expr(cp("/src", "/a/dst"), fs({"/src": "x"})) is ERROR


class TestCompound:
    def test_seq_propagates_error(self):
        assert eval_expr(seq(ERR, mkdir("/a")), fs()) is ERROR
        assert eval_expr(seq(mkdir("/a"), ERR), fs()) is ERROR

    def test_seq_order(self):
        out = eval_expr(seq(mkdir("/a"), creat("/a/f", "x")), fs())
        assert out.file_content(Path.of("/a/f")) == "x"

    def test_if_then(self):
        e = ite(none_(Path.of("/a")), mkdir("/a"), ID)
        out = eval_expr(e, fs())
        assert out.is_dir(Path.of("/a"))

    def test_if_else(self):
        e = ite(none_(Path.of("/a")), mkdir("/a"), ID)
        state = fs({"/a": None})
        assert eval_expr(e, state) == state

    def test_id(self):
        assert eval_expr(ID, fs()) == fs()

    def test_paper_copy_delete(self):
        """Fig. 3d: copy src to dst then delete src; second run errors."""
        manifest = seq(cp("/src", "/dst"), rm("/src"))
        first = eval_expr(manifest, fs({"/src": "x"}))
        assert first.file_content(Path.of("/dst")) == "x"
        assert not first.exists(Path.of("/src"))
        assert eval_expr(manifest, first) is ERROR


class TestEmptyDirSubtlety:
    def test_paper_inequivalence_example(self):
        """if emptydir?(/a) id else err  vs  if dir?(/a) id else err
        differ exactly on states with a child inside /a (paper §4.2)."""
        p = Path.of("/a")
        e1 = ite(emptydir_(p), ID, ERR)
        e2 = ite(dir_(p), ID, ERR)
        witness = fs({"/a": None, "/a/child": "x"})
        assert eval_expr(e1, witness) is ERROR
        assert eval_expr(e2, witness) == witness
        boring = fs({"/a": None})
        assert eval_expr(e1, boring) == eval_expr(e2, boring)
