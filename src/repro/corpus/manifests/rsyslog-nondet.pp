# rsyslog — system logging with remote forwarding (§6 benchmark
# "rsyslog").
#
# SEEDED BUG: the forwarding fragment is dropped into /etc/rsyslog.d/,
# which Package['rsyslog'] creates, without a dependency on the
# package — the classic missing-package-dependency non-determinism.

class rsyslog {
  $central = 'logs.example.com'
  $port    = 514

  package { 'rsyslog':
    ensure => installed,
  }

  # BUG: missing require => Package['rsyslog'] (see rsyslog-fixed.pp).
  file { '/etc/rsyslog.d/10-forward.conf':
    ensure  => file,
    content => "# forward everything to the central collector\n*.* @@${central}:${port}\n",
  }

  service { 'rsyslog':
    ensure    => running,
    enable    => true,
    subscribe => File['/etc/rsyslog.d/10-forward.conf'],
  }
}

include rsyslog
