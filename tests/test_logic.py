"""Tests for the formula bank and Tseitin CNF conversion."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic import CNF, TermBank, dag_size, propagate_units, substitute, tseitin
from repro.sat import brute_force_solve, solve_cnf


@pytest.fixture()
def bank():
    return TermBank()


class TestConstruction:
    def test_interning(self, bank):
        a, b = bank.var("a"), bank.var("b")
        assert bank.and_(a, b) is bank.and_(a, b)
        assert bank.var("a") is a

    def test_commutative_canonical_form(self, bank):
        a, b = bank.var("a"), bank.var("b")
        assert bank.and_(a, b) is bank.and_(b, a)
        assert bank.or_(a, b) is bank.or_(b, a)

    def test_constant_folding(self, bank):
        a = bank.var("a")
        assert bank.and_(a, bank.TRUE) is a
        assert bank.and_(a, bank.FALSE) is bank.FALSE
        assert bank.or_(a, bank.FALSE) is a
        assert bank.or_(a, bank.TRUE) is bank.TRUE

    def test_double_negation(self, bank):
        a = bank.var("a")
        assert bank.not_(bank.not_(a)) is a

    def test_flattening(self, bank):
        a, b, c = bank.var("a"), bank.var("b"), bank.var("c")
        assert bank.and_(a, bank.and_(b, c)) is bank.and_(a, b, c)

    def test_idempotence(self, bank):
        a = bank.var("a")
        assert bank.and_(a, a) is a
        assert bank.or_(a, a) is a

    def test_complement_collapse(self, bank):
        a, b = bank.var("a"), bank.var("b")
        assert bank.and_(a, bank.not_(a), b) is bank.FALSE
        assert bank.or_(a, bank.not_(a), b) is bank.TRUE

    def test_ite_folding(self, bank):
        a, b = bank.var("a"), bank.var("b")
        assert bank.ite(bank.TRUE, a, b) is a
        assert bank.ite(bank.FALSE, a, b) is b
        assert bank.ite(bank.var("c"), a, a) is a

    def test_iff_reflexive(self, bank):
        a = bank.var("a")
        assert bank.iff(a, a) is bank.TRUE


class TestThreadSafety:
    def test_concurrent_interning_never_mints_twins(self):
        """Cube sub-explorers build terms on one shared bank across a
        thread pool; racing threads must still get pointer-equal terms
        for structurally equal formulas and never duplicate a uid."""
        import threading

        bank = TermBank()
        names = [f"v{i}" for i in range(12)]
        barrier = threading.Barrier(4)
        built = [[] for _ in range(4)]

        def worker(slot):
            rng = random.Random(slot)
            barrier.wait()
            for _ in range(300):
                a = bank.var(rng.choice(names))
                b = bank.var(rng.choice(names))
                c = bank.var(rng.choice(names))
                built[slot].append(
                    bank.or_(bank.and_(a, b), bank.not_(c))
                )

        threads = [
            threading.Thread(target=worker, args=(slot,))
            for slot in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Re-interning serially must return the exact objects the
        # threads built (structural equality implies identity) ...
        for terms in built:
            for t in terms:
                if t.kind == "or":
                    assert bank.or_(*t.args) is t
        # ... and every interned node got a distinct uid.
        uids = [t.uid for t in bank._intern.values()]
        assert len(uids) == len(set(uids))


class TestEvaluate:
    def test_basic(self, bank):
        a, b = bank.var("a"), bank.var("b")
        t = bank.or_(bank.and_(a, bank.not_(b)), bank.and_(bank.not_(a), b))
        assert bank.evaluate(t, {"a": True, "b": False})
        assert not bank.evaluate(t, {"a": True, "b": True})

    def test_exactly_one(self, bank):
        vars_ = [bank.var(f"x{i}") for i in range(4)]
        t = bank.exactly_one(vars_)
        assert bank.evaluate(t, {"x2": True})
        assert not bank.evaluate(t, {})
        assert not bank.evaluate(t, {"x0": True, "x3": True})

    def test_variables(self, bank):
        t = bank.and_(bank.var("a"), bank.or_(bank.var("b"), bank.var("a")))
        assert bank.variables(t) == {"a", "b"}


class TestSubstitution:
    def test_substitute(self, bank):
        a, b = bank.var("a"), bank.var("b")
        t = bank.and_(a, b)
        assert substitute(bank, t, {"a": True}) is b
        assert substitute(bank, t, {"a": False}) is bank.FALSE

    def test_propagate_units(self, bank):
        a, b, c = bank.var("a"), bank.var("b"), bank.var("c")
        t = bank.and_(a, bank.or_(bank.not_(a), b), c)
        out = propagate_units(bank, t)
        assert bank.evaluate(out, {"a": True, "b": True, "c": True})
        assert not bank.evaluate(out, {"a": True, "b": False, "c": True})


def _random_term(bank, rng, depth, names):
    if depth == 0 or rng.random() < 0.3:
        choice = rng.random()
        if choice < 0.1:
            return bank.TRUE
        if choice < 0.2:
            return bank.FALSE
        return bank.var(rng.choice(names))
    kind = rng.choice(["and", "or", "not", "ite"])
    if kind == "not":
        return bank.not_(_random_term(bank, rng, depth - 1, names))
    if kind == "ite":
        return bank.ite(
            _random_term(bank, rng, depth - 1, names),
            _random_term(bank, rng, depth - 1, names),
            _random_term(bank, rng, depth - 1, names),
        )
    args = [
        _random_term(bank, rng, depth - 1, names)
        for _ in range(rng.randint(2, 3))
    ]
    return bank.and_(*args) if kind == "and" else bank.or_(*args)


class TestTseitin:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=80, deadline=None)
    def test_equisatisfiable_and_model_correct(self, seed):
        """SAT(tseitin(t)) iff t has a satisfying assignment, and any
        model decoded from the CNF satisfies t."""
        rng = random.Random(seed)
        bank = TermBank()
        names = ["a", "b", "c", "d"]
        t = _random_term(bank, rng, depth=4, names=names)
        cnf, root = tseitin(t, bank)
        cnf.add([root])
        result = solve_cnf(cnf.clauses, cnf.num_vars)
        # Oracle: enumerate assignments of the original variables.
        free = sorted(bank.variables(t))
        has_model = _term_satisfiable(bank, t, free)
        assert result.sat == has_model
        if result.sat:
            named = cnf.decode(result.assignment)
            assert bank.evaluate(t, named)

    def test_shared_inputs_across_terms(self):
        bank = TermBank()
        a = bank.var("a")
        cnf = CNF()
        _, lit1 = tseitin(a, bank, cnf)
        _, lit2 = tseitin(bank.not_(a), bank, cnf)
        cnf.add([lit1])
        cnf.add([lit2])
        assert not solve_cnf(cnf.clauses, cnf.num_vars).sat

    def test_constant_true(self):
        bank = TermBank()
        cnf, root = tseitin(bank.TRUE, bank)
        cnf.add([root])
        assert solve_cnf(cnf.clauses, cnf.num_vars).sat

    def test_constant_false(self):
        bank = TermBank()
        cnf, root = tseitin(bank.FALSE, bank)
        cnf.add([root])
        assert not solve_cnf(cnf.clauses, cnf.num_vars).sat


def _term_satisfiable(bank, t, names):
    from itertools import product

    for bits in product([False, True], repeat=len(names)):
        if bank.evaluate(t, dict(zip(names, bits))):
            return True
    return False


class TestDagSize:
    def test_sharing_keeps_dag_small(self):
        bank = TermBank()
        t = bank.var("x")
        for i in range(20):
            t = bank.and_(t, bank.or_(t, bank.var(f"y{i}")))
        # A tree representation would be exponential; the DAG is linear.
        assert dag_size(t) < 200
