# rsyslog — fixed variant: the forwarding fragment requires the
# package that provides /etc/rsyslog.d/.

class rsyslog {
  $central = 'logs.example.com'
  $port    = 514

  package { 'rsyslog':
    ensure => installed,
  }

  # FIX: the package provides the rsyslog.d directory.
  file { '/etc/rsyslog.d/10-forward.conf':
    ensure  => file,
    content => "# forward everything to the central collector\n*.* @@${central}:${port}\n",
    require => Package['rsyslog'],
  }

  service { 'rsyslog':
    ensure    => running,
    enable    => true,
    subscribe => File['/etc/rsyslog.d/10-forward.conf'],
  }
}

include rsyslog
