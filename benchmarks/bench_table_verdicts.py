"""§6 "Bugs found" — the end-to-end verification table.

Benchmarks the full pipeline (parse → catalog → graph → compile →
determinism → idempotence) per benchmark and asserts the paper's
verdicts: six non-deterministic configurations, seven deterministic
ones, and every fix verifying as deterministic and idempotent.
"""

import pytest

from repro.core.pipeline import Rehearsal
from repro.corpus import (
    BENCHMARK_NAMES,
    CASES,
    FIXED_VARIANTS,
    load_source,
)


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_verdict_full_pipeline(benchmark, name):
    source = load_source(name)
    tool = Rehearsal()

    report = benchmark.pedantic(
        tool.verify, args=(source,), kwargs={"name": name}, rounds=1,
        iterations=1,
    )
    case = CASES[name]
    assert report.error is None
    assert report.deterministic == case.deterministic
    if case.deterministic:
        assert report.idempotent
    benchmark.extra_info["deterministic"] = report.deterministic


@pytest.mark.parametrize("name", sorted(FIXED_VARIANTS))
def test_verdict_fixes(benchmark, name):
    source = load_source(name)
    tool = Rehearsal()

    report = benchmark.pedantic(
        tool.verify, args=(source,), kwargs={"name": name}, rounds=1,
        iterations=1,
    )
    assert report.ok, f"fix {name} must verify deterministic + idempotent"
