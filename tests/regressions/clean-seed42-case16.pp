# rehearsal-fuzz reproducer
# seed: 42
# case-id: 16
# generator-version: 1
# bug-class: clean
# found-by: sabotage-drill
# disagreement: missed_nondet
# expected-deterministic: false
# expected-idempotent: none

user {
  'carol':
    ensure => 'present',
}
ssh_authorized_key {
  'carol-key':
    key => 'AAAAcarol',
    user => 'carol',
}
