"""benchmarks/compare_baseline.py: figure-set drift must fail by name.

The bench-regression CI job diffs a fresh ``run_figures.py --smoke
--json`` report against the committed baseline; these tests pin the
comparison's behaviour when the figure sets drift apart (dropped,
renamed, added, malformed) instead of merely getting slower.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).parent.parent
SCRIPT = REPO_ROOT / "benchmarks" / "compare_baseline.py"


def report(figures: dict) -> dict:
    return {"schema": 1, "figures": figures}


def fig(seconds):
    return {"title": "t", "seconds": seconds, "rows": []}


def run_compare(tmp_path, baseline, current, *extra):
    base_path = tmp_path / "baseline.json"
    cur_path = tmp_path / "current.json"
    base_path.write_text(json.dumps(report(baseline)))
    cur_path.write_text(json.dumps(report(current)))
    proc = subprocess.run(
        [sys.executable, str(SCRIPT), str(base_path), str(cur_path),
         "--calibrate", "", *extra],
        capture_output=True,
        text=True,
    )
    return proc


class TestFigureSetDrift:
    def test_matching_sets_pass(self, tmp_path):
        figures = {"a": fig(1.0), "b": fig(2.0)}
        proc = run_compare(tmp_path, figures, figures)
        assert proc.returncode == 0, proc.stderr

    def test_baseline_figure_missing_from_current_fails_by_name(
        self, tmp_path
    ):
        proc = run_compare(
            tmp_path, {"a": fig(1.0), "gone": fig(1.0)}, {"a": fig(1.0)}
        )
        assert proc.returncode == 1
        assert "'gone'" in proc.stderr
        assert "missing from current" in proc.stderr

    def test_renamed_figure_fails_on_both_names(self, tmp_path):
        proc = run_compare(
            tmp_path,
            {"old-name": fig(1.0)},
            {"new-name": fig(1.0)},
        )
        assert proc.returncode == 1
        assert "'old-name'" in proc.stderr
        assert "'new-name'" in proc.stderr

    def test_allow_new_tolerates_added_figures_only(self, tmp_path):
        proc = run_compare(
            tmp_path,
            {"a": fig(1.0)},
            {"a": fig(1.0), "added": fig(1.0)},
            "--allow-new",
        )
        assert proc.returncode == 0, proc.stderr
        # ... but a *dropped* figure still fails even with --allow-new.
        proc = run_compare(
            tmp_path,
            {"a": fig(1.0), "gone": fig(1.0)},
            {"a": fig(1.0)},
            "--allow-new",
        )
        assert proc.returncode == 1


class TestMalformedEntries:
    def test_non_numeric_seconds_fails_by_name_not_crash(self, tmp_path):
        proc = run_compare(
            tmp_path,
            {"a": fig(1.0)},
            {"a": fig("fast")},
        )
        assert proc.returncode == 1, proc.stderr
        assert "'a'" in proc.stderr
        assert "not a number" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_missing_seconds_field_fails_by_name(self, tmp_path):
        proc = run_compare(
            tmp_path,
            {"a": {"title": "t", "rows": []}},
            {"a": fig(1.0)},
        )
        assert proc.returncode == 1
        assert "'a'" in proc.stderr

    def test_non_object_entry_fails_by_name(self, tmp_path):
        proc = run_compare(
            tmp_path, {"a": fig(1.0)}, {"a": [1, 2, 3]}
        )
        assert proc.returncode == 1
        assert "not an object" in proc.stderr


class TestRegressionJudgement:
    def test_slowdown_beyond_factor_and_abs_fails(self, tmp_path):
        proc = run_compare(
            tmp_path, {"a": fig(1.0)}, {"a": fig(3.0)}
        )
        assert proc.returncode == 1
        assert "exceeds" in proc.stderr

    def test_small_absolute_noise_passes(self, tmp_path):
        # 3x slower but only 0.2s absolute: under the --min-abs guard.
        proc = run_compare(
            tmp_path, {"a": fig(0.1)}, {"a": fig(0.3)}
        )
        assert proc.returncode == 0, proc.stderr

    def test_unreadable_input_exits_two(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        ok = tmp_path / "ok.json"
        ok.write_text(json.dumps(report({"a": fig(1.0)})))
        proc = subprocess.run(
            [sys.executable, str(SCRIPT), str(bad), str(ok)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 2

    def test_committed_baseline_matches_smoke_figure_set(self):
        # The committed baseline must gate exactly what --smoke emits,
        # or the two-sided set check would fail every CI run.
        baseline = json.loads(
            (REPO_ROOT / "benchmarks" / "baseline.json").read_text()
        )
        sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
        try:
            from run_figures import figure_keys
        finally:
            sys.path.pop(0)
        assert set(baseline["figures"]) == figure_keys(smoke=True)
