"""Replay one committed fuzz reproducer through the differential
pipeline.

``rehearsal fuzz --replay <reproducer.pp>`` (and the SPRT burn-in
driver, which calls :func:`replay_file` once per trial) re-runs a
single reproducer exactly the way ``tests/test_regressions.py``
replays the whole corpus: parse the machine-readable header, push the
manifest through :func:`repro.testing.differential.run_source`, and
check that

* the pipeline and the concrete oracle still **agree** (the
  disagreement the file was minted for must stay fixed), and
* the **pinned verdicts** from the header still hold
  (``expected-deterministic``, and ``expected-idempotent`` unless
  ``none``).

The oracle seed defaults to the header's ``seed`` but can be varied
per call — burn-in trials each use a different seed so every replay
samples a fresh slice of the oracle's initial-state space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from repro.testing.differential import CaseOutcome, run_source
from repro.testing.regressions import (
    RegressionFormatError,
    RegressionHeader,
    parse_header,
)


@dataclass
class ReplayResult:
    """One reproducer replay: the differential outcome plus the
    pinned-verdict checks."""

    path: str
    header: Optional[RegressionHeader] = None
    outcome: Optional[CaseOutcome] = None
    oracle_seed: Optional[int] = None
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "ok": self.ok,
            "oracle_seed": self.oracle_seed,
            "problems": list(self.problems),
            "outcome": (
                self.outcome.to_dict()
                if self.outcome is not None
                else None
            ),
        }


def replay_file(
    path,
    oracle_seed: Optional[int] = None,
    name: Optional[str] = None,
) -> ReplayResult:
    """Replay the reproducer at ``path``; never raises on a bad file —
    header/IO problems land in ``result.problems`` so burn-in can
    treat them as failing trials with a reason."""
    path = Path(path)
    display = name or path.name
    result = ReplayResult(path=str(path))
    try:
        text = path.read_text(encoding="utf8")
    except (OSError, UnicodeDecodeError) as exc:
        result.problems.append(f"cannot read {display}: {exc}")
        return result
    try:
        header = parse_header(text, display)
    except RegressionFormatError as exc:
        result.problems.append(str(exc))
        return result
    result.header = header
    seed = header.seed if oracle_seed is None else oracle_seed
    result.oracle_seed = seed
    outcome = run_source(text, name=display, oracle_seed=seed)
    result.outcome = outcome
    if not outcome.agreed:
        result.problems.append(
            f"disagreement is back: {','.join(outcome.kinds())}"
        )
    if outcome.pipeline_deterministic != header.expected_deterministic:
        result.problems.append(
            "pinned determinism verdict changed: expected "
            f"{header.expected_deterministic}, pipeline says "
            f"{outcome.pipeline_deterministic}"
        )
    if (
        header.expected_idempotent is not None
        and outcome.pipeline_idempotent != header.expected_idempotent
    ):
        result.problems.append(
            "pinned idempotence verdict changed: expected "
            f"{header.expected_idempotent}, pipeline says "
            f"{outcome.pipeline_idempotent}"
        )
    return result
