"""The SQLite results store: round-trips, concurrency, the plugin."""

import os
import sqlite3
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.testing.orchestrate.resultsdb import (
    ResultsDB,
    default_run_id,
)
from repro.testing.orchestrate.resultsdb import TestResult as Result

REPO_ROOT = Path(__file__).resolve().parent.parent


def make_result(i, outcome="passed", seed=None):
    return Result(
        nodeid=f"tests/test_mod.py::test_case_{i}",
        outcome=outcome,
        duration=0.01 * (i + 1),
        seed=seed,
    )


class TestRoundTrip:
    def test_run_and_results_round_trip(self, tmp_path):
        with ResultsDB(tmp_path / "r.sqlite") as db:
            db.begin_run("run-1", argv=["-q"], started_at=1000.0)
            db.record("run-1", make_result(0))
            db.record("run-1", make_result(1, outcome="failed"))
            db.record("run-1", make_result(2, outcome="skipped"))
            db.finish_run("run-1", 1, finished_at=1010.0)
            (summary,) = db.runs()
            assert summary.run_id == "run-1"
            assert (summary.total, summary.passed) == (3, 1)
            assert (summary.failed, summary.skipped) == (1, 1)
            assert summary.exit_status == 1
            results = db.results_for_run("run-1")
            # results_for_run orders by nodeid: case_0/1/2.
            assert [r.outcome for r in results] == [
                "passed",
                "failed",
                "skipped",
            ]
            assert results[0].module == "tests/test_mod.py"

    def test_rerecording_a_nodeid_replaces_not_duplicates(
        self, tmp_path
    ):
        with ResultsDB(tmp_path / "r.sqlite") as db:
            db.begin_run("run-1")
            db.record("run-1", make_result(0, outcome="failed"))
            db.record("run-1", make_result(0, outcome="passed"))
            results = db.results_for_run("run-1")
            assert len(results) == 1
            assert results[0].outcome == "passed"

    def test_seed_round_trips(self, tmp_path):
        with ResultsDB(tmp_path / "r.sqlite") as db:
            db.begin_run("run-1")
            db.record("run-1", make_result(0, seed="42"))
            assert db.results_for_run("run-1")[0].seed == "42"

    def test_module_durations_series_per_run(self, tmp_path):
        with ResultsDB(tmp_path / "r.sqlite") as db:
            for i, run_id in enumerate(["a", "b"]):
                db.begin_run(run_id, started_at=1000.0 + i)
                db.record(run_id, make_result(i))
            series = db.module_durations()
            assert series["tests/test_mod.py"] == [
                pytest.approx(0.01),
                pytest.approx(0.02),
            ]

    def test_slowest_tests_ordering(self, tmp_path):
        with ResultsDB(tmp_path / "r.sqlite") as db:
            db.begin_run("run-1")
            for i in range(5):
                db.record("run-1", make_result(i))
            slowest = db.slowest_tests("run-1", limit=2)
            assert [r.nodeid for r in slowest] == [
                "tests/test_mod.py::test_case_4",
                "tests/test_mod.py::test_case_3",
            ]

    def test_schema_version_mismatch_is_rejected(self, tmp_path):
        path = tmp_path / "r.sqlite"
        ResultsDB(path).close()
        conn = sqlite3.connect(str(path))
        conn.execute(
            "UPDATE meta SET value = '999' WHERE key = 'schema_version'"
        )
        conn.commit()
        conn.close()
        with pytest.raises(ValueError, match="schema 999"):
            ResultsDB(path)

    def test_default_run_id_embeds_the_pid(self):
        assert str(os.getpid()) in default_run_id()


class TestConcurrentWriters:
    def test_parallel_connections_lose_nothing(self, tmp_path):
        """xdist-style parallelism: every worker has its own
        connection to the same file; WAL + retry must serialize them
        without dropping rows."""
        path = tmp_path / "r.sqlite"
        ResultsDB(path).begin_run("run-1")
        workers, per_worker = 8, 40
        errors = []

        def worker(worker_id):
            try:
                with ResultsDB(path) as db:
                    for i in range(per_worker):
                        db.record(
                            "run-1",
                            Result(
                                nodeid=(
                                    f"tests/test_w{worker_id}.py::"
                                    f"test_{i}"
                                ),
                                outcome="passed",
                                duration=0.001,
                            ),
                        )
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(w,))
            for w in range(workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        with ResultsDB(path) as db:
            assert len(db.results_for_run("run-1")) == (
                workers * per_worker
            )


class TestPytestPlugin:
    def run_pytest(self, tmp_path, test_body, extra_env=None):
        test_file = tmp_path / "test_sample.py"
        test_file.write_text(test_body, encoding="utf8")
        env = dict(os.environ)
        env["REHEARSAL_RESULTS_DB"] = str(tmp_path / "r.sqlite")
        env["REHEARSAL_RUN_ID"] = "plugin-run"
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env.update(extra_env or {})
        return subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                "-q",
                "-p",
                "repro.testing.orchestrate.pytest_plugin",
                str(test_file),
            ],
            cwd=tmp_path,
            env=env,
            capture_output=True,
            text=True,
            check=False,
        )

    def test_outcomes_seeds_and_run_row_are_recorded(self, tmp_path):
        proc = self.run_pytest(
            tmp_path,
            "import pytest\n"
            "def test_ok(record_property):\n"
            "    record_property('seed', 99)\n"
            "def test_bad():\n"
            "    assert False\n"
            "@pytest.mark.skip(reason='x')\n"
            "def test_skipped():\n"
            "    pass\n",
        )
        assert proc.returncode == 1, proc.stderr
        with ResultsDB(tmp_path / "r.sqlite") as db:
            (summary,) = db.runs()
            assert summary.run_id == "plugin-run"
            assert summary.exit_status == 1
            by_node = {
                r.nodeid.split("::")[-1]: r
                for r in db.results_for_run("plugin-run")
            }
            assert by_node["test_ok"].outcome == "passed"
            assert by_node["test_ok"].seed == "99"
            assert by_node["test_bad"].outcome == "failed"
            assert by_node["test_skipped"].outcome == "skipped"

    def test_xdist_worker_reuses_the_controller_run(self, tmp_path):
        with ResultsDB(tmp_path / "r.sqlite") as db:
            db.begin_run("plugin-run", started_at=1.0)
        proc = self.run_pytest(
            tmp_path,
            "def test_ok():\n    pass\n",
            extra_env={"PYTEST_XDIST_WORKER": "gw0"},
        )
        assert proc.returncode == 0, proc.stderr
        with ResultsDB(tmp_path / "r.sqlite") as db:
            (summary,) = db.runs()  # no second runs row minted
            assert summary.started_at == 1.0
            assert len(db.results_for_run("plugin-run")) == 1

    def test_plugin_is_inert_without_the_env_var(self, tmp_path):
        test_file = tmp_path / "test_sample.py"
        test_file.write_text("def test_ok():\n    pass\n")
        env = dict(os.environ)
        env.pop("REHEARSAL_RESULTS_DB", None)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                "-q",
                "-p",
                "repro.testing.orchestrate.pytest_plugin",
                str(test_file),
            ],
            cwd=tmp_path,
            env=env,
            capture_output=True,
            text=True,
            check=False,
        )
        assert proc.returncode == 0, proc.stderr
        assert not (tmp_path / "r.sqlite").exists()
