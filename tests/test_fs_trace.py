"""Tests for the execution tracer."""

from repro.fs import FileSystem, Path, creat, ite, mkdir, none_, rm, seq
from repro.fs.trace import explain_order, trace_expr


class TestTraceExpr:
    def test_successful_trace(self):
        e = seq(mkdir("/a"), creat("/a/f", "x"))
        trace = trace_expr(e, FileSystem.empty())
        assert trace.ok
        assert [s.ok for s in trace.steps] == [True, True]
        assert trace.final.is_file(Path.of("/a/f"))

    def test_failure_recorded_with_reason(self):
        trace = trace_expr(creat("/a/f", "x"), FileSystem.empty())
        assert not trace.ok
        assert trace.steps[-1].ok is False
        assert "parent /a is not a directory" in trace.steps[-1].detail

    def test_branch_recorded(self):
        e = ite(none_(Path.of("/a")), mkdir("/a"), rm("/a"))
        trace = trace_expr(e, FileSystem.empty())
        assert "-> then" in trace.steps[0].description
        state = FileSystem.from_dict({"/a": None})
        trace2 = trace_expr(e, state)
        assert "-> else" in trace2.steps[0].description

    def test_execution_stops_at_error(self):
        e = seq(rm("/missing"), mkdir("/never"))
        trace = trace_expr(e, FileSystem.empty())
        assert not trace.ok
        # The mkdir after the failure must not appear.
        assert all("never" not in s.description for s in trace.steps)

    def test_rm_failure_reasons(self):
        trace = trace_expr(rm("/x"), FileSystem.empty())
        assert "does not exist" in trace.steps[0].detail
        state = FileSystem.from_dict({"/d": None, "/d/f": "x"})
        trace2 = trace_expr(rm("/d"), state)
        assert "non-empty" in trace2.steps[0].detail

    def test_render(self):
        trace = trace_expr(mkdir("/a"), FileSystem.empty())
        text = trace.render()
        assert "[ok ] mkdir(/a)" in text
        assert "success" in text


class TestExplainOrder:
    def test_failing_order_narrative(self):
        """The Fig. 3a story as a narrative: file first fails."""
        from repro.resources import Resource, ResourceCompiler

        compiler = ResourceCompiler()
        programs = {
            "File[conf]": compiler.compile(
                Resource(
                    "file",
                    "/etc/apache2/sites-available/000-default.conf",
                    {"content": "site"},
                )
            ),
            "Package[apache2]": compiler.compile(
                Resource("package", "apache2", {})
            ),
        }
        text = explain_order(
            ["File[conf]", "Package[apache2]"],
            programs,
            FileSystem.empty(),
        )
        assert "File[conf] FAILED" in text
        assert "remaining resources not applied" in text
        good = explain_order(
            ["Package[apache2]", "File[conf]"],
            programs,
            FileSystem.empty(),
        )
        assert "all resources applied successfully" in good
