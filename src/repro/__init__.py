"""repro — a from-scratch reproduction of *Rehearsal: A Configuration
Verification Tool for Puppet* (Shambaugh, Weiss, Guha — PLDI 2016).

Public API tour:

* :class:`repro.Rehearsal` — the end-to-end tool: parse a Puppet
  manifest, build its resource graph, and verify determinism and
  idempotence.
* :mod:`repro.puppet` — the Puppet DSL frontend (§3.1).
* :mod:`repro.fs` — the FS language of filesystem operations (§3.2).
* :mod:`repro.resources` — resource models, C : R → FS (§3.3).
* :mod:`repro.analysis` — determinacy (§4), idempotence and invariants
  (§5), plus the scaling analyses (commutativity, pruning,
  elimination).
* :mod:`repro.smt`, :mod:`repro.logic`, :mod:`repro.sat` — the solver
  substrate replacing Z3 (see DESIGN.md).
* :mod:`repro.corpus` — the 13 benchmark configurations of §6.
"""

from repro.analysis.determinism import DeterminismOptions, DeterminismResult
from repro.analysis.idempotence import IdempotenceResult
from repro.core.pipeline import Rehearsal, VerificationReport
from repro.errors import (
    AnalysisBudgetExceeded,
    DependencyCycleError,
    PuppetEvalError,
    PuppetSyntaxError,
    ReproError,
    ResourceModelError,
)

__version__ = "1.0.0"

__all__ = [
    "AnalysisBudgetExceeded",
    "DependencyCycleError",
    "DeterminismOptions",
    "DeterminismResult",
    "IdempotenceResult",
    "PuppetEvalError",
    "PuppetSyntaxError",
    "Rehearsal",
    "ReproError",
    "ResourceModelError",
    "VerificationReport",
    "__version__",
]
