"""The documentation must not rot: tools/check_links.py and its
verdict on the real tree."""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_links  # noqa: E402


class TestLinkExtraction:
    def test_inline_links_found(self):
        text = "see [a](docs/a.md) and [b](../b.md#frag) plus ![img](x.png)"
        assert check_links.extract_links(text) == [
            "docs/a.md",
            "../b.md#frag",
            "x.png",
        ]

    def test_code_fences_are_ignored(self):
        text = "```\n[not a link](nope.md)\n```\n[real](yes.md)"
        assert check_links.extract_links(text) == ["yes.md"]

    def test_link_text_may_contain_carets(self):
        assert check_links.extract_links("[O(n^2) notes](big-o.md)") == [
            "big-o.md"
        ]


class TestBrokenLinkDetection:
    def test_missing_target_is_reported(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("[gone](missing.md)")
        problems = check_links.broken_links(doc, tmp_path)
        assert len(problems) == 1
        assert problems[0][0] == "missing.md"

    def test_existing_target_and_externals_pass(self, tmp_path):
        (tmp_path / "other.md").write_text("x")
        doc = tmp_path / "doc.md"
        doc.write_text(
            "[ok](other.md) [anchor](other.md#sec) [web](https://x.example) "
            "[page](#local)"
        )
        assert check_links.broken_links(doc, tmp_path) == []

    def test_escaping_the_repo_is_reported(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("[out](../../etc/passwd)")
        problems = check_links.broken_links(doc, tmp_path)
        assert problems and problems[0][1] == "escapes the repository"


class TestRepositoryDocs:
    def test_every_relative_link_in_this_repo_resolves(self):
        assert check_links.check_tree(REPO_ROOT) == []

    def test_the_documents_exist(self):
        names = {d.name for d in check_links.iter_documents(REPO_ROOT)}
        assert {
            "README.md",
            "tutorial.md",
            "api-reference.md",
            "architecture.md",
        } <= names
