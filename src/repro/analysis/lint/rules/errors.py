"""Frontend-failure rules (REH001–REH003).

These have no checker functions: the engine emits them directly from
the staged pipeline when parsing, evaluation, or resource compilation
fails.  They are registered here so the ids appear in the SARIF rule
table and can be disabled like any other rule.
"""

from repro.analysis.lint.diagnostics import Severity
from repro.analysis.lint.engine import Rule, register_rule

register_rule(
    Rule(
        id="REH001",
        name="parse-error",
        severity=Severity.ERROR,
        summary="manifest does not parse",
        description=(
            "The manifest is not syntactically valid Puppet (for the "
            "subset of the language this tool models). Nothing else "
            "can be checked until it parses."
        ),
    )
)

register_rule(
    Rule(
        id="REH002",
        name="eval-error",
        severity=Severity.ERROR,
        summary="manifest does not evaluate to a catalog",
        description=(
            "Catalog compilation failed: an undefined variable, a "
            "duplicate resource declaration, an unknown class or "
            "define, or a failing builtin."
        ),
    )
)

register_rule(
    Rule(
        id="REH003",
        name="resource-model-error",
        severity=Severity.ERROR,
        summary="resource cannot be modeled as a filesystem program",
        description=(
            "A declared resource has no model or is missing required "
            "attributes, so its filesystem semantics are unknown. "
            "Rules that need footprints skip manifests with this error."
        ),
    )
)
