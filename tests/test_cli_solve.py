"""Tests for the ``rehearsal solve`` subcommand and the DIMACS
solver-state export (the round-trip debugging loop)."""

import io

import pytest

from repro.core.cli import main
from repro.sat.brute import check_assignment
from repro.sat.dimacs import read_dimacs, solver_to_string, write_solver
from repro.sat.solver import Solver

SAT_CNF = "c a satisfiable instance\np cnf 3 2\n1 -2 0\n2 3 0\n"
UNSAT_CNF = "p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n"


@pytest.fixture
def sat_file(tmp_path):
    path = tmp_path / "sat.cnf"
    path.write_text(SAT_CNF, encoding="utf8")
    return path


@pytest.fixture
def unsat_file(tmp_path):
    path = tmp_path / "unsat.cnf"
    path.write_text(UNSAT_CNF, encoding="utf8")
    return path


class TestSolveCommand:
    def test_sat_exit_code_and_model(self, sat_file, capsys):
        code = main(["solve", str(sat_file)])
        out = capsys.readouterr().out
        assert code == 10
        assert "s SATISFIABLE" in out
        model_line = next(
            line for line in out.splitlines() if line.startswith("v ")
        )
        lits = [int(tok) for tok in model_line[2:].split()]
        assert lits[-1] == 0
        assignment = {abs(lit): lit > 0 for lit in lits[:-1]}
        clauses, _ = read_dimacs(io.StringIO(SAT_CNF))
        assert check_assignment(clauses, assignment)

    def test_unsat_exit_code(self, unsat_file, capsys):
        code = main(["solve", str(unsat_file)])
        assert code == 20
        assert "s UNSATISFIABLE" in capsys.readouterr().out

    def test_no_preprocess_agrees(self, sat_file, unsat_file, capsys):
        assert main(["solve", str(sat_file), "--no-preprocess"]) == 10
        assert main(["solve", str(unsat_file), "--no-preprocess"]) == 20

    def test_missing_file_is_usage_error(self, tmp_path, capsys):
        code = main(["solve", str(tmp_path / "nope.cnf")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_dump_round_trips(self, sat_file, tmp_path, capsys):
        dumped = tmp_path / "dumped.cnf"
        assert main(["solve", str(sat_file), "--dump", str(dumped)]) == 10
        capsys.readouterr()
        # The dumped (post-preprocessing) instance decides the same way.
        assert main(["solve", str(dumped)]) == 10
        assert main(["solve", str(dumped), "--no-preprocess"]) == 10

    def test_dump_round_trips_unsat(self, unsat_file, tmp_path, capsys):
        dumped = tmp_path / "dumped.cnf"
        assert main(["solve", str(unsat_file), "--dump", str(dumped)]) == 20
        capsys.readouterr()
        assert main(["solve", str(dumped)]) == 20

    def test_dump_preserves_forced_units(self, tmp_path, capsys):
        """Regression: preprocessing consumes forced units; the dump
        must re-assert them or models of the dumped file can violate
        the original instance."""
        original = tmp_path / "unit.cnf"
        original.write_text("p cnf 2 2\n1 0\n-1 2 0\n", encoding="utf8")
        dumped = tmp_path / "dumped.cnf"
        assert main(["solve", str(original), "--dump", str(dumped)]) == 10
        capsys.readouterr()
        assert main(["solve", str(dumped), "--no-preprocess"]) == 10
        out = capsys.readouterr().out
        model_line = next(
            line for line in out.splitlines() if line.startswith("v ")
        )
        lits = [int(tok) for tok in model_line[2:].split()][:-1]
        assignment = {abs(lit): lit > 0 for lit in lits}
        clauses, _ = read_dimacs(
            io.StringIO(original.read_text(encoding="utf8"))
        )
        assert check_assignment(clauses, assignment)


class TestSolverExport:
    def test_write_solver_includes_units_and_clauses(self):
        solver = Solver(3)
        solver.add_clause([1])
        solver.add_clause([-1, 2])
        solver.add_clause([2, 3])
        text = solver_to_string(solver)
        clauses, num_vars = read_dimacs(io.StringIO(text))
        assert num_vars == 3
        rebuilt = Solver()
        for clause in clauses:
            rebuilt.add_clause(clause)
        result = rebuilt.solve()
        assert result.sat
        assert result.assignment[1] is True
        assert result.assignment[2] is True

    def test_export_after_incremental_calls_keeps_learned_facts(self):
        solver = Solver(3)
        solver.add_clause([1, 2])
        solver.add_clause([1, -2])
        solver.solve()
        buf = io.StringIO()
        write_solver(buf, solver, include_learned=True, comments=["snapshot"])
        text = buf.getvalue()
        assert text.startswith("c snapshot")
        clauses, _ = read_dimacs(io.StringIO(text))
        rebuilt = Solver()
        for clause in clauses:
            rebuilt.add_clause(clause)
        assert rebuilt.solve().sat
