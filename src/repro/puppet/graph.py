"""From catalogs to compiled resource graphs (paper Fig. 4 and §3.4).

``compile_catalog`` produces the pair the analyses consume: a networkx
DiGraph whose nodes are primitive-resource ref strings (edges point
prerequisite → dependent) and a dict mapping each node to its compiled
FS program.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import networkx as nx

from repro.fs import Expr
from repro.puppet.catalog import Catalog
from repro.resources.compiler import ModelContext, ResourceCompiler


def compile_catalog(
    catalog: Catalog,
    context: Optional[ModelContext] = None,
) -> Tuple["nx.DiGraph", Dict[str, Expr]]:
    """Build the resource graph and compile every node with C (§3.3)."""
    graph = catalog.build_graph()
    compiler = ResourceCompiler(context)
    programs: Dict[str, Expr] = {}
    for node, data in graph.nodes(data=True):
        programs[node] = compiler.compile(data["entry"].resource)
    return graph, programs
