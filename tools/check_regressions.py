#!/usr/bin/env python3
"""CI guard for the fuzz-regression corpus (``tests/regressions/``).

Asserts, for every committed reproducer:

1. it parses as a Puppet manifest;
2. it carries the full machine-readable header (seed, case id,
   generator version, disagreement kind, expected verdict — see
   :mod:`repro.testing.regressions`);
3. it is referenced by the replay test: the discovery the test
   parametrizes over must return exactly the files on disk, so a
   reproducer can neither be skipped silently nor linger unreplayed.

Exit codes: 0 — corpus is sound; 1 — a check failed.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.puppet.parser import parse_manifest  # noqa: E402
from repro.testing.generate import GENERATOR_VERSION  # noqa: E402
from repro.testing.regressions import (  # noqa: E402
    RegressionFormatError,
    discover,
    parse_header,
)

REGRESSION_DIR = REPO_ROOT / "tests" / "regressions"
REPLAY_TEST = REPO_ROOT / "tests" / "test_regressions.py"


def _replay_parametrization():
    """The list of paths ``test_regressions.py`` actually parametrizes
    over (its module-level ``REGRESSIONS``), or None when the module
    cannot be imported or no longer exposes the list."""
    import importlib.util

    try:
        spec = importlib.util.spec_from_file_location(
            "replay_test_module", REPLAY_TEST
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
    except Exception:  # noqa: BLE001 — any import failure is a finding
        return None
    replayed = getattr(module, "REGRESSIONS", None)
    if not isinstance(replayed, list):
        return None
    return set(replayed)


def main() -> int:
    failures = []
    if not REGRESSION_DIR.is_dir():
        print(f"error: {REGRESSION_DIR} does not exist", file=sys.stderr)
        return 1

    discovered = discover(REGRESSION_DIR)
    if not discovered:
        failures.append("tests/regressions/ holds no reproducers")

    # Every file on disk must be in the replay test's *actual*
    # parametrization list — import the test module and read the list
    # it collects, so a rewrite that filters or hardcodes filenames
    # cannot leave a reproducer silently unreplayed.
    replayed = _replay_parametrization()
    if replayed is None:
        failures.append(
            f"cannot import {REPLAY_TEST.name} or it no longer "
            "exposes a REGRESSIONS list; the corpus is not "
            "guaranteed to be replayed"
        )
    else:
        unreplayed = [p.name for p in discovered if p not in replayed]
        if unreplayed:
            failures.append(
                f"not referenced by the replay test: {unreplayed}"
            )

    for path in discovered:
        text = path.read_text(encoding="utf8")
        try:
            header = parse_header(text, path.name)
        except RegressionFormatError as exc:
            failures.append(str(exc))
            continue
        if header.generator_version != GENERATOR_VERSION:
            failures.append(
                f"{path.name}: minted under generator "
                f"v{header.generator_version} but the current "
                f"generator is v{GENERATOR_VERSION} — its "
                "seed/case-id no longer re-create the catalog; "
                "re-mint the reproducer"
            )
            continue
        try:
            parse_manifest(text)
        except Exception as exc:  # noqa: BLE001 — report, don't crash
            failures.append(f"{path.name}: does not parse: {exc}")
            continue
        print(
            f"ok: {path.name} (seed {header.seed}, case "
            f"{header.case_id}, {header.disagreement}, expected "
            f"deterministic={header.expected_deterministic})"
        )

    if failures:
        print(
            f"\n{len(failures)} regression-corpus problem(s):",
            file=sys.stderr,
        )
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nregression corpus sound: {len(discovered)} reproducer(s).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
