"""Differential fuzzing: generator, concrete oracle, driver, shrinker.

The subsystem behind ``rehearsal fuzz`` (and the nightly CI fuzz job):

* :mod:`repro.testing.generate` — seeded random resource catalogs;
* :mod:`repro.testing.oracle` — concrete all-interleavings reference
  executor, the ground truth the symbolic pipeline is diffed against;
* :mod:`repro.testing.differential` — the driver that runs both and
  classifies disagreements;
* :mod:`repro.testing.shrink` — delta-debugging minimizer;
* :mod:`repro.testing.regressions` — the committed-reproducer format
  shared by ``tests/regressions/`` and ``tools/check_regressions.py``.
"""

from repro.testing.differential import (
    CASES_PER_SECOND,
    CaseOutcome,
    Disagreement,
    Finding,
    FuzzSession,
    FuzzSummary,
    run_source,
)
from repro.testing.generate import (
    BUG_CLASSES,
    GENERATOR_VERSION,
    CaseGenerator,
    GeneratedCase,
    GeneratorConfig,
    ResourceSpec,
)
from repro.testing.oracle import (
    MAX_ORACLE_RESOURCES,
    OracleReport,
    RacingPair,
    initial_state_family,
    racing_pairs,
    run_oracle,
)
from repro.testing.shrink import shrink_case

__all__ = [
    "BUG_CLASSES",
    "CASES_PER_SECOND",
    "CaseGenerator",
    "CaseOutcome",
    "Disagreement",
    "Finding",
    "FuzzSession",
    "FuzzSummary",
    "GENERATOR_VERSION",
    "GeneratedCase",
    "GeneratorConfig",
    "MAX_ORACLE_RESOURCES",
    "OracleReport",
    "RacingPair",
    "ResourceSpec",
    "initial_state_family",
    "racing_pairs",
    "run_oracle",
    "run_source",
    "shrink_case",
]
