"""Tests for the Puppet lexer and parser."""

import pytest

from repro.errors import PuppetSyntaxError
from repro.puppet import ast_nodes as ast
from repro.puppet.lexer import tokenize
from repro.puppet.parser import parse_manifest
from repro.puppet.tokens import TokenKind as T


def kinds(source):
    return [t.kind for t in tokenize(source)][:-1]  # drop EOF


class TestLexer:
    def test_simple_resource(self):
        got = kinds("package{'vim': ensure => present }")
        assert got == [
            T.NAME,
            T.LBRACE,
            T.STRING,
            T.COLON,
            T.NAME,
            T.FARROW,
            T.NAME,
            T.RBRACE,
        ]

    def test_typeref_vs_name(self):
        assert kinds("File") == [T.TYPEREF]
        assert kinds("file") == [T.NAME]
        assert kinds("Nginx::Config") == [T.TYPEREF]
        assert kinds("nginx::config") == [T.NAME]

    def test_variables(self):
        toks = tokenize("$x $::top $nginx::port")
        assert [t.text for t in toks[:-1]] == ["x", "::top", "nginx::port"]
        assert all(t.kind is T.VARIABLE for t in toks[:-1])

    def test_arrows(self):
        assert kinds("-> ~> <- <~") == [
            T.ARROW_RIGHT,
            T.NOTIFY_RIGHT,
            T.ARROW_LEFT,
            T.NOTIFY_LEFT,
        ]

    def test_collector_brackets(self):
        assert kinds("<| |>") == [T.COLLECT_OPEN, T.COLLECT_CLOSE]

    def test_comparison_ops(self):
        assert kinds("== != <= >= < >") == [
            T.EQ,
            T.NEQ,
            T.LTEQ,
            T.GTEQ,
            T.LT,
            T.GT,
        ]

    def test_comments_skipped(self):
        assert kinds("# line comment\nfoo /* block */ bar") == [
            T.NAME,
            T.NAME,
        ]

    def test_string_escapes(self):
        toks = tokenize(r"'it\'s' ")
        assert toks[0].text == "it's"

    def test_dq_string_keeps_payload(self):
        toks = tokenize('"hello $name"')
        assert toks[0].kind is T.DQSTRING
        assert toks[0].text == "hello $name"

    def test_numbers(self):
        toks = tokenize("42 3.14")
        assert toks[0].text == "42"
        assert toks[1].text == "3.14"

    def test_keywords(self):
        assert kinds("define class if else case node") == [
            T.DEFINE,
            T.CLASS,
            T.IF,
            T.ELSE,
            T.CASE,
            T.NODE,
        ]

    def test_unterminated_string(self):
        with pytest.raises(PuppetSyntaxError):
            tokenize("'oops")

    def test_position_tracking(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)


class TestParserResources:
    def test_basic_resource(self):
        m = parse_manifest("package{'vim': ensure => present }")
        decl = m.statements[0]
        assert isinstance(decl, ast.ResourceDecl)
        assert decl.rtype == "package"
        assert decl.bodies[0].title == ast.Literal("vim")
        assert decl.bodies[0].attributes[0].name == "ensure"

    def test_multiple_bodies(self):
        m = parse_manifest(
            "file{'/a': ensure => present; '/b': ensure => absent }"
        )
        decl = m.statements[0]
        assert len(decl.bodies) == 2

    def test_trailing_comma(self):
        m = parse_manifest("file{'/a': content => 'x', }")
        assert len(m.statements) == 1

    def test_array_title(self):
        m = parse_manifest("package{['m4', 'make']: ensure => present }")
        decl = m.statements[0]
        assert isinstance(decl.bodies[0].title, ast.ArrayLit)

    def test_virtual_resource(self):
        m = parse_manifest("@user{'carol': ensure => present }")
        assert m.statements[0].virtual

    def test_resource_default(self):
        m = parse_manifest("File { owner => 'root' }")
        stmt = m.statements[0]
        assert isinstance(stmt, ast.ResourceDefault)
        assert stmt.rtype == "File"

    def test_resource_override(self):
        m = parse_manifest("File['/etc/motd'] { mode => '0644' }")
        stmt = m.statements[0]
        assert isinstance(stmt, ast.ResourceOverride)

    def test_class_resource_style(self):
        m = parse_manifest("class { 'nginx': port => 80 }")
        stmt = m.statements[0]
        assert isinstance(stmt, ast.ResourceDecl)
        assert stmt.rtype == "class"


class TestParserDefinitions:
    def test_define(self):
        m = parse_manifest(
            """
            define myuser($uid, $shell = '/bin/bash') {
              user{"$title": ensure => present }
            }
            """
        )
        stmt = m.statements[0]
        assert isinstance(stmt, ast.DefineDecl)
        assert stmt.name == "myuser"
        assert stmt.params[0] == ("uid", None)
        assert stmt.params[1][0] == "shell"

    def test_class_with_inherits(self):
        m = parse_manifest("class web inherits base { }")
        stmt = m.statements[0]
        assert stmt.parent == "base"

    def test_node_blocks(self):
        m = parse_manifest("node default { } node 'db1', 'db2' { }")
        assert m.statements[0].names == ("default",)
        assert m.statements[1].names == ("db1", "db2")

    def test_include(self):
        m = parse_manifest("include nginx, postgres")
        assert m.statements[0].names == ("nginx", "postgres")


class TestParserControlFlow:
    def test_if_elsif_else(self):
        m = parse_manifest(
            """
            if $osfamily == 'Debian' { include apt }
            elsif $osfamily == 'RedHat' { include yum }
            else { fail('unsupported') }
            """
        )
        stmt = m.statements[0]
        assert isinstance(stmt, ast.IfStatement)
        assert len(stmt.branches) == 3
        assert stmt.branches[2][0] is None

    def test_unless(self):
        m = parse_manifest("unless $ok { fail('no') }")
        stmt = m.statements[0]
        assert isinstance(stmt, ast.IfStatement)
        cond = stmt.branches[0][0]
        assert isinstance(cond, ast.UnaryOp) and cond.op == "!"

    def test_case(self):
        m = parse_manifest(
            """
            case $os {
              'ubuntu', 'debian': { $pkg = 'apache2' }
              default: { $pkg = 'httpd' }
            }
            """
        )
        stmt = m.statements[0]
        assert isinstance(stmt, ast.CaseStatement)
        assert len(stmt.cases) == 2
        assert stmt.cases[1][0] == (None,)

    def test_selector(self):
        m = parse_manifest(
            "$pkg = $os ? { 'ubuntu' => 'apache2', default => 'httpd' }"
        )
        stmt = m.statements[0]
        assert isinstance(stmt.value, ast.Selector)


class TestParserChainsAndCollectors:
    def test_simple_chain(self):
        m = parse_manifest("Package['apache2'] -> File['/etc/apache2.conf']")
        stmt = m.statements[0]
        assert isinstance(stmt, ast.ChainStatement)
        assert stmt.arrows == ("->",)

    def test_left_arrow_flipped(self):
        m = parse_manifest("File['/f'] <- Package['p']")
        stmt = m.statements[0]
        assert stmt.operands[0].rtype == "Package"
        assert stmt.operands[1].rtype == "File"

    def test_long_chain(self):
        m = parse_manifest("Package['a'] -> Package['b'] ~> Service['c']")
        stmt = m.statements[0]
        assert stmt.arrows == ("->", "~>")

    def test_collector_bare(self):
        m = parse_manifest("User <| |>")
        stmt = m.statements[0]
        assert isinstance(stmt, ast.Collector)
        assert stmt.query is None

    def test_collector_with_query_and_override(self):
        m = parse_manifest(
            "File <| owner == 'carol' |> { mode => 'go-rwx' }"
        )
        stmt = m.statements[0]
        assert stmt.query.op == "=="
        assert stmt.query.attr == "owner"
        assert stmt.overrides[0].name == "mode"

    def test_collector_compound_query(self):
        m = parse_manifest("User <| title == 'a' or title == 'b' |>")
        assert m.statements[0].query.op == "or"

    def test_chain_with_collector(self):
        m = parse_manifest("Package['x'] -> File <| tagged == 'conf' |>")
        stmt = m.statements[0]
        assert isinstance(stmt.operands[1], ast.Collector)


class TestParserExpressions:
    def test_precedence(self):
        m = parse_manifest("$x = 1 + 2 * 3")
        value = m.statements[0].value
        assert value.op == "+"
        assert value.right.op == "*"

    def test_boolean_ops(self):
        m = parse_manifest("$x = $a and $b or !$c")
        assert m.statements[0].value.op == "or"

    def test_array_and_hash(self):
        m = parse_manifest("$x = [1, 'two', $three]")
        assert isinstance(m.statements[0].value, ast.ArrayLit)
        m = parse_manifest("$x = { 'a' => 1, 'b' => 2 }")
        assert isinstance(m.statements[0].value, ast.HashLit)

    def test_function_call_expr(self):
        m = parse_manifest("$x = defined(Package['vim'])")
        value = m.statements[0].value
        assert isinstance(value, ast.FunctionCall)
        assert value.name == "defined"

    def test_in_operator(self):
        m = parse_manifest("$x = 'a' in $list")
        assert m.statements[0].value.op == "in"


class TestParserErrors:
    def test_missing_colon(self):
        with pytest.raises(PuppetSyntaxError):
            parse_manifest("file{'/a' content => 'x' }")

    def test_dangling_ref(self):
        with pytest.raises(PuppetSyntaxError):
            parse_manifest("File['/a']")

    def test_unclosed_brace(self):
        with pytest.raises(PuppetSyntaxError):
            parse_manifest("file{'/a': content => 'x'")

    def test_error_has_position(self):
        with pytest.raises(PuppetSyntaxError) as exc:
            parse_manifest("file{'/a' content }")
        assert exc.value.line >= 1
