# xinetd — the super-server, with a tftp service entry (§6 benchmark
# "xinetd").
#
# SEEDED BUG: the main configuration File['/etc/xinetd.conf']
# overwrites the default config shipped by Package['xinetd'] without
# any ordering between the two (the Fig. 3a overwrite pattern).  The
# per-service tftp entry is correctly ordered — the bug is only in the
# main config.

class xinetd {
  $instances = 50

  package { 'xinetd':
    ensure => installed,
  }

  # BUG: missing require => Package['xinetd'] (see xinetd-fixed.pp).
  file { '/etc/xinetd.conf':
    ensure  => file,
    content => "defaults\n{\n    instances   = ${instances}\n    log_type    = SYSLOG daemon info\n}\nincludedir /etc/xinetd.d\n",
  }

  file { '/etc/xinetd.d/tftp':
    ensure  => file,
    content => "service tftp\n{\n    socket_type = dgram\n    protocol    = udp\n    server      = /usr/sbin/in.tftpd\n    disable     = no\n}\n",
    require => Package['xinetd'],
  }

  service { 'xinetd':
    ensure    => running,
    enable    => true,
    subscribe => [File['/etc/xinetd.conf'], File['/etc/xinetd.d/tftp']],
  }
}

include xinetd
