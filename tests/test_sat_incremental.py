"""Tests for incremental assumption-based solving and unsat cores
(repro.sat.solver + repro.smt.query.IncrementalQuery)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.logic.terms import TermBank
from repro.sat.brute import brute_force_solve, check_assignment
from repro.sat.solver import Solver
from repro.smt.query import IncrementalQuery


class TestAssumptionCores:
    def test_core_names_the_conflicting_assumptions(self):
        solver = Solver(3)
        solver.add_clause([-1, -2])  # 1 and 2 cannot both hold
        result = solver.solve(assumptions=[1, 2, 3])
        assert not result.sat
        assert set(result.core) <= {1, 2, 3}
        assert {1, 2} <= set(result.core) or result.core == [1] or result.core == [2]
        # 3 is irrelevant and must not be implicated once minimal.
        result2 = solver.solve(assumptions=sorted(result.core))
        assert not result2.sat

    def test_assumption_contradicting_formula_has_singleton_core(self):
        solver = Solver(2)
        solver.add_clause([1])
        result = solver.solve(assumptions=[-1])
        assert not result.sat
        assert result.core == [-1]

    def test_empty_core_means_formula_unsat(self):
        solver = Solver(1)
        solver.add_clause([1])
        solver.add_clause([-1])
        result = solver.solve(assumptions=[1])
        assert not result.sat
        assert result.core == []

    def test_propagated_assumption_chain_in_core(self):
        solver = Solver(4)
        solver.add_clause([-1, 2])  # 1 -> 2
        solver.add_clause([-2, 3])  # 2 -> 3
        solver.add_clause([-3, -4])  # 3 -> not 4
        result = solver.solve(assumptions=[1, 4])
        assert not result.sat
        assert set(result.core) == {1, 4}

    def test_both_polarities_assumed(self):
        solver = Solver(2)
        solver.add_clause([1, 2])
        result = solver.solve(assumptions=[1, -1])
        assert not result.sat
        assert set(result.core) == {1, -1}

    def test_solver_stays_usable_after_assumption_unsat(self):
        solver = Solver(2)
        solver.add_clause([-1, -2])
        assert not solver.solve(assumptions=[1, 2]).sat
        assert solver.solve(assumptions=[1]).sat
        assert solver.solve(assumptions=[2]).sat
        assert solver.solve().sat

    def test_learned_clauses_survive_calls(self):
        rng = random.Random(5)
        clauses = []
        for _ in range(60):
            clause = [
                rng.choice([-1, 1]) * rng.randint(1, 12) for _ in range(3)
            ]
            clauses.append(clause)
        solver = Solver(12)
        for clause in clauses:
            solver.add_clause(clause)
        first = solver.solve(assumptions=[1])
        conflicts_first = solver.conflicts
        second = solver.solve(assumptions=[1])
        # The second identical query replays propagation over retained
        # clauses; it must not redo the first call's conflicts.
        assert solver.conflicts - conflicts_first <= conflicts_first + 1
        assert first.sat == second.sat

    @settings(max_examples=200, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_random_assumption_queries_match_oracle(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(2, 8)
        clauses = [
            [
                rng.choice([-1, 1]) * rng.randint(1, num_vars)
                for _ in range(rng.randint(1, 3))
            ]
            for _ in range(rng.randint(1, 20))
        ]
        solver = Solver(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        for _ in range(3):
            assumptions = [
                rng.choice([-1, 1]) * rng.randint(1, num_vars)
                for _ in range(rng.randint(0, 3))
            ]
            result = solver.solve(assumptions=assumptions)
            oracle = brute_force_solve(
                clauses + [[a] for a in assumptions], num_vars
            )
            assert result.sat == (oracle is not None)
            if result.sat:
                full = {
                    v: result.assignment.get(v, False)
                    for v in range(1, num_vars + 1)
                }
                assert check_assignment(
                    clauses + [[a] for a in assumptions], full
                )
            else:
                assert set(result.core) <= set(assumptions)
                # The core itself must already be unsatisfiable.
                assert (
                    brute_force_solve(
                        clauses + [[a] for a in result.core], num_vars
                    )
                    is None
                )


class TestIncrementalClauseAddition:
    def test_clause_over_root_falsified_watches_still_propagates(self):
        """Regression: a clause added between solve() calls whose first
        two literals are already false at level 0 must be simplified
        before watching, or it is never visited again."""
        solver = Solver(3)
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert solver.solve().sat
        solver.add_clause([1, 2, 3])
        result = solver.solve()
        assert result.sat
        assert result.assignment[3] is True

    def test_unsat_after_adding_root_falsified_clause(self):
        solver = Solver(3)
        solver.add_clause([-1])
        solver.add_clause([-2])
        solver.add_clause([-3])
        assert solver.solve().sat
        solver.add_clause([1, 2, 3])
        assert not solver.solve().sat

    def test_root_satisfied_clause_is_dropped(self):
        solver = Solver(2)
        solver.add_clause([1])
        assert solver.solve().sat
        solver.add_clause([1, 2])
        assert solver.solve().sat
        assert len(solver.clause_database()) == 1  # just the unit

    def test_solver_reusable_after_conflict_budget_exhaustion(self):
        """Regression: an exhausted conflict budget must leave the
        solver at decision level 0, or the next add_clause would be
        rejected (or, worse, simplified against stale assumption-level
        assignments)."""
        rng = random.Random(11)
        clauses = [
            [rng.choice([-1, 1]) * rng.randint(1, 14) for _ in range(3)]
            for _ in range(70)
        ]
        solver = Solver(14)
        for clause in clauses:
            solver.add_clause(clause)
        with pytest.raises(SolverError):
            solver.solve(assumptions=[1, 2, 3], max_conflicts=1)
        solver.add_clause([14])  # must not raise
        result = solver.solve()
        oracle = brute_force_solve(clauses + [[14]], 14)
        assert result.sat == (oracle is not None)

    @settings(max_examples=150, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_interleaved_adds_and_solves_match_oracle(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(2, 7)
        solver = Solver(num_vars)
        clauses = []
        for _ in range(4):
            batch = [
                [
                    rng.choice([-1, 1]) * rng.randint(1, num_vars)
                    for _ in range(rng.randint(1, 3))
                ]
                for _ in range(rng.randint(1, 6))
            ]
            for clause in batch:
                solver.add_clause(clause)
            clauses.extend(batch)
            result = solver.solve()
            oracle = brute_force_solve(clauses, num_vars)
            assert result.sat == (oracle is not None)
            if result.sat:
                full = {
                    v: result.assignment.get(v, False)
                    for v in range(1, num_vars + 1)
                }
                assert check_assignment(clauses, full)
            else:
                break


class TestClauseDatabase:
    def test_clause_database_round_trips(self):
        solver = Solver(3)
        solver.add_clause([1])
        solver.add_clause([-1, 2])
        solver.add_clause([2, 3])
        db = solver.clause_database()
        rebuilt = Solver()
        for clause in db:
            rebuilt.add_clause(clause)
        assert rebuilt.solve().sat == solver.solve().sat

    def test_root_units_include_propagated_facts(self):
        solver = Solver(2)
        solver.add_clause([1])
        solver.add_clause([-1, 2])
        solver.solve()
        assert set(solver.root_units()) == {1, 2}


class TestIncrementalQuery:
    def test_selectors_isolate_guarded_terms(self):
        bank = TermBank()
        x = bank.var("x")
        query = IncrementalQuery(bank)
        query.assert_term(bank.or_(x, bank.var("y")))
        s_pos = query.add_selector("pos", x)
        s_neg = query.add_selector("neg", bank.not_(x))
        assert query.check(assumptions=[s_pos]).sat
        assert query.check(assumptions=[s_neg]).sat
        result = query.check(assumptions=[s_pos, s_neg])
        assert not result.sat
        assert set(result.core) == {"pos", "neg"}

    def test_core_reported_by_selector_name(self):
        bank = TermBank()
        query = IncrementalQuery(bank)
        a, b, c = bank.var("a"), bank.var("b"), bank.var("c")
        query.assert_term(bank.or_(a, b, c))
        s1 = query.add_selector("kill-a", bank.not_(a))
        s2 = query.add_selector("kill-b", bank.not_(b))
        s3 = query.add_selector("kill-c", bank.not_(c))
        result = query.check(assumptions=[s1, s2, s3])
        assert not result.sat
        assert set(result.core) == {"kill-a", "kill-b", "kill-c"}

    def test_guarded_false_term_unsat_with_core(self):
        # Regression: preprocessing derives the unit ¬s from s → false;
        # the solver must still see it so the assumption conflicts.
        bank = TermBank()
        query = IncrementalQuery(bank)
        query.assert_term(bank.or_(bank.var("x"), bank.var("y")))
        s = query.add_selector("impossible", bank.FALSE)
        result = query.check(assumptions=[s])
        assert not result.sat
        assert result.core == ["impossible"]
        assert query.check().sat

    def test_selectors_added_after_first_check(self):
        bank = TermBank()
        x, y = bank.var("x"), bank.var("y")
        query = IncrementalQuery(bank)
        query.assert_term(bank.or_(x, y))
        assert query.check().sat
        s = query.add_selector("later", bank.and_(bank.not_(x), bank.not_(y)))
        result = query.check(assumptions=[s])
        assert not result.sat
        assert result.core == ["later"]
        assert query.check().sat

    def test_named_model_respects_assumptions(self):
        bank = TermBank()
        x = bank.var("x")
        query = IncrementalQuery(bank)
        query.assert_term(bank.or_(x, bank.not_(x)))
        s = query.add_selector("force-x", x)
        result = query.check(assumptions=[s])
        assert result.sat
        assert result.named_model["x"] is True
