"""SPRT burn-in: quarantine → pinned promotion for fuzz reproducers.

The nightly fuzzer mints shrunk reproducers forever; committing them
straight into ``tests/regressions/`` would let a flaky finding poison
tier-1.  Instead they land in ``tests/regressions/quarantine/`` and
``rehearsal burnin`` replays each one repeatedly through the
differential pipeline (:mod:`repro.testing.replay`) under a sequential
probability ratio test (:mod:`repro.testing.orchestrate.sprt`):

* **promoted** — the SPRT accepts stability: the file moves into the
  pinned directory and a machine-readable promotion record is
  appended to its ``promotions.json`` ledger (which
  ``tools/check_regressions.py`` cross-checks against the corpus:
  every pinned reproducer must carry a record whose SHA-256 matches
  the file, so hand-edits force a re-burn-in);
* **demoted** — the SPRT accepts flakiness: the file moves aside into
  ``<quarantine>/flaky/`` with a record carrying the observed flake
  rate;
* **undecided** — the trial cap ran out: the file stays quarantined.

Every trial uses a distinct oracle seed, so a reproducer that only
reproduces from one lucky initial-state sample gets caught.
"""

from __future__ import annotations

import hashlib
import json
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional

from repro.testing.orchestrate.sprt import (
    Decision,
    SprtConfig,
    SprtTest,
)

LEDGER_NAME = "promotions.json"
LEDGER_SCHEMA = 1
FLAKY_SUBDIR = "flaky"

#: executor(path, trial_seed) -> did this replay pass?
Executor = Callable[[Path, int], bool]


@dataclass
class BurninRecord:
    """One decided reproducer — the machine-readable promotion (or
    demotion) record the ledger and the tests pin."""

    file: str
    sha256: str
    decision: str
    trials: int
    failures: int
    flake_rate: Optional[float]
    llr: float
    trial_seeds: List[int]
    sprt: dict
    moved_to: Optional[str] = None
    problems: List[str] = field(default_factory=list)
    recorded_at: Optional[str] = None

    def to_dict(self) -> dict:
        payload = {
            "file": self.file,
            "sha256": self.sha256,
            "decision": self.decision,
            "trials": self.trials,
            "failures": self.failures,
            "flake_rate": self.flake_rate,
            "llr": round(self.llr, 6),
            "trial_seeds": list(self.trial_seeds),
            "sprt": dict(self.sprt),
            "moved_to": self.moved_to,
            "recorded_at": self.recorded_at,
        }
        if self.problems:
            payload["problems"] = list(self.problems)
        return payload


@dataclass
class BurninReport:
    quarantine: str
    pinned: str
    records: List[BurninRecord] = field(default_factory=list)
    applied: bool = True

    def by_decision(self, decision: str) -> List[BurninRecord]:
        return [r for r in self.records if r.decision == decision]

    @property
    def promoted(self) -> List[BurninRecord]:
        return self.by_decision(Decision.PROMOTE.value)

    @property
    def demoted(self) -> List[BurninRecord]:
        return self.by_decision(Decision.DEMOTE.value)

    @property
    def undecided(self) -> List[BurninRecord]:
        return self.by_decision(Decision.UNDECIDED.value)

    @property
    def invalid(self) -> List[BurninRecord]:
        return self.by_decision("invalid")

    def to_json(self) -> str:
        return (
            json.dumps(
                {
                    "schema": LEDGER_SCHEMA,
                    "quarantine": self.quarantine,
                    "pinned": self.pinned,
                    "applied": self.applied,
                    "records": [r.to_dict() for r in self.records],
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )


def _default_executor(path: Path, trial_seed: int) -> bool:
    from repro.testing.replay import replay_file

    return replay_file(path, oracle_seed=trial_seed).ok


def file_sha256(path: Path) -> str:
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


def load_ledger(path: Path) -> dict:
    path = Path(path)
    if not path.is_file():
        return {"schema": LEDGER_SCHEMA, "records": []}
    payload = json.loads(path.read_text(encoding="utf8"))
    if payload.get("schema") != LEDGER_SCHEMA:
        raise ValueError(
            f"{path}: unsupported ledger schema "
            f"{payload.get('schema')!r}"
        )
    if not isinstance(payload.get("records"), list):
        raise ValueError(f"{path}: ledger has no records list")
    return payload


def append_ledger(path: Path, records: List[BurninRecord]) -> None:
    path = Path(path)
    ledger = load_ledger(path)
    ledger["records"].extend(r.to_dict() for r in records)
    path.write_text(
        json.dumps(ledger, indent=2, sort_keys=True) + "\n",
        encoding="utf8",
    )


def burn_in(
    quarantine_dir,
    pinned_dir,
    config: Optional[SprtConfig] = None,
    executor: Optional[Executor] = None,
    apply: bool = True,
    base_seed: int = 0,
    progress=None,
) -> BurninReport:
    """Burn in every ``*.pp`` under ``quarantine_dir``; see module
    docstring.  With ``apply=False`` nothing moves and no ledger is
    written — the report alone says what would happen."""
    from repro.testing.regressions import discover, validate_header

    quarantine = Path(quarantine_dir)
    pinned = Path(pinned_dir)
    config = config or SprtConfig()
    executor = executor or _default_executor
    progress = progress or (lambda message: None)
    report = BurninReport(
        quarantine=str(quarantine), pinned=str(pinned), applied=apply
    )

    for path in discover(quarantine):
        text = path.read_text(encoding="utf8")
        header_problems = validate_header(text, path.name)
        if header_problems:
            report.records.append(
                BurninRecord(
                    file=path.name,
                    sha256=file_sha256(path),
                    decision="invalid",
                    trials=0,
                    failures=0,
                    flake_rate=None,
                    llr=0.0,
                    trial_seeds=[],
                    sprt=_sprt_dict(config),
                    problems=header_problems,
                    recorded_at=_now(),
                )
            )
            progress(f"{path.name}: invalid header, skipped")
            continue

        test = SprtTest(config=config)
        seeds: List[int] = []
        while not test.done:
            trial_seed = base_seed + test.trials
            seeds.append(trial_seed)
            passed = executor(path, trial_seed)
            test.update(passed)
        record = BurninRecord(
            file=path.name,
            sha256=file_sha256(path),
            decision=test.decision.value,
            trials=test.trials,
            failures=test.failures,
            flake_rate=test.flake_rate,
            llr=test.llr,
            trial_seeds=seeds,
            sprt=_sprt_dict(config),
            recorded_at=_now(),
        )
        progress(
            f"{path.name}: {record.decision} after {record.trials} "
            f"trial(s), {record.failures} failure(s)"
        )
        if apply and test.decision is Decision.PROMOTE:
            destination = pinned / path.name
            if destination.exists():
                record.decision = "invalid"
                record.problems.append(
                    f"cannot promote: {destination} already exists"
                )
            else:
                pinned.mkdir(parents=True, exist_ok=True)
                shutil.move(str(path), str(destination))
                record.moved_to = str(destination)
                append_ledger(pinned / LEDGER_NAME, [record])
        elif apply and test.decision is Decision.DEMOTE:
            flaky_dir = quarantine / FLAKY_SUBDIR
            flaky_dir.mkdir(parents=True, exist_ok=True)
            destination = flaky_dir / path.name
            shutil.move(str(path), str(destination))
            record.moved_to = str(destination)
            append_ledger(pinned / LEDGER_NAME, [record])
        report.records.append(record)
    return report


def _sprt_dict(config: SprtConfig) -> dict:
    return {
        "p_stable": config.p_stable,
        "p_flaky": config.p_flaky,
        "alpha": config.alpha,
        "beta": config.beta,
        "max_trials": config.max_trials,
    }


def _now() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
