"""Evaluating Puppet manifests to resource catalogs (§3.1).

The evaluator performs the paper's compilation passes: user-defined
type substitution (defines expand to their constituent resources),
class inclusion with parameters and inheritance, stage assignment,
variable scoping and interpolation, conditionals, resource defaults,
virtual resources, and the deferred *global* passes — collectors and
overrides — that make separate compilation impossible (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import PuppetEvalError
from repro.puppet import ast_nodes as ast
from repro.puppet.catalog import (
    Catalog,
    CatalogResource,
    collector_matches,
)
from repro.puppet.scope import Scope, ScopeStack
from repro.puppet.values import (
    RefValue,
    Value,
    interpolate,
    to_display,
    truthy,
    values_equal,
)
from repro.resources.base import METAPARAMETERS, Resource

DEFAULT_FACTS: Dict[str, Value] = {
    "operatingsystem": "Ubuntu",
    "osfamily": "Debian",
    "operatingsystemrelease": "14.04",
    "lsbdistcodename": "trusty",
    "kernel": "Linux",
    "architecture": "amd64",
    "hostname": "node1",
    "fqdn": "node1.example.com",
    "ipaddress": "192.168.1.10",
    "processorcount": 4,
}

_EDGE_METAPARAMS = ("before", "require", "notify", "subscribe")


@dataclass
class _DeferredCollector:
    node: ast.Collector
    scope: Scope


@dataclass
class _DeferredChain:
    operands: Tuple[object, ...]  # RefValue lists or _DeferredCollector
    arrows: Tuple[str, ...]
    line: int = 0
    col: int = 0


class Evaluator:
    """One-shot evaluator: construct, call :meth:`evaluate`."""

    def __init__(
        self,
        facts: Optional[Dict[str, Value]] = None,
        node_name: str = "default",
    ):
        self.scopes = ScopeStack()
        self.catalog = Catalog()
        self.defines: Dict[str, ast.DefineDecl] = {}
        self.classes: Dict[str, ast.ClassDecl] = {}
        self.nodes: List[ast.NodeDecl] = []
        self.included: set[str] = set()
        self.defaults: Dict[str, Dict[str, Value]] = {}
        self.messages: List[str] = []
        self.node_name = node_name
        self._container_stack: List[RefValue] = []
        self._collectors: List[_DeferredCollector] = []
        self._chains: List[_DeferredChain] = []
        self._overrides: List[Tuple[RefValue, Dict[str, Value]]] = []
        self._realized: List[RefValue] = []
        merged_facts = dict(DEFAULT_FACTS)
        if facts:
            merged_facts.update(facts)
        for name, value in merged_facts.items():
            self.scopes.top.define(name, value)

    # -- entry point ----------------------------------------------------------

    def evaluate(self, manifest: ast.Manifest) -> Catalog:
        self._hoist(manifest.statements)
        self._exec_block(manifest.statements)
        self._exec_node_block()
        self._apply_collectors()
        self._apply_overrides()
        self._apply_realize()
        self._apply_chains()
        return self.catalog

    # -- hoisting ---------------------------------------------------------------

    def _hoist(self, statements: Sequence[ast.Statement]) -> None:
        for stmt in statements:
            if isinstance(stmt, ast.DefineDecl):
                if stmt.name in self.defines:
                    raise PuppetEvalError(
                        f"duplicate definition: define {stmt.name}"
                    )
                self.defines[stmt.name] = stmt
            elif isinstance(stmt, ast.ClassDecl):
                if stmt.name in self.classes:
                    raise PuppetEvalError(
                        f"duplicate definition: class {stmt.name}"
                    )
                self.classes[stmt.name] = stmt
                self._hoist(stmt.body)
            elif isinstance(stmt, ast.NodeDecl):
                self.nodes.append(stmt)
                self._hoist(stmt.body)

    # -- statement execution -------------------------------------------------------

    def _exec_block(self, statements: Sequence[ast.Statement]) -> None:
        for stmt in statements:
            self._exec(stmt)

    def _exec(self, stmt: ast.Statement) -> None:
        if isinstance(stmt, (ast.DefineDecl, ast.ClassDecl, ast.NodeDecl)):
            return  # hoisted
        if isinstance(stmt, ast.Assignment):
            self.scopes.current.define(stmt.name, self._eval(stmt.value))
            return
        if isinstance(stmt, ast.ResourceDecl):
            self._exec_resource_decl(stmt)
            return
        if isinstance(stmt, ast.ResourceDefault):
            bucket = self.defaults.setdefault(stmt.rtype.lower(), {})
            for attr in stmt.attributes:
                bucket[attr.name] = self._eval(attr.value)
            return
        if isinstance(stmt, ast.ResourceOverride):
            for title_expr in stmt.ref.titles:
                title = to_display(self._eval(title_expr))
                attrs = {
                    a.name: self._eval(a.value) for a in stmt.attributes
                }
                self._overrides.append(
                    (RefValue(stmt.ref.rtype.lower(), title), attrs)
                )
            return
        if isinstance(stmt, ast.IfStatement):
            for cond, body in stmt.branches:
                if cond is None or truthy(self._eval(cond)):
                    self._exec_block(body)
                    return
            return
        if isinstance(stmt, ast.CaseStatement):
            subject = self._eval(stmt.subject)
            default_body = None
            for matches, body in stmt.cases:
                for match in matches:
                    if match is None:
                        default_body = body
                        continue
                    if values_equal(subject, self._eval(match)):
                        self._exec_block(body)
                        return
            if default_body is not None:
                self._exec_block(default_body)
            return
        if isinstance(stmt, ast.IncludeStatement):
            for name in stmt.names:
                self._declare_class(name, {}, stmt.line, col=stmt.col)
                if stmt.require_edges and self._container_stack:
                    self.catalog.add_edge(
                        RefValue("class", name),
                        self._container_stack[-1],
                        line=stmt.line,
                        col=stmt.col,
                    )
            return
        if isinstance(stmt, ast.Collector):
            self._collectors.append(
                _DeferredCollector(stmt, self.scopes.current)
            )
            return
        if isinstance(stmt, ast.ChainStatement):
            self._exec_chain(stmt)
            return
        if isinstance(stmt, ast.ExpressionStatement):
            self._exec_call(stmt.expr)
            return
        raise PuppetEvalError(f"cannot execute statement: {stmt!r}")

    def _exec_node_block(self) -> None:
        chosen: Optional[ast.NodeDecl] = None
        default: Optional[ast.NodeDecl] = None
        for node in self.nodes:
            if self.node_name in node.names:
                chosen = node
                break
            if "default" in node.names:
                default = default or node
        block = chosen or default
        if block is not None:
            self._exec_block(block.body)

    # -- resources ---------------------------------------------------------------

    def _exec_resource_decl(self, stmt: ast.ResourceDecl) -> None:
        if stmt.exported:
            raise PuppetEvalError(
                "exported resources (@@) are not supported: they require "
                "a PuppetDB substrate that is out of scope"
            )
        rtype = stmt.rtype.lower()
        for body in stmt.bodies:
            title_value = self._eval(body.title)
            titles = (
                [to_display(t) for t in title_value]
                if isinstance(title_value, list)
                else [to_display(title_value)]
            )
            attrs = {}
            for attr in body.attributes:
                attrs[attr.name] = self._eval(attr.value)
            line = body.line or stmt.line
            col = body.col or stmt.col
            for title in titles:
                if rtype == "class":
                    self._declare_class(
                        title, dict(attrs), line, col=col
                    )
                elif rtype in self.defines:
                    self._instantiate_define(
                        rtype, title, dict(attrs), stmt.virtual,
                        line=line, col=col,
                    )
                else:
                    self._declare_primitive(
                        rtype, title, dict(attrs), stmt.virtual,
                        line=line, col=col,
                    )

    def _declare_primitive(
        self,
        rtype: str,
        title: str,
        attrs: Dict[str, Value],
        virtual: bool,
        line: int = 0,
        col: int = 0,
    ) -> None:
        for name, value in self.defaults.get(rtype, {}).items():
            attrs.setdefault(name, value)
        ref = RefValue(rtype, title)
        meta = self._extract_edges(ref, attrs, line=line, col=col)
        entry = CatalogResource(
            resource=Resource(rtype, title, attrs, line=line, col=col),
            containers=tuple(str(c) for c in self._container_stack),
            virtual=virtual,
            stage=meta.get("stage"),
        )
        self.catalog.add(entry)

    def _instantiate_define(
        self,
        rtype: str,
        title: str,
        attrs: Dict[str, Value],
        virtual: bool,
        line: int = 0,
        col: int = 0,
    ) -> None:
        define = self.defines[rtype]
        for name, value in self.defaults.get(rtype, {}).items():
            attrs.setdefault(name, value)
        ref = RefValue(rtype, title)
        self._extract_edges(ref, attrs, line=line, col=col)
        entry = CatalogResource(
            resource=Resource(rtype, title, dict(attrs), line=line, col=col),
            containers=tuple(str(c) for c in self._container_stack),
            virtual=virtual,
            is_define_instance=True,
        )
        self.catalog.add(entry)

        scope = Scope(f"{rtype}[{title}]", parent=self.scopes.top)
        self._bind_params(scope, define.params, attrs, f"define {rtype}")
        scope._bindings.setdefault("title", title)
        scope._bindings.setdefault("name", title)
        self._with_scope_and_container(scope, ref, define.body)

    def _declare_class(
        self, name: str, attrs: Dict[str, Value], line: int, col: int = 0
    ) -> None:
        decl = self.classes.get(name)
        if decl is None:
            raise PuppetEvalError(f"unknown class {name!r} (line {line})")
        if name in self.included:
            if attrs:
                raise PuppetEvalError(
                    f"duplicate declaration of class {name!r} with parameters"
                )
            return
        self.included.add(name)
        ref = RefValue("class", name)
        meta = self._extract_edges(ref, attrs, line=line, col=col)
        entry = CatalogResource(
            resource=Resource("class", name, dict(attrs), line=line, col=col),
            containers=tuple(str(c) for c in self._container_stack),
            stage=meta.get("stage"),
        )
        self.catalog.add(entry)

        scope = self.scopes.class_scope(name)
        if decl.parent:
            self._declare_class(decl.parent, {}, line)
            scope.parent = self.scopes.class_scope(decl.parent)
        self._bind_params(scope, decl.params, attrs, f"class {name}")
        self._with_scope_and_container(scope, ref, decl.body)

    def _bind_params(
        self,
        scope: Scope,
        params: Sequence[Tuple[str, Optional[ast.Expr]]],
        attrs: Dict[str, Value],
        what: str,
    ) -> None:
        param_names = {p for p, _ in params}
        for attr_name in attrs:
            if attr_name not in param_names and attr_name not in METAPARAMETERS:
                raise PuppetEvalError(
                    f"{what}: unknown parameter {attr_name!r}"
                )
        previous = self.scopes.current
        for param, default in params:
            if param in attrs:
                value = attrs[param]
            elif default is not None:
                self.scopes.current = scope
                try:
                    value = self._eval(default)
                finally:
                    self.scopes.current = previous
            else:
                raise PuppetEvalError(
                    f"{what}: missing required parameter ${param}"
                )
            if not scope.has_local(param):
                scope.define(param, value)

    def _with_scope_and_container(
        self, scope: Scope, ref: RefValue, body: Tuple[ast.Statement, ...]
    ) -> None:
        previous = self.scopes.current
        self.scopes.current = scope
        self._container_stack.append(ref)
        try:
            self._exec_block(body)
        finally:
            self._container_stack.pop()
            self.scopes.current = previous

    def _extract_edges(
        self,
        ref: RefValue,
        attrs: Dict[str, Value],
        line: int = 0,
        col: int = 0,
    ) -> Dict[str, Value]:
        """Convert before/require/notify/subscribe metaparameters into
        edges; returns remaining interesting metaparameters (stage)."""
        meta: Dict[str, Value] = {}
        for key in _EDGE_METAPARAMS:
            if key not in attrs:
                continue
            value = attrs.pop(key)
            for target in _iter_refs(value, key):
                if key in ("before", "notify"):
                    self.catalog.add_edge(
                        ref, target, kind="before", line=line, col=col
                    )
                else:
                    self.catalog.add_edge(
                        target, ref, kind="before", line=line, col=col
                    )
        if "stage" in attrs:
            meta["stage"] = to_display(attrs.pop("stage"))
        attrs.pop("alias", None)
        attrs.pop("tag", None)
        attrs.pop("noop", None)
        return meta

    # -- chains ------------------------------------------------------------------

    def _exec_chain(self, stmt: ast.ChainStatement) -> None:
        operands: List[object] = []
        for operand in stmt.operands:
            if isinstance(operand, ast.ResourceRefExpr):
                refs = [
                    RefValue(
                        operand.rtype.lower(),
                        to_display(self._eval(t)),
                    )
                    for t in operand.titles
                ]
                operands.append(refs)
            elif isinstance(operand, ast.Collector):
                deferred = _DeferredCollector(operand, self.scopes.current)
                self._collectors.append(deferred)
                operands.append(deferred)
            else:
                raise PuppetEvalError(
                    f"unsupported chain operand: {operand!r}"
                )
        self._chains.append(
            _DeferredChain(
                tuple(operands), stmt.arrows, line=stmt.line, col=stmt.col
            )
        )

    # -- deferred global passes -----------------------------------------------------

    def _matching_entries(
        self, deferred: _DeferredCollector
    ) -> List[CatalogResource]:
        rtype = deferred.node.rtype.lower()
        previous = self.scopes.current
        self.scopes.current = deferred.scope

        def evaluate(expr):
            return self._eval(expr)

        try:
            return [
                entry
                for entry in self.catalog.resources.values()
                if entry.resource.rtype == rtype
                and not entry.is_define_instance
                and collector_matches(entry, deferred.node.query, evaluate)
            ]
        finally:
            self.scopes.current = previous

    def _apply_collectors(self) -> None:
        for deferred in self._collectors:
            matches = self._matching_entries(deferred)
            previous = self.scopes.current
            self.scopes.current = deferred.scope
            try:
                overrides = {
                    a.name: self._eval(a.value)
                    for a in deferred.node.overrides
                }
            finally:
                self.scopes.current = previous
            for entry in matches:
                entry.virtual = False  # realize
                for name, value in overrides.items():
                    entry.resource.attributes[name] = value

    def _apply_overrides(self) -> None:
        for ref, attrs in self._overrides:
            entry = self.catalog.get(ref.rtype, ref.title)
            if entry is None:
                raise PuppetEvalError(
                    f"override of undeclared resource {ref}"
                )
            entry.resource.attributes.update(attrs)

    def _apply_realize(self) -> None:
        for ref in self._realized:
            entry = self.catalog.get(ref.rtype, ref.title)
            if entry is None:
                raise PuppetEvalError(f"realize of undeclared resource {ref}")
            entry.virtual = False

    def _apply_chains(self) -> None:
        for chain in self._chains:
            resolved: List[List[RefValue]] = []
            for operand in chain.operands:
                if isinstance(operand, _DeferredCollector):
                    resolved.append(
                        [
                            RefValue(e.resource.rtype, e.resource.title)
                            for e in self._matching_entries(operand)
                        ]
                    )
                else:
                    resolved.append(list(operand))  # type: ignore[arg-type]
            for left, right in zip(resolved, resolved[1:]):
                for src in left:
                    for dst in right:
                        self.catalog.add_edge(
                            src, dst, line=chain.line, col=chain.col
                        )

    # -- expressions --------------------------------------------------------------

    def _eval(self, expr: ast.Expr) -> Value:
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.InterpolatedString):
            return interpolate(expr.raw, self.scopes.resolve)
        if isinstance(expr, ast.VariableRef):
            return self.scopes.resolve(expr.name)
        if isinstance(expr, ast.ArrayLit):
            return [self._eval(item) for item in expr.items]
        if isinstance(expr, ast.HashLit):
            return {
                to_display(self._eval(k)): self._eval(v)
                for k, v in expr.entries
            }
        if isinstance(expr, ast.ResourceRefExpr):
            refs = [
                RefValue(expr.rtype.lower(), to_display(self._eval(t)))
                for t in expr.titles
            ]
            return refs[0] if len(refs) == 1 else refs
        if isinstance(expr, ast.UnaryOp):
            operand = self._eval(expr.operand)
            if expr.op == "!":
                return not truthy(operand)
            if expr.op == "-":
                return -_as_number(operand)
            raise PuppetEvalError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, ast.BinaryOp):
            return self._eval_binop(expr)
        if isinstance(expr, ast.Selector):
            subject = self._eval(expr.subject)
            default_value = None
            has_default = False
            for key, value in expr.cases:
                if key is None:
                    default_value = value
                    has_default = True
                    continue
                if values_equal(subject, self._eval(key)):
                    return self._eval(value)
            if has_default:
                return self._eval(default_value)
            raise PuppetEvalError(
                f"selector has no match for {subject!r} and no default"
            )
        if isinstance(expr, ast.FunctionCall):
            return self._call_function(expr)
        raise PuppetEvalError(f"cannot evaluate expression: {expr!r}")

    def _eval_binop(self, expr: ast.BinaryOp) -> Value:
        op = expr.op
        if op == "and":
            return truthy(self._eval(expr.left)) and truthy(
                self._eval(expr.right)
            )
        if op == "or":
            return truthy(self._eval(expr.left)) or truthy(
                self._eval(expr.right)
            )
        left = self._eval(expr.left)
        right = self._eval(expr.right)
        if op == "==":
            return values_equal(left, right)
        if op == "!=":
            return not values_equal(left, right)
        if op == "in":
            if isinstance(right, str):
                return isinstance(left, str) and left.lower() in right.lower()
            if isinstance(right, list):
                return any(values_equal(left, item) for item in right)
            if isinstance(right, dict):
                return isinstance(left, str) and left in right
            raise PuppetEvalError(f"'in' needs string/array/hash, got {right!r}")
        if op in ("<", "<=", ">", ">="):
            ln, rn = _as_number(left), _as_number(right)
            return {
                "<": ln < rn,
                "<=": ln <= rn,
                ">": ln > rn,
                ">=": ln >= rn,
            }[op]
        if op in ("+", "-", "*", "/", "%"):
            ln, rn = _as_number(left), _as_number(right)
            if op == "+":
                return ln + rn
            if op == "-":
                return ln - rn
            if op == "*":
                return ln * rn
            if op == "/":
                if rn == 0:
                    raise PuppetEvalError("division by zero")
                result = ln / rn
                return int(result) if result == int(result) else result
            if rn == 0:
                raise PuppetEvalError("modulo by zero")
            return int(ln) % int(rn)
        raise PuppetEvalError(f"unknown operator {op!r}")

    # -- functions ----------------------------------------------------------------

    def _call_function(self, call: ast.FunctionCall) -> Value:
        name = call.name
        args = [self._eval(a) for a in call.args]
        if name == "defined":
            return all(self._is_defined(a) for a in args)
        if name == "split":
            _expect_args(name, args, 2)
            return str(args[0]).split(str(args[1]))
        if name == "join":
            _expect_args(name, args, 2)
            if not isinstance(args[0], list):
                raise PuppetEvalError("join() expects an array")
            return str(args[1]).join(to_display(v) for v in args[0])
        if name == "size" or name == "length":
            _expect_args(name, args, 1)
            if isinstance(args[0], (list, dict, str)):
                return len(args[0])
            raise PuppetEvalError(f"{name}() expects a collection")
        if name == "template" or name == "inline_template":
            raise PuppetEvalError(
                f"{name}() is not supported: templates execute embedded "
                "Ruby, which has no FS model (cf. paper §8 on exec)"
            )
        raise PuppetEvalError(f"unknown function {name!r}")

    def _exec_call(self, call: ast.FunctionCall) -> None:
        name = call.name
        if name in ("notice", "info", "warning", "debug"):
            args = [self._eval(a) for a in call.args]
            self.messages.append(
                f"{name}: " + " ".join(to_display(a) for a in args)
            )
            return
        if name == "fail":
            args = [self._eval(a) for a in call.args]
            raise PuppetEvalError(
                "fail(): " + " ".join(to_display(a) for a in args)
            )
        if name == "realize":
            for arg in call.args:
                value = self._eval(arg)
                for ref in _iter_refs(value, "realize"):
                    self._realized.append(ref)
            return
        # Expression-position functions used as statements.
        self._call_function(call)

    def _is_defined(self, arg: Value) -> bool:
        if isinstance(arg, RefValue):
            if arg.rtype == "class":
                return arg.title in self.included
            return self.catalog.has(arg.rtype, arg.title)
        if isinstance(arg, str):
            return (
                arg in self.classes
                or arg in self.defines
                or arg in self.included
            )
        raise PuppetEvalError(f"defined() cannot handle {arg!r}")


def _iter_refs(value: Value, what: str) -> List[RefValue]:
    if isinstance(value, RefValue):
        return [value]
    if isinstance(value, list):
        out = []
        for item in value:
            out.extend(_iter_refs(item, what))
        return out
    raise PuppetEvalError(
        f"{what} expects resource references, got {value!r}"
    )


def _as_number(value: Value) -> float:
    if isinstance(value, bool):
        raise PuppetEvalError("cannot use a boolean as a number")
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, str):
        try:
            return float(value) if "." in value else int(value)
        except ValueError:
            raise PuppetEvalError(f"not a number: {value!r}") from None
    raise PuppetEvalError(f"not a number: {value!r}")


def _expect_args(name: str, args: list, count: int) -> None:
    if len(args) != count:
        raise PuppetEvalError(
            f"{name}() expects {count} arguments, got {len(args)}"
        )


def evaluate_manifest(
    source: str,
    facts: Optional[Dict[str, Value]] = None,
    node_name: str = "default",
) -> Catalog:
    """Parse and evaluate manifest source into a catalog."""
    from repro.puppet.parser import parse_manifest

    manifest = parse_manifest(source)
    return Evaluator(facts=facts, node_name=node_name).evaluate(manifest)
