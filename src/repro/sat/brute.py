"""Brute-force reference SAT solver (testing oracle only).

Enumerates all assignments; exponential, so only usable for tiny
instances — exactly what the property tests need to validate the CDCL
solver against.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Optional, Sequence


def brute_force_solve(
    clauses: Sequence[Sequence[int]], num_vars: int
) -> Optional[Dict[int, bool]]:
    """Return a satisfying assignment, or None if UNSAT."""
    if num_vars > 22:
        raise ValueError("brute force limited to 22 variables")
    for bits in product([False, True], repeat=num_vars):
        assignment = {i + 1: bits[i] for i in range(num_vars)}
        if all(_clause_sat(clause, assignment) for clause in clauses):
            return assignment
    return None


def count_models(clauses: Sequence[Sequence[int]], num_vars: int) -> int:
    """Number of satisfying assignments (testing aid)."""
    if num_vars > 22:
        raise ValueError("brute force limited to 22 variables")
    total = 0
    for bits in product([False, True], repeat=num_vars):
        assignment = {i + 1: bits[i] for i in range(num_vars)}
        if all(_clause_sat(clause, assignment) for clause in clauses):
            total += 1
    return total


def _clause_sat(clause: Sequence[int], assignment: Dict[int, bool]) -> bool:
    return any(
        assignment[abs(lit)] == (lit > 0) for lit in clause
    )


def check_assignment(
    clauses: Sequence[Sequence[int]], assignment: Dict[int, bool]
) -> bool:
    """Verify that an assignment satisfies every clause."""
    return all(_clause_sat(clause, assignment) for clause in clauses)
