"""Tests for the static audit tooling (§9 extension)."""

import networkx as nx
import pytest

from repro.analysis.audit import audit_writes, prove_never_deleted
from repro.fs import Path, creat, mkdir, rm, seq, ite, file_, ID
from repro.resources import Resource, ResourceCompiler


@pytest.fixture(scope="module")
def compiler():
    return ResourceCompiler()


class TestWriteAudit:
    def test_clean_manifest(self, compiler):
        programs = {
            "f": compiler.compile(
                Resource("file", "/srv/app.conf", {"content": "x"})
            )
        }
        report = audit_writes(programs, [Path.of("/etc")])
        assert report.clean
        assert "clean" in report.render()

    def test_write_into_protected_tree_flagged(self, compiler):
        programs = {
            "f": compiler.compile(
                Resource("file", "/etc/shadow", {"content": "boom"})
            )
        }
        report = audit_writes(programs, [Path.of("/etc")])
        assert not report.clean
        finding = report.findings[0]
        assert finding.resource == "f"
        assert str(finding.path) == "/etc/shadow"
        assert "write /etc/shadow" in report.render()

    def test_allowlist(self, compiler):
        programs = {
            "f": compiler.compile(
                Resource("file", "/etc/motd", {"content": "hi"})
            )
        }
        report = audit_writes(
            programs, [Path.of("/etc")], allow=["f"]
        )
        assert report.clean

    def test_package_flagged_only_for_protected_paths(self, compiler):
        programs = {
            "pkg": compiler.compile(Resource("package", "vim", {}))
        }
        report = audit_writes(programs, [Path.of("/usr/share/vim")])
        paths = {str(f.path) for f in report.findings}
        assert "/usr/share/vim/vimrc" in paths
        assert all(p.startswith("/usr/share/vim") for p in paths)

    def test_multiple_resources(self, compiler):
        programs = {
            "good": compiler.compile(
                Resource("file", "/srv/x", {"content": "a"})
            ),
            "bad1": compiler.compile(
                Resource("file", "/boot/grub.cfg", {"content": "b"})
            ),
            "bad2": compiler.compile(
                Resource("file", "/boot/initrd", {"ensure": "absent"})
            ),
        }
        report = audit_writes(programs, [Path.of("/boot")])
        assert set(report.by_resource()) == {"bad1", "bad2"}


class TestNeverDeleted:
    def _graph(self, programs, edges=()):
        g = nx.DiGraph()
        g.add_nodes_from(programs)
        g.add_edges_from(edges)
        return g

    def test_holds_for_untouched_path(self):
        programs = {"a": creat("/other", "x")}
        g = self._graph(programs)
        holds, _ = prove_never_deleted(g, programs, Path.of("/precious"))
        assert holds

    def test_violated_by_rm(self):
        p = Path.of("/precious")
        programs = {"a": ite(file_(p), rm(p), ID)}
        g = self._graph(programs)
        holds, witness = prove_never_deleted(g, programs, p)
        assert not holds
        assert witness is not None
        assert witness.is_file(p)

    def test_holds_for_overwrite(self):
        """Replacing content keeps the path existing."""
        p = Path.of("/precious")
        programs = {"a": ite(file_(p), seq(rm(p), creat(p, "new")), ID)}
        g = self._graph(programs)
        holds, _ = prove_never_deleted(g, programs, p)
        assert holds

    def test_fig3d_deletes_source(self):
        from repro.resources import Resource, ResourceCompiler

        compiler = ResourceCompiler()
        programs = {
            "copy": compiler.compile(
                Resource("file", "/dst", {"source": "/src"})
            ),
            "del": compiler.compile(
                Resource("file", "/src", {"ensure": "absent"})
            ),
        }
        g = self._graph(programs, edges=[("copy", "del")])
        holds, _ = prove_never_deleted(g, programs, Path.of("/src"))
        assert not holds
