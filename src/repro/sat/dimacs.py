"""DIMACS CNF reading and writing.

Not required by the verification pipeline itself, but standard solver
plumbing: lets the SAT substrate be exercised against external
instances and makes debugging encodings practical (dump a query, read
it back, inspect)."""

from __future__ import annotations

from typing import List, Sequence, TextIO, Tuple

from repro.errors import SolverError


def write_dimacs(
    out: TextIO,
    clauses: Sequence[Sequence[int]],
    num_vars: int,
    comments: Sequence[str] = (),
) -> None:
    for comment in comments:
        out.write(f"c {comment}\n")
    out.write(f"p cnf {num_vars} {len(clauses)}\n")
    for clause in clauses:
        out.write(" ".join(str(lit) for lit in clause) + " 0\n")


def read_dimacs(inp: TextIO) -> Tuple[List[List[int]], int]:
    """Parse a DIMACS file; returns (clauses, num_vars)."""
    clauses: List[List[int]] = []
    num_vars = 0
    declared_clauses = None
    current: List[int] = []
    for raw in inp:
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise SolverError(f"bad DIMACS header: {line!r}")
            num_vars = int(parts[2])
            declared_clauses = int(parts[3])
            continue
        for token in line.split():
            lit = int(token)
            if lit == 0:
                clauses.append(current)
                current = []
            else:
                current.append(lit)
                num_vars = max(num_vars, abs(lit))
    if current:
        clauses.append(current)
    if declared_clauses is not None and declared_clauses != len(clauses):
        # Tolerate the mismatch (many generators get this wrong) but
        # normalize num_vars to cover every literal seen.
        pass
    return clauses, num_vars


def dimacs_to_string(
    clauses: Sequence[Sequence[int]], num_vars: int
) -> str:
    import io

    buf = io.StringIO()
    write_dimacs(buf, clauses, num_vars)
    return buf.getvalue()


def write_solver(
    out: TextIO,
    solver,
    include_learned: bool = False,
    comments: Sequence[str] = (),
) -> None:
    """Dump a :class:`repro.sat.solver.Solver` instance's current
    clause database — root-level units, problem clauses and optionally
    learned clauses — as DIMACS, so any solver state (e.g. after
    preprocessing, or mid-way through an incremental query sequence)
    can be re-read with :func:`read_dimacs` for offline debugging."""
    write_dimacs(
        out,
        solver.clause_database(include_learned=include_learned),
        solver.num_vars,
        comments=comments,
    )


def solver_to_string(solver, include_learned: bool = False) -> str:
    import io

    buf = io.StringIO()
    write_solver(buf, solver, include_learned=include_learned)
    return buf.getvalue()
