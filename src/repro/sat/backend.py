"""The pluggable solver-backend surface.

Everything above the raw CDCL loop talks to the SAT substrate through
the :class:`SolverBackend` protocol: the incremental query façade
(:class:`repro.smt.query.IncrementalQuery`), the determinacy analysis
(:mod:`repro.analysis.determinism`) and the DIMACS plumbing
(:mod:`repro.sat.dimacs`) only ever use this handful of methods.  That
makes the solver swappable:

* the default backend is the pure-Python CDCL loop
  (:class:`repro.sat.solver.Solver`), always available, always the
  reference semantics;
* :class:`repro.sat.portfolio.PortfolioBackend` races several
  :class:`SolverConfig` variations with deterministic first-answer-wins
  tie-breaking;
* :class:`repro.sat.external.ExternalBackend` shells out to a
  SAT-competition solver (kissat/cadical/minisat) found on PATH via
  the DIMACS writer.

A backend choice is spelled as a **spec string** (what the CLI's
``--solver`` flag takes): ``"cdcl"``, ``"portfolio"`` /
``"portfolio:K"``, or ``"external:auto"`` / ``"external:<name-or-path>"``.
:func:`parse_backend_spec` turns a spec into a zero-argument factory,
so the spec itself stays a plain string — picklable, hashable into the
verdict-cache key, and storable in :class:`DeterminismOptions`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

try:  # Protocol is 3.8+; keep a runtime-checkable structural type.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - ancient interpreters only
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


from repro.sat.solver import SolveResult


@runtime_checkable
class SolverBackend(Protocol):
    """What the query layer needs from a solver.

    :class:`repro.sat.solver.Solver` satisfies this natively; other
    backends (portfolio, external) implement the same surface.  The
    contract mirrors MiniSat's incremental interface:

    * the clause database persists across :meth:`solve` calls;
    * ``assumptions`` are per-call temporary units;
    * an exhausted ``max_conflicts`` budget raises
      :class:`repro.errors.SolverError` with the backend left reusable;
    * on UNSAT under assumptions, ``SolveResult.core`` holds the
      implicated assumption literals.
    """

    num_vars: int

    def ensure_vars(self, n: int) -> None: ...

    def add_clause(self, lits: Sequence[int]) -> None: ...

    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
    ) -> SolveResult: ...

    def root_units(self) -> List[int]: ...

    def clause_database(
        self, include_learned: bool = False
    ) -> List[List[int]]: ...


#: A zero-argument callable producing a fresh backend; what
#: ``IncrementalQuery(backend=...)`` and ``Query(backend=...)`` accept.
BackendFactory = Callable[[], SolverBackend]


@dataclass(frozen=True)
class SolverConfig:
    """One point in the CDCL configuration space.

    The default instance reproduces the historical solver behavior
    bit for bit (Luby restarts with unit 64, activity ties broken by
    variable index, saved phases defaulting to False, EVSIDS decay
    0.95) — the reference member of every portfolio.  Frozen so
    configs can be dict keys, compared, and pickled to pool workers.
    """

    name: str = "default"
    #: ``"luby"`` or ``"geometric"``.
    restart_policy: str = "luby"
    #: Conflicts per restart unit (Luby multiplier / geometric base).
    restart_unit: int = 64
    #: Growth factor of the geometric policy (ignored under Luby).
    restart_growth: float = 1.5
    #: Branching seed.  0 means none: activities start at exactly 0.0
    #: and ties break by variable index, as always.  A nonzero seed
    #: adds a tiny deterministic per-variable jitter to the initial
    #: activity, diversifying which variable wins early ties.
    seed: int = 0
    #: Initial saved phase of every variable.
    phase_default: bool = False
    #: EVSIDS activity decay.
    decay: float = 0.95
    #: Preprocessing gate for *stateless portfolio attempts*: True
    #: runs the SatELite passes on the clause snapshot before the
    #: attempt, False skips them, None inherits the caller's choice.
    #: (The incremental reference member never re-preprocesses — the
    #: query layer already did.)
    preprocess: Optional[bool] = None

    def __post_init__(self):
        if self.restart_policy not in ("luby", "geometric"):
            raise ValueError(
                f"unknown restart policy {self.restart_policy!r} "
                "(expected 'luby' or 'geometric')"
            )
        if self.restart_unit < 1:
            raise ValueError("restart_unit must be >= 1")
        if not (0.0 < self.decay < 1.0):
            raise ValueError("decay must be in (0, 1)")


#: The reference configuration (index 0 of every portfolio).
DEFAULT_CONFIG = SolverConfig()

#: The built-in diversification ladder.  Index 0 is always the
#: reference config; later members vary restart policy, phase
#: polarity, branching seed and preprocessing — the classic portfolio
#: axes.  ``default_portfolio(k)`` takes the first k.
_PORTFOLIO_LADDER: Tuple[SolverConfig, ...] = (
    DEFAULT_CONFIG,
    SolverConfig(
        name="agile",
        restart_policy="geometric",
        restart_unit=32,
        restart_growth=1.3,
        phase_default=True,
        seed=1,
    ),
    SolverConfig(
        name="jitter",
        seed=2,
        decay=0.92,
    ),
    SolverConfig(
        name="heavy",
        restart_policy="geometric",
        restart_unit=256,
        restart_growth=2.0,
        seed=3,
        preprocess=True,
    ),
    SolverConfig(
        name="polar",
        phase_default=True,
        seed=4,
        restart_unit=128,
    ),
    SolverConfig(
        name="focused",
        restart_policy="geometric",
        restart_unit=16,
        restart_growth=1.1,
        seed=5,
        decay=0.90,
    ),
)


def default_portfolio(k: int) -> Tuple[SolverConfig, ...]:
    """The first ``k`` members of the built-in diversification ladder
    (member 0 is always the reference :data:`DEFAULT_CONFIG`).  Beyond
    the ladder, extra members are seed variations of the reference."""
    if k < 1:
        raise ValueError(f"portfolio size must be >= 1, got {k}")
    members = list(_PORTFOLIO_LADDER[:k])
    index = len(members)
    while len(members) < k:
        members.append(
            replace(
                DEFAULT_CONFIG,
                name=f"seed{index}",
                seed=10 + index,
            )
        )
        index += 1
    return tuple(members)


def make_solver(config: Optional[SolverConfig] = None) -> "SolverBackend":
    """A fresh CDCL solver under ``config`` (default: the reference)."""
    from repro.sat.solver import Solver

    return Solver(config=config)


#: K for a bare ``"portfolio"`` spec when no explicit size was given.
DEFAULT_PORTFOLIO_K = 4


def _effective_portfolio_k(portfolio: Optional[int]) -> int:
    """The K a bare ``"portfolio"`` spec resolves to.  A ``portfolio``
    argument of None *or 1* means unset — 1 is the CLI's no-racing
    default, and an explicit portfolio spec with no racing is spelled
    ``portfolio:1``.  :func:`parse_backend_spec` and
    :func:`backend_label` share this rule so the label always names
    the portfolio that actually runs."""
    if portfolio is not None and portfolio > 1:
        return portfolio
    return DEFAULT_PORTFOLIO_K


def parse_backend_spec(
    spec: str,
    workers: int = 1,
    portfolio: Optional[int] = None,
) -> BackendFactory:
    """Turn a ``--solver`` spec string into a backend factory.

    Accepted specs:

    * ``"cdcl"`` — the pure-Python CDCL reference solver (with
      ``portfolio`` > 1, a :class:`PortfolioBackend` racing that many
      configurations);
    * ``"portfolio"`` or ``"portfolio:K"`` — explicit portfolio racing
      (K defaults to 4, or to the ``portfolio`` argument when that
      asks for racing, i.e. is > 1; ``portfolio:1`` spells a
      single-member portfolio explicitly);
    * ``"external:auto"`` — the first SAT-competition solver found on
      PATH (kissat, cadical, minisat), raising ``ValueError`` when
      none is installed;
    * ``"external:<name-or-path>"`` — a specific external solver.

    ``workers`` is the process-pool width for portfolio helper
    attempts (1 = in-process).  Raises ``ValueError`` on a malformed
    spec, so CLI validation can exit 2 with the message.
    """
    if workers < 1:
        raise ValueError(f"solver workers must be >= 1, got {workers}")
    if portfolio is not None and portfolio < 1:
        raise ValueError(f"portfolio size must be >= 1, got {portfolio}")
    head, _, arg = spec.partition(":")
    if head == "cdcl":
        if arg:
            raise ValueError(f"'cdcl' takes no argument (got {spec!r})")
        k = portfolio or 1
        if k > 1:
            return _portfolio_factory(k, workers)
        return make_solver
    if head == "portfolio":
        if arg:
            try:
                k = int(arg)
            except ValueError:
                raise ValueError(
                    f"bad portfolio size in {spec!r} (expected "
                    "'portfolio:K' with integer K)"
                ) from None
        else:
            k = _effective_portfolio_k(portfolio)
        if k < 1:
            raise ValueError(f"portfolio size must be >= 1, got {k}")
        return _portfolio_factory(k, workers)
    if head == "external":
        from repro.sat.external import ExternalBackend, find_external_solver

        if not arg or arg == "auto":
            path = find_external_solver()
            if path is None:
                raise ValueError(
                    "no external SAT solver found on PATH (looked for "
                    "kissat, cadical, minisat); install one or use "
                    "--solver cdcl"
                )
        else:
            path = find_external_solver(arg)
            if path is None:
                raise ValueError(f"external solver not found: {arg!r}")
        return lambda: ExternalBackend(path)
    raise ValueError(
        f"unknown solver spec {spec!r} (expected 'cdcl', "
        "'portfolio[:K]' or 'external:auto|<name-or-path>')"
    )


def _portfolio_factory(k: int, workers: int) -> BackendFactory:
    from repro.sat.portfolio import PortfolioBackend

    configs = default_portfolio(k)
    return lambda: PortfolioBackend(configs, workers=workers)


def backend_label(
    solver: str = "cdcl",
    portfolio: int = 1,
    solver_workers: int = 1,
) -> str:
    """The human/JSON-facing name of a backend choice — what the
    ``verify-batch`` row's ``solver_backend`` field and the bench
    figures report.  Examples: ``"cdcl"``, ``"portfolio:4"``,
    ``"portfolio:2+cube:4"``, ``"external:kissat"``."""
    head, _, arg = solver.partition(":")
    if head == "portfolio" and not arg:
        label = f"portfolio:{_effective_portfolio_k(portfolio)}"
    elif head == "cdcl" and portfolio > 1:
        label = f"portfolio:{portfolio}"
    else:
        label = solver
    if solver_workers > 1:
        label += f"+cube:{solver_workers}"
    return label


def solver_counters(backend: SolverBackend) -> Dict[str, int]:
    """Lifetime effort counters of a backend, zero-filled for backends
    that do not track one (e.g. external processes)."""
    return {
        name: int(getattr(backend, name, 0))
        for name in ("conflicts", "decisions", "propagations", "restarts")
    }
