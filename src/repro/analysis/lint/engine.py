"""The lint engine: staged analysis, rule registry, orchestration.

``lint_source`` pushes one manifest through the same frontend as the
verification pipeline — parse, evaluate, graph construction, resource
compilation — but *stops short of the SAT stack*: every rule is either
purely syntactic, footprint-based (§4.3 machinery), or confirmed by a
bounded number of concrete evaluations of the reference semantics
(Fig. 5).  A lint run issues **zero SAT queries** by construction.

Stages degrade gracefully: a parse error yields exactly one REH001
diagnostic; an evaluation error one REH002; dangling references and
cycles stop the graph-dependent rules but never mask each other.

Rules live in :mod:`repro.analysis.lint.rules` and register themselves
with :func:`register_rule` plus one of the two checker decorators:

* ``@catalog_checker`` — runs once the catalog exists (before graph
  construction, so it still fires when the graph cannot be built);
* ``@graph_checker`` — runs with the compiled resource graph and FS
  programs (footprints, races, filesystem hygiene).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import networkx as nx

from repro.analysis.commutativity import Footprint, footprint
from repro.analysis.lint.diagnostics import (
    Diagnostic,
    LintReport,
    Related,
    Severity,
)
from repro.errors import (
    DependencyCycleError,
    PuppetEvalError,
    PuppetSyntaxError,
    ReproError,
    ResourceModelError,
)
from repro.fs import syntax as fx
from repro.fs.paths import Path
from repro.puppet.catalog import Catalog
from repro.puppet.evaluator import Evaluator
from repro.puppet.parser import parse_manifest
from repro.resources.compiler import ModelContext, ResourceCompiler


# -- rule registry -------------------------------------------------------------


@dataclass(frozen=True)
class Rule:
    """Stable metadata for one lint rule (the SARIF rule table)."""

    id: str  # "REH005" — stable forever, never renumbered
    name: str  # "definite-race"
    severity: Severity
    summary: str  # one line, shown in ``--format text`` headers
    description: str = ""  # full help text (SARIF fullDescription)


RULES: Dict[str, Rule] = {}

CheckerFn = Callable[["LintContext"], Iterable[Diagnostic]]
CATALOG_CHECKERS: List[CheckerFn] = []
GRAPH_CHECKERS: List[CheckerFn] = []


def register_rule(rule: Rule) -> Rule:
    if rule.id in RULES:
        raise ValueError(f"duplicate lint rule id {rule.id}")
    RULES[rule.id] = rule
    return rule


def catalog_checker(fn: CheckerFn) -> CheckerFn:
    CATALOG_CHECKERS.append(fn)
    return fn


def graph_checker(fn: CheckerFn) -> CheckerFn:
    GRAPH_CHECKERS.append(fn)
    return fn


# -- options and context -------------------------------------------------------


@dataclass(frozen=True)
class LintOptions:
    """Knobs of one lint run."""

    #: Confirm race candidates by concretely evaluating two complete
    #: topological orders (the self-validation that makes REH005
    #: definite).  Off, every candidate is a REH006 warning.
    confirm_races: bool = True
    #: Initial states sampled per candidate pair during confirmation.
    max_confirm_states: int = 12
    #: Total concrete-evaluation budget for confirmation per manifest;
    #: exhaustion degrades candidates to warnings, never to errors.
    max_confirm_evaluations: int = 20_000
    #: Protected subtrees for the REH010 write audit (off when empty).
    protected: Tuple[Path, ...] = ()
    #: Rule ids to suppress entirely.
    disabled: Tuple[str, ...] = ()

    def enabled(self, rule_id: str) -> bool:
        return rule_id not in self.disabled


@dataclass
class LintContext:
    """Everything a checker may consult.  Graph checkers see ``graph``
    and ``programs``; catalog checkers must not assume either."""

    name: str
    options: LintOptions
    report: LintReport
    catalog: Optional[Catalog] = None
    graph: Optional["nx.DiGraph"] = None
    #: node -> compiled FS program (only successfully compiled ones).
    programs: Dict[object, fx.Expr] = field(default_factory=dict)
    #: node -> compile-error message for resources without a program.
    failed: Dict[object, str] = field(default_factory=dict)
    _footprints: Optional[Dict[object, Footprint]] = None

    @property
    def footprints(self) -> Dict[object, Footprint]:
        if self._footprints is None:
            self._footprints = {
                n: footprint(e) for n, e in self.programs.items()
            }
        return self._footprints

    def span_of(self, node: object) -> Tuple[int, int]:
        """(line, col) of the resource behind a graph node."""
        if self.graph is not None and node in self.graph.nodes:
            entry = self.graph.nodes[node].get("entry")
            if entry is not None:
                return entry.resource.line, entry.resource.col
        return 0, 0

    def diag(
        self,
        rule_id: str,
        message: str,
        line: int = 0,
        col: int = 0,
        resource: Optional[str] = None,
        related: Tuple[Related, ...] = (),
        paths: Tuple[str, ...] = (),
        severity: Optional[Severity] = None,
    ) -> Diagnostic:
        """Build a diagnostic for a registered rule.  ``severity``
        overrides the rule default — only downward (a rule may demote
        a finding it gathered concrete evidence against, never
        escalate past its registered level)."""
        rule = RULES[rule_id]
        if severity is not None and severity > rule.severity:
            raise ValueError(
                f"{rule_id}: cannot escalate above {rule.severity}"
            )
        return Diagnostic(
            rule_id=rule.id,
            rule_name=rule.name,
            severity=severity if severity is not None else rule.severity,
            message=message,
            file=self.name,
            line=line,
            col=col,
            resource=resource,
            related=related,
            paths=paths,
        )

    def emit(self, diagnostic: Diagnostic) -> None:
        if self.options.enabled(diagnostic.rule_id):
            self.report.add(diagnostic)


# -- entry points --------------------------------------------------------------


def lint_source(
    source: str,
    name: str = "<manifest>",
    options: Optional[LintOptions] = None,
    context: Optional[ModelContext] = None,
    facts: Optional[dict] = None,
    node_name: str = "default",
) -> LintReport:
    """Lint one manifest source; see the module docstring for staging."""
    import repro.analysis.lint.rules  # noqa: F401  (registers rules)

    options = options or LintOptions()
    report = LintReport(name=name)
    start = time.perf_counter()
    ctx = LintContext(name=name, options=options, report=report)

    # Stage 1: parse.
    try:
        manifest = parse_manifest(source)
    except PuppetSyntaxError as exc:
        ctx.emit(
            ctx.diag(
                "REH001",
                str(exc),
                line=getattr(exc, "line", 0),
                col=getattr(exc, "column", 0),
            )
        )
        report.stats.seconds = time.perf_counter() - start
        return report

    # Stage 2: evaluate to a catalog.
    try:
        evaluator = Evaluator(facts=facts, node_name=node_name)
        catalog = evaluator.evaluate(manifest)
    except PuppetEvalError as exc:
        ctx.emit(ctx.diag("REH002", str(exc)))
        report.stats.seconds = time.perf_counter() - start
        return report
    ctx.catalog = catalog
    report.stats.resources = len(catalog.primitive_resources())

    # Stage 3: catalog rules (duplicate claims, dangling references).
    for checker in CATALOG_CHECKERS:
        for diagnostic in checker(ctx):
            ctx.emit(diagnostic)

    # Stage 4: the resource graph.  Dangling references were already
    # reported with spans by the catalog stage; a cycle becomes REH008.
    dangling_reported = any(
        d.rule_id == "REH007" for d in report.diagnostics
    )
    graph = None
    try:
        graph = catalog.build_graph()
    except DependencyCycleError as exc:
        members = [str(n) for n in exc.cycle]
        line, col = _cycle_span(catalog, members)
        ctx.emit(
            ctx.diag(
                "REH008",
                "dependency cycle: " + " -> ".join(members + members[:1]),
                line=line,
                col=col,
                resource=members[0] if members else None,
            )
        )
    except PuppetEvalError as exc:
        if not dangling_reported:
            ctx.emit(ctx.diag("REH002", str(exc)))
    if graph is None:
        report.stats.seconds = time.perf_counter() - start
        return report
    ctx.graph = graph

    # Stage 5: compile each resource to its FS program.
    compiler = ResourceCompiler(context or ModelContext())
    for node, data in graph.nodes(data=True):
        resource = data["entry"].resource
        try:
            ctx.programs[node] = compiler.compile(resource)
        except ResourceModelError as exc:
            ctx.failed[node] = str(exc)
            ctx.emit(
                ctx.diag(
                    "REH003",
                    f"{node}: {exc}",
                    line=resource.line,
                    col=resource.col,
                    resource=str(node),
                )
            )

    # Stage 6: graph rules (races, filesystem hygiene, idempotence).
    for checker in GRAPH_CHECKERS:
        for diagnostic in checker(ctx):
            ctx.emit(diagnostic)

    report.stats.seconds = time.perf_counter() - start
    return report


def lint_graph(
    graph: "nx.DiGraph",
    programs: Dict[object, fx.Expr],
    name: str = "<graph>",
    options: Optional[LintOptions] = None,
) -> LintReport:
    """Run only the graph-stage rules on an already-compiled pair —
    the entry point the differential fuzz harness uses so lint sees
    the exact graph the pipeline and the oracle see."""
    import repro.analysis.lint.rules  # noqa: F401

    options = options or LintOptions()
    report = LintReport(name=name)
    start = time.perf_counter()
    ctx = LintContext(
        name=name,
        options=options,
        report=report,
        graph=graph,
        programs=dict(programs),
    )
    report.stats.resources = graph.number_of_nodes()
    for checker in GRAPH_CHECKERS:
        for diagnostic in checker(ctx):
            ctx.emit(diagnostic)
    report.stats.seconds = time.perf_counter() - start
    return report


def _cycle_span(catalog: Catalog, members: List[str]) -> Tuple[int, int]:
    """Best-effort span for a cycle report: the first member with one."""
    by_ref = {
        str(entry.ref): entry for entry in catalog.resources.values()
    }
    for member in members:
        entry = by_ref.get(member)
        if entry is not None and entry.resource.line:
            return entry.resource.line, entry.resource.col
    return 0, 0
