# dnsmasq — combined DNS/DHCP server (§6 benchmark "dns").
#
# SEEDED BUG: the drop-in configuration fragment lives in
# /etc/dnsmasq.d/, a directory that only exists once Package['dnsmasq']
# has been installed, but the fragment declares no dependency on the
# package.  If Puppet schedules the fragment first the run fails;
# schedule the package first and it succeeds.

class dnsmasq {
  $domain     = 'example.lan'
  $dhcp_start = '192.168.1.50'
  $dhcp_end   = '192.168.1.150'

  package { 'dnsmasq':
    ensure => installed,
  }

  # BUG: missing require => Package['dnsmasq'] (see dns-fixed.pp).
  file { '/etc/dnsmasq.d/local.conf':
    ensure  => file,
    content => "domain=${domain}\nexpand-hosts\ndhcp-range=${dhcp_start},${dhcp_end},12h\n",
  }

  service { 'dnsmasq':
    ensure    => running,
    enable    => true,
    subscribe => File['/etc/dnsmasq.d/local.conf'],
  }
}

include dnsmasq
