"""Resource models: the compiler C : R → FS (§3.3) and the package
database substrate."""

from repro.resources.base import (
    METAPARAMETERS,
    Resource,
    ResourceRef,
    ensure_directory_tree,
    guarded_mkdir,
)
from repro.resources.compiler import (
    ModelContext,
    ResourceCompiler,
    compile_resource,
)
from repro.resources.package_db import (
    MARKER_ROOT,
    PackageDatabase,
    PackageInfo,
    default_database,
    synthetic_package,
)

__all__ = [
    "MARKER_ROOT",
    "METAPARAMETERS",
    "ModelContext",
    "PackageDatabase",
    "PackageInfo",
    "Resource",
    "ResourceCompiler",
    "ResourceRef",
    "compile_resource",
    "default_database",
    "ensure_directory_tree",
    "guarded_mkdir",
    "synthetic_package",
]
