"""The lint diagnostics model: severities, source-anchored findings,
and the per-manifest report.

Every finding carries a source span threaded all the way from the
lexer tokens (``puppet/lexer.py``) through the AST and the compiled
catalog onto :class:`repro.resources.base.Resource` — a diagnostic
points at the manifest line that declared the offending resource, not
just at the resource name.  Reports serialize to plain dicts (the
``--format json`` view and the per-manifest rows of ``verify-batch``)
and feed the SARIF backend (:mod:`repro.analysis.lint.sarif`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, List, Optional, Tuple


class Severity(IntEnum):
    """Finding severities, ordered so ``max()`` picks the worst.

    The CLI exit code is the contract consumers script against:
    0 — nothing worse than a note, 1 — warnings, 2 — errors.
    """

    NOTE = 1
    WARNING = 2
    ERROR = 3

    @property
    def sarif_level(self) -> str:
        return {
            Severity.NOTE: "note",
            Severity.WARNING: "warning",
            Severity.ERROR: "error",
        }[self]

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


@dataclass(frozen=True)
class Related:
    """A secondary location attached to a diagnostic (the other half
    of a race pair, the first claimant of a duplicated path, ...)."""

    message: str
    line: int = 0
    col: int = 0

    def to_dict(self) -> dict:
        return {"message": self.message, "line": self.line, "col": self.col}


@dataclass
class Diagnostic:
    """One finding: a rule violation anchored at a source span."""

    rule_id: str  # stable, e.g. "REH005"
    rule_name: str  # slug, e.g. "definite-race"
    severity: Severity
    message: str
    file: str  # manifest path/name (the SARIF artifact uri)
    line: int = 0  # 1-based; 0 = no span available
    col: int = 0
    #: The primary resource the finding is about, e.g. "File['/x']".
    resource: Optional[str] = None
    related: Tuple[Related, ...] = ()
    #: Filesystem paths the finding concerns (contended paths for
    #: races, the duplicated path for duplicate claims, ...).
    paths: Tuple[str, ...] = ()

    def render(self) -> str:
        where = self.file
        if self.line:
            where += f":{self.line}"
            if self.col:
                where += f":{self.col}"
        return (
            f"{where}: {self.severity} {self.rule_id} "
            f"[{self.rule_name}] {self.message}"
        )

    def to_dict(self) -> dict:
        return {
            "rule_id": self.rule_id,
            "rule_name": self.rule_name,
            "severity": str(self.severity),
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "resource": self.resource,
            "related": [r.to_dict() for r in self.related],
            "paths": list(self.paths),
        }


@dataclass
class RaceWitness:
    """The self-validation artifact of one definite-race finding: two
    complete topological orders and a concrete initial filesystem on
    which they diverge.  Kept in memory only (the fuzz harness replays
    it through the oracle); never serialized."""

    a: str
    b: str
    initial: object  # FileSystem
    order_a: List[object]
    order_b: List[object]
    outcome_a: object  # FileSystem or ERROR
    outcome_b: object

    @property
    def key(self) -> Tuple[str, str]:
        return tuple(sorted((self.a, self.b)))


@dataclass
class LintStats:
    """Instrumentation for one lint run — notably the evidence that
    the analysis stayed SAT-free (``sat_queries`` has no counter here
    because there is nothing to count)."""

    resources: int = 0
    #: Unordered resource pairs whose footprints conflict (the race
    #: candidates) and how many were concretely confirmed.
    race_candidates: int = 0
    races_confirmed: int = 0
    #: Concrete evaluations spent confirming candidates.
    confirm_evaluations: int = 0
    #: True when the confirmation budget ran dry (remaining candidates
    #: degrade to possible-race warnings, never to definite errors).
    confirm_budget_exhausted: bool = False
    seconds: float = 0.0

    def to_dict(self) -> dict:
        return {
            "resources": self.resources,
            "race_candidates": self.race_candidates,
            "races_confirmed": self.races_confirmed,
            "confirm_evaluations": self.confirm_evaluations,
            "confirm_budget_exhausted": self.confirm_budget_exhausted,
            "seconds": self.seconds,
        }


@dataclass
class LintReport:
    """Everything one lint run found for one manifest."""

    name: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    stats: LintStats = field(default_factory=LintStats)
    #: In-memory only: witnesses backing the definite-race findings.
    race_witnesses: List[RaceWitness] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    # -- aggregate views ---------------------------------------------------

    @property
    def max_severity(self) -> Optional[Severity]:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity == severity)

    @property
    def clean(self) -> bool:
        """No warnings or errors (notes are advisory and do not dirty
        a manifest — the exit-code contract)."""
        sev = self.max_severity
        return sev is None or sev == Severity.NOTE

    @property
    def exit_code(self) -> int:
        """0 — clean (at most notes); 1 — warnings; 2 — errors."""
        sev = self.max_severity
        if sev is None or sev == Severity.NOTE:
            return 0
        return 1 if sev == Severity.WARNING else 2

    def by_rule(self) -> Dict[str, List[Diagnostic]]:
        out: Dict[str, List[Diagnostic]] = {}
        for d in self.diagnostics:
            out.setdefault(d.rule_id, []).append(d)
        return out

    def definite_race_pairs(self) -> List[Tuple[str, str]]:
        return sorted({w.key for w in self.race_witnesses})

    # -- rendering ---------------------------------------------------------

    def render(self) -> str:
        lines = [d.render() for d in sorted(
            self.diagnostics,
            key=lambda d: (d.line, d.col, d.rule_id, d.message),
        )]
        counts = ", ".join(
            f"{self.count(sev)} {sev}{'s' if self.count(sev) != 1 else ''}"
            for sev in (Severity.ERROR, Severity.WARNING, Severity.NOTE)
            if self.count(sev)
        )
        lines.append(
            f"{self.name}: {counts or 'clean'} "
            f"[{self.stats.resources} resources, "
            f"{self.stats.race_candidates} race candidate"
            + ("" if self.stats.race_candidates == 1 else "s")
            + f", {self.stats.confirm_evaluations} concrete evaluations, "
            "0 SAT queries]"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "clean": self.clean,
            "exit_code": self.exit_code,
            "counts": {
                "error": self.count(Severity.ERROR),
                "warning": self.count(Severity.WARNING),
                "note": self.count(Severity.NOTE),
            },
            "diagnostics": [
                d.to_dict()
                for d in sorted(
                    self.diagnostics,
                    key=lambda d: (d.line, d.col, d.rule_id, d.message),
                )
            ],
            "stats": self.stats.to_dict(),
        }
