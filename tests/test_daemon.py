"""The ``rehearsal serve`` daemon: endpoints, tiered cache, quotas,
watcher debounce, graceful shutdown (docs/serve.md)."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.cli import main as cli_main
from repro.service import BatchVerifier, cache_key, normalized_row
from repro.service.daemon import (
    DaemonConfig,
    RehearsalDaemon,
    TokenBucket,
    _Histogram,
    daemon_in_thread,
)
from repro.service.tiered import TieredVerdictCache

GOOD = """
file {"/etc/app.conf": content => "x" }
"""

NONDET = """
file {"/etc/apache2/sites-available/default.conf": content => "z" }
package {"apache2": ensure => present }
"""


def http(url, payload=None, method=None, timeout=120.0):
    """(status, parsed-JSON-or-text) without raising on 4xx/5xx."""
    if payload is not None:
        request = urllib.request.Request(
            url,
            data=json.dumps(payload).encode("utf8"),
            headers={"Content-Type": "application/json"},
            method=method or "POST",
        )
    else:
        request = urllib.request.Request(url, method=method or "GET")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            raw = response.read()
            status, headers = response.status, dict(response.headers)
    except urllib.error.HTTPError as error:
        raw = error.read()
        status, headers = error.code, dict(error.headers)
    try:
        body = json.loads(raw)
    except (UnicodeDecodeError, json.JSONDecodeError):
        body = raw.decode("utf8", "replace")
    return status, body, headers


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    """One shared daemon (private cache dir) for the endpoint tests."""
    cache_dir = tmp_path_factory.mktemp("daemon-cache")
    with daemon_in_thread(
        DaemonConfig(port=0, cache_dir=str(cache_dir))
    ) as running:
        yield running


class TestEndpoints:
    def test_healthz(self, daemon):
        status, body, _ = http(daemon.base_url + "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["workers"] == 1
        assert body["watch"] is None

    def test_verify_row_matches_in_process_batch(self, daemon):
        status, body, _ = http(
            daemon.base_url + "/v1/verify",
            {"source": NONDET, "name": "nondet.pp"},
        )
        assert status == 200
        report = BatchVerifier(cache=None).verify_sources(
            [("nondet.pp", NONDET)]
        )
        expected = report.results[0].to_dict()
        assert normalized_row(body["row"]) == normalized_row(expected)
        assert body["row"]["status"] == "failed"

    def test_verify_by_path(self, daemon, tmp_path):
        manifest = tmp_path / "good.pp"
        manifest.write_text(GOOD)
        status, body, _ = http(
            daemon.base_url + "/v1/verify", {"path": str(manifest)}
        )
        assert status == 200
        assert body["row"]["status"] == "ok"
        assert body["row"]["name"] == str(manifest)

    def test_verdict_refetch_by_digest(self, daemon):
        # A source unique to this test, so the stored row's name is
        # the one this request supplies (re-verifying a digest another
        # test stored would keep that test's label on disk).
        source = GOOD + '\nfile {"/etc/refetch.conf": content => "r" }\n'
        status, body, _ = http(
            daemon.base_url + "/v1/verify",
            {"source": source, "name": "refetch.pp"},
        )
        assert status == 200
        digest = body["row"]["cache_key"]
        status, fetched, _ = http(
            f"{daemon.base_url}/v1/verdicts/{digest}"
        )
        assert status == 200
        assert normalized_row(fetched["row"]) == normalized_row(body["row"])

    def test_unknown_digest_is_404(self, daemon):
        status, body, _ = http(daemon.base_url + "/v1/verdicts/deadbeef")
        assert status == 404
        assert "deadbeef" in body["error"]

    def test_unknown_path_is_404(self, daemon):
        status, body, _ = http(daemon.base_url + "/nope")
        assert status == 404

    def test_wrong_method_is_405_with_allow(self, daemon):
        status, body, headers = http(
            daemon.base_url + "/v1/verify", method="GET"
        )
        assert status == 405
        assert headers["Allow"] == "POST"

    @pytest.mark.parametrize(
        "payload",
        [
            {},  # neither source nor path
            {"source": GOOD, "path": "/tmp/x.pp"},  # both
            {"source": 7},
            {"path": "/no/such/manifest.pp"},
        ],
    )
    def test_bad_verify_bodies_are_400(self, daemon, payload):
        status, body, _ = http(daemon.base_url + "/v1/verify", payload)
        assert status == 400
        assert "error" in body

    def test_events_empty_stream_returns_cursor(self, daemon):
        status, body, _ = http(
            daemon.base_url + "/v1/events?since=0&timeout=0"
        )
        assert status == 200
        assert body["events"] == []
        assert body["dropped"] == 0
        assert body["stopping"] is False

    def test_metrics_exposition(self, daemon):
        status, text, _ = http(daemon.base_url + "/metrics")
        assert status == 200
        assert isinstance(text, str)
        assert "# TYPE rehearsal_daemon_requests_total counter" in text
        assert 'rehearsal_daemon_cache_lookups_total{tier="memory"}' in text
        assert 'rehearsal_daemon_cache_lookups_total{tier="disk"}' in text
        assert 'rehearsal_daemon_cache_lookups_total{tier="miss"}' in text
        assert "rehearsal_daemon_queue_depth 0" in text
        assert 'rehearsal_daemon_verify_seconds_bucket{le="+Inf"}' in text
        assert "rehearsal_daemon_verify_seconds_count" in text


class TestTieredCacheThroughDaemon:
    def test_second_verify_hits_the_memory_tier(self, tmp_path):
        config = DaemonConfig(port=0, cache_dir=str(tmp_path))
        with daemon_in_thread(config) as daemon:
            first = http(
                daemon.base_url + "/v1/verify",
                {"source": GOOD, "name": "good.pp"},
            )[1]
            second = http(
                daemon.base_url + "/v1/verify",
                {"source": GOOD, "name": "good.pp"},
            )[1]
            assert first["row"]["cached"] is False
            assert second["row"]["cached"] is True
            stats = daemon.cache.tier_stats()
        assert stats["memory_hits"] == 1
        assert stats["disk_hits"] == 0

    def test_fresh_daemon_on_same_dir_hits_the_disk_tier(self, tmp_path):
        config = DaemonConfig(port=0, cache_dir=str(tmp_path))
        with daemon_in_thread(config) as daemon:
            http(
                daemon.base_url + "/v1/verify",
                {"source": GOOD, "name": "good.pp"},
            )
        with daemon_in_thread(config) as daemon:
            body = http(
                daemon.base_url + "/v1/verify",
                {"source": GOOD, "name": "good.pp"},
            )[1]
            assert body["row"]["cached"] is True
            stats = daemon.cache.tier_stats()
        assert stats["disk_hits"] == 1
        assert stats["memory_hits"] == 0

    def test_no_cache_daemon_404s_verdict_lookups(self):
        with daemon_in_thread(DaemonConfig(port=0, use_cache=False)) as d:
            assert d.cache is None
            status, body, _ = http(d.base_url + "/v1/verdicts/abc123")
            assert status == 404
            assert "disabled" in body["error"]


class TestQuota:
    def test_exhaustion_answers_429_with_retry_after(self):
        config = DaemonConfig(port=0, quota=0.001, quota_burst=2)
        with daemon_in_thread(config) as daemon:
            events = daemon.base_url + "/v1/events?timeout=0"
            assert http(events)[0] == 200
            assert http(events)[0] == 200
            status, body, headers = http(events)
            assert status == 429
            assert "quota exhausted" in body["error"]
            assert int(headers["Retry-After"]) >= 1
            # /healthz and /metrics stay reachable under exhaustion.
            assert http(daemon.base_url + "/healthz")[0] == 200
            text = http(daemon.base_url + "/metrics")[1]
            assert "rehearsal_daemon_quota_rejections_total 1" in text

    def test_bucket_refills_continuously(self):
        bucket = TokenBucket(rate=1000.0, burst=1)
        admitted, _ = bucket.admit()
        assert admitted
        denied, wait = bucket.admit()
        if not denied:
            assert 0 < wait <= 0.001
            time.sleep(0.01)
            assert bucket.admit()[0]


class TestWatcher:
    def test_rapid_writes_debounce_to_one_reverify(self, tmp_path):
        config = DaemonConfig(
            port=0,
            use_cache=False,
            watch=str(tmp_path),
            poll_interval=0.05,
            debounce=0.3,
        )
        with daemon_in_thread(config) as daemon:
            time.sleep(0.3)  # let the baseline snapshot land
            manifest = tmp_path / "hot.pp"
            for i in range(3):  # an editor's rapid successive writes
                manifest.write_text(GOOD + f"# rev {i}\n")
                time.sleep(0.05)
            status, body, _ = http(
                daemon.base_url + "/v1/events?since=0&timeout=30"
            )
            assert status == 200
            events = [
                e for e in body["events"]
                if e["kind"] == "manifest-verified"
            ]
            assert len(events) == 1
            assert events[0]["path"] == str(manifest)
            assert events[0]["row"]["status"] == "ok"
            # The quiet period held: no further event materializes.
            time.sleep(3 * config.poll_interval + config.debounce)
            body = http(
                daemon.base_url + "/v1/events?since=0&timeout=0"
            )[1]
            assert len(body["events"]) == 1
            assert daemon.watch_reverifies == 1

    def test_missing_watch_dir_fails_startup(self, tmp_path):
        config = DaemonConfig(port=0, watch=str(tmp_path / "absent"))
        with pytest.raises(FileNotFoundError):
            with daemon_in_thread(config):
                pass  # pragma: no cover


class TestGracefulShutdown:
    def test_mid_verify_response_arrives_whole(self):
        # Shutdown must drain the in-flight verification and write its
        # response in one piece — a complete, parseable row, never a
        # truncated one.
        catalog = "\n".join(
            f'file {{"/etc/app/f{i:02d}.cfg": content => "x{i}" }}'
            for i in range(40)
        )
        with daemon_in_thread(DaemonConfig(port=0, use_cache=False)) as d:
            outcome = {}

            def post():
                outcome["reply"] = http(
                    d.base_url + "/v1/verify",
                    {"source": catalog, "name": "inflight.pp"},
                )

            poster = threading.Thread(target=post)
            poster.start()
            time.sleep(0.05)  # request in flight (or already done: fine)
            d.request_stop_threadsafe()
            poster.join(timeout=60)
        status, body, _ = outcome["reply"]
        assert status == 200
        row = body["row"]
        assert row["name"] == "inflight.pp"
        assert row["status"] == "ok"
        assert row["cache_key"]  # the full row landed, not a prefix

    def test_shutdown_wakes_long_pollers(self):
        with daemon_in_thread(DaemonConfig(port=0)) as daemon:
            outcome = {}

            def poll():
                outcome["reply"] = http(
                    daemon.base_url + "/v1/events?since=0&timeout=30"
                )

            poller = threading.Thread(target=poll)
            poller.start()
            time.sleep(0.1)
            start = time.monotonic()
            daemon.request_stop_threadsafe()
            poller.join(timeout=10)
        assert time.monotonic() - start < 10  # not the 30s timeout
        status, body, _ = outcome["reply"]
        assert status == 200
        assert body["stopping"] is True


class TestTieredVerdictCacheUnit:
    def _result(self, name="m.pp", source=GOOD):
        report = BatchVerifier(cache=None).verify_sources([(name, source)])
        return report.results[0]

    def test_capacity_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            TieredVerdictCache(tmp_path, capacity=0)

    def test_memory_then_disk_tier_accounting(self, tmp_path):
        result = self._result()
        key = cache_key(GOOD)
        warm = TieredVerdictCache(tmp_path)
        warm.put(key, result)
        assert warm.get(key) is not None
        assert warm.tier_stats()["memory_hits"] == 1
        # A fresh process (new instance, same directory): memory cold,
        # disk hit, then promotion makes the next hit a memory hit.
        cold = TieredVerdictCache(tmp_path)
        assert cold.get(key) is not None
        assert cold.tier_stats()["disk_hits"] == 1
        assert cold.get(key) is not None
        assert cold.tier_stats()["memory_hits"] == 1

    def test_lru_eviction_at_capacity(self, tmp_path):
        cache = TieredVerdictCache(tmp_path, capacity=2)
        for i in range(3):
            cache.put(f"k{i}", self._result(name=f"m{i}.pp"))
        assert cache.memory_entries == 2
        # k0 was evicted from memory but survives on disk.
        assert cache.get("k0") is not None
        assert cache.tier_stats()["disk_hits"] == 1

    def test_returned_results_are_defensive_copies(self, tmp_path):
        cache = TieredVerdictCache(tmp_path)
        cache.put("k", self._result())
        first = cache.get("k")
        first.name = "mutated"
        assert cache.get("k").name != "mutated"

    def test_clear_empties_both_tiers(self, tmp_path):
        cache = TieredVerdictCache(tmp_path)
        cache.put("k", self._result())
        assert cache.clear() >= 1
        assert cache.memory_entries == 0
        assert cache.get("k") is None


class TestHistogram:
    def test_cumulative_buckets_and_inf(self):
        histogram = _Histogram(buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        lines = histogram.render("h")
        assert 'h_bucket{le="0.1"} 1' in lines
        assert 'h_bucket{le="1"} 2' in lines
        assert 'h_bucket{le="+Inf"} 3' in lines
        assert "h_count 3" in lines


class TestServeCli:
    @pytest.mark.parametrize(
        "argv",
        [
            ["serve", "--workers", "0"],
            ["serve", "--port", "-1"],
            ["serve", "--quota", "0"],
            ["serve", "--quota-burst", "5"],  # needs --quota
            ["serve", "--lru-capacity", "0"],
            ["serve", "--poll-interval", "0"],
            ["serve", "--debounce", "-1"],
            ["serve", "--watch", "/no/such/dir"],
        ],
    )
    def test_bad_invocations_exit_2(self, argv, capsys):
        assert cli_main(argv) == 2
        assert "error" in capsys.readouterr().err

    def test_config_validation_also_guards_the_api(self):
        with pytest.raises(ValueError):
            RehearsalDaemon(DaemonConfig(workers=0))
        with pytest.raises(ValueError):
            RehearsalDaemon(DaemonConfig(quota=-1.0))
