"""Dependency repair synthesis (the paper's §9 "manifest repair").

Given a non-deterministic resource graph, search for a small set of
dependency edges whose addition makes it deterministic.  This inverts
the §6 workflow — instead of reporting the missing-dependency bug, it
proposes the fix the paper's authors wrote by hand for each benchmark.

The search is a bounded greedy/backtracking loop:

1. check determinism; done if it holds;
2. enumerate candidate pairs: unordered resources whose syntactic
   footprints (§4.3) conflict, preferring the pair that actually
   diverges in the reported witness orders;
3. try an edge in the heuristically better direction first (the
   resource that *establishes* state — directory ensurers, definitive
   writers — goes first), backtracking to the other direction;
4. recurse with a budget on added edges.

Every proposed repair is verified end-to-end by the determinacy
analysis before being returned, so unsound proposals are impossible —
at worst the search gives up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

import networkx as nx

from repro.analysis.commutativity import Footprint, footprint, footprints_commute
from repro.analysis.determinism import (
    DeterminismOptions,
    DeterminismResult,
    check_determinism,
)
from repro.errors import AnalysisBudgetExceeded
from repro.fs import syntax as fx

NodeId = Hashable
Edge = Tuple[NodeId, NodeId]


@dataclass
class RepairResult:
    success: bool
    added_edges: List[Edge] = field(default_factory=list)
    final: Optional[DeterminismResult] = None
    checks_performed: int = 0

    def __bool__(self) -> bool:
        return self.success


def synthesize_repair(
    graph: "nx.DiGraph",
    programs: Dict[NodeId, fx.Expr],
    options: Optional[DeterminismOptions] = None,
    max_edges: int = 8,
    max_checks: int = 64,
) -> RepairResult:
    """Search for edges that make the graph deterministic.

    Two passes: the first only accepts repairs that keep the manifest
    *succeeding from the empty machine* — determinism alone would also
    accept degenerate fixes that fail predictably (a config file
    ordered before its package is deterministic: it always errors).
    If no such repair exists the requirement is dropped.
    """
    options = options or DeterminismOptions()
    prints = {n: footprint(programs[n]) for n in graph.nodes}
    for require_success in (True, False):
        state = _SearchState(
            options, prints, programs, max_checks, require_success
        )
        edges = state.search(graph, budget=max_edges)
        if edges is None:
            continue
        edges = _minimize_edges(graph, programs, options, edges, state)
        repaired = graph.copy()
        repaired.add_edges_from(edges)
        final = check_determinism(repaired, programs, options)
        return RepairResult(
            final.deterministic,
            added_edges=edges,
            final=final,
            checks_performed=state.checks,
        )
    return RepairResult(False)


def _minimize_edges(
    graph: "nx.DiGraph",
    programs: Dict[NodeId, fx.Expr],
    options: DeterminismOptions,
    edges: List[Edge],
    state: "_SearchState",
) -> List[Edge]:
    """Greedy edge minimization: drop any edge whose removal keeps the
    repair valid (the witness-guided search can pick up incidental
    edges before finding the essential one)."""
    kept = list(edges)
    for edge in list(kept):
        if len(kept) == 1:
            break
        trial_edges = [e for e in kept if e != edge]
        trial = graph.copy()
        trial.add_edges_from(trial_edges)
        state.checks += 1
        try:
            result = check_determinism(trial, programs, options)
        except AnalysisBudgetExceeded:
            continue
        if result.deterministic and (
            not state.require_success or state._succeeds_from_empty(trial)
        ):
            kept = trial_edges
    return kept


class _SearchState:
    def __init__(self, options, prints, programs, max_checks, require_success):
        self.options = options
        self.prints: Dict[NodeId, Footprint] = prints
        self.programs = programs
        self.max_checks = max_checks
        self.require_success = require_success
        self.checks = 0
        self.seen: set[frozenset] = set()

    def search(
        self, graph: "nx.DiGraph", budget: int
    ) -> Optional[List[Edge]]:
        if self.checks >= self.max_checks:
            return None
        self.checks += 1
        try:
            result = check_determinism(graph, self.programs, self.options)
        except AnalysisBudgetExceeded:
            return None
        if result.deterministic:
            if self.require_success and not self._succeeds_from_empty(graph):
                return None
            return []
        if budget == 0:
            return None
        for a, b in self._candidates(graph, result):
            for src, dst in self._directions(a, b):
                if nx.has_path(graph, dst, src):
                    continue  # would create a cycle
                key = frozenset(graph.edges) | {(src, dst)}
                marker = frozenset(key)
                if marker in self.seen:
                    continue
                self.seen.add(marker)
                trial = graph.copy()
                trial.add_edge(src, dst)
                rest = self.search(trial, budget - 1)
                if rest is not None:
                    return [(src, dst)] + rest
        return None

    def _candidates(
        self, graph: "nx.DiGraph", result: DeterminismResult
    ) -> List[Tuple[NodeId, NodeId]]:
        """Unordered conflicting pairs, witness-guided first."""
        pairs: List[Tuple[NodeId, NodeId]] = []
        ranked: set = set()
        if result.witness_orders is not None:
            order1, order2 = result.witness_orders
            for a, b in zip(order1, order2):
                if a == b:
                    continue
                pair = self._normalize(graph, a, b)
                if pair is not None and pair not in ranked:
                    ranked.add(pair)
                    pairs.append(pair)
                break  # first divergence point only
        nodes = sorted(graph.nodes, key=str)
        for i, a in enumerate(nodes):
            for b in nodes[i + 1 :]:
                pair = self._normalize(graph, a, b)
                if pair is not None and pair not in ranked:
                    ranked.add(pair)
                    pairs.append(pair)
        return pairs

    def _normalize(
        self, graph: "nx.DiGraph", a: NodeId, b: NodeId
    ) -> Optional[Tuple[NodeId, NodeId]]:
        """Return the pair if unordered and conflicting, else None."""
        if a == b:
            return None
        if nx.has_path(graph, a, b) or nx.has_path(graph, b, a):
            return None
        if footprints_commute(self.prints[a], self.prints[b]):
            return None
        return (a, b) if str(a) <= str(b) else (b, a)

    def _succeeds_from_empty(self, graph: "nx.DiGraph") -> bool:
        """The provisioning sanity check: one (hence, by determinism,
        every) linearization succeeds on the empty machine."""
        from repro.fs import FileSystem
        from repro.fs.semantics import ERROR, eval_expr

        order = list(nx.topological_sort(graph))
        program = fx.seq(*[self.programs[n] for n in order])
        return eval_expr(program, FileSystem.empty()) is not ERROR

    def _directions(
        self, a: NodeId, b: NodeId
    ) -> List[Tuple[NodeId, NodeId]]:
        """Heuristic direction: the state *provider* goes first.
        Establishing a directory tree (the D class) is a stronger
        signal than a mere write overlap — a package that D-ensures
        the directory a config file lives in almost certainly must
        precede it."""
        fa, fb = self.prints[a], self.prints[b]
        a_dirs = self._provides_for(fa, fb, dirs_only=True)
        b_dirs = self._provides_for(fb, fa, dirs_only=True)
        if a_dirs and not b_dirs:
            return [(a, b), (b, a)]
        if b_dirs and not a_dirs:
            return [(b, a), (a, b)]
        if self._provides_for(fa, fb):
            return [(a, b), (b, a)]
        if self._provides_for(fb, fa):
            return [(b, a), (a, b)]
        return [(a, b), (b, a)]

    @staticmethod
    def _provides_for(
        provider: Footprint, consumer: Footprint, dirs_only: bool = False
    ) -> bool:
        established = (
            provider.dir_ensures
            if dirs_only
            else provider.dir_ensures | provider.writes
        )
        needs = consumer.reads | consumer.writes
        for d in established:
            for p in needs:
                if d == p or d.is_ancestor_of(p):
                    return True
        return False
