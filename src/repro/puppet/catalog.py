"""The resource catalog: the output of evaluating a manifest.

The catalog holds every declared resource (primitive and container
instances), explicit dependency edges, virtualness, containment, and
the post-evaluation passes of §3.1:

* collector realization and attribute overrides (global, non-modular);
* container expansion — edges mentioning ``Class['x']``, user-define
  instances, or ``Stage['x']`` fan out to their contained primitives;
* stage elimination — inter-stage edges become inter-resource edges;
* file auto-require (a file depends on the file resource managing its
  parent directory — the one dependency Puppet infers, Fig. 1 footnote);
* cycle detection (the Fig. 3b failure mode).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.errors import DependencyCycleError, PuppetEvalError
from repro.fs.paths import Path
from repro.resources.base import METAPARAMETERS, Resource, ResourceRef
from repro.puppet.values import RefValue, Value

CONTAINER_TYPES = frozenset({"class", "stage"})
"""Types that never reach the final graph themselves."""

DEFAULT_STAGE = "main"


@dataclass
class CatalogResource:
    resource: Resource
    containers: Tuple[str, ...] = ()  # refs of enclosing class/define instances
    virtual: bool = False
    exported: bool = False
    position: int = 0
    is_define_instance: bool = False
    stage: Optional[str] = None  # classes only

    @property
    def ref(self) -> ResourceRef:
        return self.resource.ref

    @property
    def key(self) -> Tuple[str, str]:
        return (self.resource.rtype, self.resource.title)


@dataclass
class Edge:
    source: RefValue
    target: RefValue
    kind: str = "before"  # "before" | "notify" (same ordering effect)
    # Span of the declaration that created the edge (0 = unknown).
    line: int = 0
    col: int = 0


class Catalog:
    """Mutable catalog being built by the evaluator."""

    def __init__(self) -> None:
        self.resources: Dict[Tuple[str, str], CatalogResource] = {}
        self.edges: List[Edge] = []
        self._position = 0

    # -- declaration ---------------------------------------------------------

    def add(self, entry: CatalogResource) -> None:
        key = entry.key
        if key in self.resources:
            raise PuppetEvalError(
                f"duplicate resource declaration: {entry.ref}"
            )
        entry.position = self._position
        self._position += 1
        self.resources[key] = entry

    def has(self, rtype: str, title: str) -> bool:
        return (rtype.lower(), title) in self.resources

    def get(self, rtype: str, title: str) -> Optional[CatalogResource]:
        return self.resources.get((rtype.lower(), title))

    def add_edge(
        self,
        source: RefValue,
        target: RefValue,
        kind: str = "before",
        line: int = 0,
        col: int = 0,
    ) -> None:
        self.edges.append(Edge(source, target, kind, line=line, col=col))

    # -- queries ---------------------------------------------------------------

    def members_of(self, container_ref: str) -> List[CatalogResource]:
        """Resources (transitively) contained in a class/define/stage."""
        out = []
        for entry in self.resources.values():
            if container_ref in entry.containers:
                out.append(entry)
        return out

    def real_resources(self) -> List[CatalogResource]:
        return [
            e
            for e in self.resources.values()
            if not e.virtual and not e.exported
        ]

    def primitive_resources(self) -> List[CatalogResource]:
        return [
            e
            for e in self.real_resources()
            if e.resource.rtype not in CONTAINER_TYPES
            and not e.is_define_instance
        ]

    # -- reference expansion -----------------------------------------------------

    def expand_ref(self, ref: RefValue) -> List[CatalogResource]:
        """A reference to a primitive resource is itself; a reference
        to a class/define-instance/stage is its transitive members."""
        rtype = ref.rtype.lower()
        if rtype == "stage":
            members: List[CatalogResource] = []
            for entry in self.resources.values():
                if (
                    entry.resource.rtype == "class"
                    and (entry.stage or DEFAULT_STAGE) == ref.title
                ):
                    members.extend(self.members_of(_container_id(entry)))
            return [m for m in members if _is_primitive(m)]
        entry = self.get(rtype, ref.title)
        if entry is None:
            raise PuppetEvalError(f"reference to undeclared resource {ref}")
        if entry.resource.rtype == "class" or entry.is_define_instance:
            members = self.members_of(_container_id(entry))
            return [m for m in members if _is_primitive(m)]
        return [entry]

    # -- final graph ----------------------------------------------------------------

    def build_graph(self) -> "nx.DiGraph":
        """Produce the primitive resource graph (paper Fig. 4): nodes
        are primitive resource refs (as strings), edges point
        prerequisite → dependent.  Raises on cycles."""
        graph = nx.DiGraph()
        primitives = self.primitive_resources()
        for entry in primitives:
            graph.add_node(str(entry.ref), entry=entry)

        def connect(src: CatalogResource, dst: CatalogResource) -> None:
            if src.key == dst.key:
                return
            if _is_primitive(src) and _is_primitive(dst):
                graph.add_edge(str(src.ref), str(dst.ref))

        # Explicit edges (arrows + metaparameters), containers expanded.
        for edge in self.edges:
            sources = self.expand_ref(edge.source)
            targets = self.expand_ref(edge.target)
            for s in sources:
                for t in targets:
                    connect(s, t)

        # Container-implied ordering: a dependency on a container also
        # orders against resources *declared by* nested containers —
        # handled by expand_ref's transitive membership.

        # Stage ordering: edges between stage resources were recorded
        # as Stage[...] references already; additionally every
        # non-main stage with no explicit relation is left unordered,
        # matching Puppet (stages require explicit ordering).

        # File auto-require: parent directory files.
        by_path: Dict[Path, CatalogResource] = {}
        for entry in primitives:
            if entry.resource.rtype == "file":
                raw = entry.resource.get_str("path") or entry.resource.title
                try:
                    by_path[Path.of(raw)] = entry
                except ValueError:
                    pass
        for path, entry in by_path.items():
            parent = path.parent()
            if not parent.is_root and parent in by_path:
                connect(by_path[parent], entry)

        try:
            cycle = nx.find_cycle(graph)
        except nx.NetworkXNoCycle:
            return graph
        raise DependencyCycleError([edge[0] for edge in cycle])


def _container_id(entry: CatalogResource) -> str:
    return str(entry.ref)


def _is_primitive(entry: CatalogResource) -> bool:
    return (
        entry.resource.rtype not in CONTAINER_TYPES
        and not entry.is_define_instance
        and not entry.virtual
        and not entry.exported
    )


# -- collectors ----------------------------------------------------------------


def collector_matches(
    entry: CatalogResource, query, evaluate
) -> bool:
    """Does a catalog resource match a collector query?

    ``query`` is an :class:`repro.puppet.ast_nodes.CollectorQuery` (or
    None for match-all); ``evaluate`` maps its value expressions to
    runtime values."""
    if query is None:
        return True
    if query.op in ("and", "or"):
        left = collector_matches(entry, query.left, evaluate)
        right = collector_matches(entry, query.right, evaluate)
        return (left and right) if query.op == "and" else (left or right)
    wanted = evaluate(query.value)
    if query.attr == "title":
        actual: Value = entry.resource.title
    else:
        actual = entry.resource.attributes.get(query.attr)
    from repro.puppet.values import values_equal

    if query.op == "==":
        return values_equal(actual, wanted)
    return not values_equal(actual, wanted)
