"""SARIF 2.1.0 output backend.

Produces one SARIF log per lint invocation — one run, one result per
diagnostic — shaped for GitHub code scanning (`upload-sarif`): the
driver carries the full rule table with help text, every result
anchors a ``physicalLocation`` when a source span is known (regions
are omitted for span-less findings rather than emitting line 0, which
the schema forbids), and related locations carry the secondary spans
(the other half of a race pair, the first claimant of a duplicated
path)."""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence

from repro.analysis.lint.diagnostics import Diagnostic, LintReport
from repro.analysis.lint.engine import RULES, Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

TOOL_NAME = "rehearsal-lint"
TOOL_URI = "https://github.com/rehearsal-repro/rehearsal"


def _rule_to_sarif(rule: Rule, index: int) -> dict:
    return {
        "id": rule.id,
        "name": rule.name,
        "shortDescription": {"text": rule.summary},
        "fullDescription": {"text": rule.description or rule.summary},
        "defaultConfiguration": {"level": rule.severity.sarif_level},
        "helpUri": f"{TOOL_URI}/blob/main/docs/lint.md#{rule.id.lower()}",
    }


def _location(file: str, line: int, col: int, message: str = "") -> dict:
    physical: dict = {
        "artifactLocation": {"uri": file, "uriBaseId": "SRCROOT"}
    }
    if line > 0:
        region = {"startLine": line}
        if col > 0:
            region["startColumn"] = col
        physical["region"] = region
    location: dict = {"physicalLocation": physical}
    if message:
        location["message"] = {"text": message}
    return location


def _result(diag: Diagnostic, rule_index: Dict[str, int]) -> dict:
    result = {
        "ruleId": diag.rule_id,
        "ruleIndex": rule_index[diag.rule_id],
        "level": diag.severity.sarif_level,
        "message": {"text": diag.message},
        "locations": [_location(diag.file, diag.line, diag.col)],
    }
    if diag.related:
        result["relatedLocations"] = [
            _location(diag.file, r.line, r.col, r.message)
            for r in diag.related
        ]
    properties = {}
    if diag.resource:
        properties["resource"] = diag.resource
    if diag.paths:
        properties["paths"] = list(diag.paths)
    if properties:
        result["properties"] = properties
    return result


def to_sarif(
    reports: "Sequence[LintReport] | LintReport",
    tool_version: str = "",
) -> dict:
    """Build the SARIF log object for one or many lint reports
    (many = one run with results across several artifacts, the shape
    ``rehearsal lint a.pp b.pp --format sarif`` emits)."""
    if isinstance(reports, LintReport):
        reports = [reports]
    rules = sorted(RULES.values(), key=lambda r: r.id)
    rule_index = {rule.id: i for i, rule in enumerate(rules)}
    driver: dict = {
        "name": TOOL_NAME,
        "informationUri": TOOL_URI,
        "rules": [_rule_to_sarif(r, i) for i, r in enumerate(rules)],
    }
    if tool_version:
        driver["version"] = tool_version
    results: List[dict] = []
    for report in reports:
        for diag in sorted(
            report.diagnostics,
            key=lambda d: (d.file, d.line, d.col, d.rule_id, d.message),
        ):
            results.append(_result(diag, rule_index))
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {"driver": driver},
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }


def render_sarif(
    reports: "Sequence[LintReport] | LintReport",
    tool_version: str = "",
) -> str:
    return json.dumps(to_sarif(reports, tool_version), indent=2) + "\n"
