"""Replay every committed fuzz counterexample forever.

Files under ``tests/regressions/`` are shrunk reproducers of historical
pipeline/oracle disagreements (see ``docs/fuzzing.md``).  Each must:

* parse and carry a well-formed machine-readable header;
* produce the pinned verdict from the *current* pipeline;
* show **no** disagreement between the pipeline and the concrete
  oracle — the bug that minted the file must stay fixed.

``tools/check_regressions.py`` cross-checks this test's discovery
against the directory contents in CI, so a dropped file cannot
silently skip its replay.
"""

from pathlib import Path

import pytest

from repro.puppet.parser import parse_manifest
from repro.testing import run_source
from repro.testing.regressions import (
    RegressionFormatError,
    RegressionHeader,
    discover,
    format_reproducer,
    parse_header,
)

REGRESSION_DIR = Path(__file__).parent / "regressions"
REGRESSIONS = discover(REGRESSION_DIR)


def test_corpus_is_not_empty():
    assert REGRESSIONS, "tests/regressions/ must hold reproducers"


@pytest.mark.parametrize(
    "path", REGRESSIONS, ids=[p.stem for p in REGRESSIONS]
)
class TestReplay:
    def test_parses_with_header(self, path):
        text = path.read_text(encoding="utf8")
        header = parse_header(text, path.name)
        assert header.seed >= 0
        # A reproducer minted under an older generator is stale: its
        # seed/case-id no longer re-create the committed catalog.
        # Re-mint the corpus when bumping GENERATOR_VERSION.
        from repro.testing.generate import GENERATOR_VERSION

        assert header.generator_version == GENERATOR_VERSION, (
            f"{path.name}: minted under generator "
            f"v{header.generator_version}, current is "
            f"v{GENERATOR_VERSION}"
        )
        parse_manifest(text)

    def test_no_disagreement_and_pinned_verdict(self, path):
        text = path.read_text(encoding="utf8")
        header = parse_header(text, path.name)
        outcome = run_source(
            text, name=path.name, oracle_seed=header.seed
        )
        assert outcome.agreed, (
            f"{path.name}: the disagreement this reproducer was minted "
            f"for is back: {outcome.kinds()}"
        )
        assert (
            outcome.pipeline_deterministic
            == header.expected_deterministic
        ), f"{path.name}: pinned determinism verdict changed"
        if header.expected_idempotent is not None:
            assert (
                outcome.pipeline_idempotent
                == header.expected_idempotent
            ), f"{path.name}: pinned idempotence verdict changed"


class TestHeaderFormat:
    def test_round_trip(self):
        text = format_reproducer(
            "file { '/etc/x': content => 'a' }",
            seed=7,
            case_id=3,
            disagreement="missed_nondet",
            expected_deterministic=False,
            expected_idempotent=None,
            bug_class="shared-write",
            found_by="unit-test",
        )
        header = parse_header(text)
        assert header == RegressionHeader(
            seed=7,
            case_id=3,
            generator_version=header.generator_version,
            disagreement="missed_nondet",
            expected_deterministic=False,
            expected_idempotent=None,
            bug_class="shared-write",
            found_by="unit-test",
        )

    def test_missing_marker_rejected(self):
        with pytest.raises(RegressionFormatError, match="first line"):
            parse_header("file { '/x': }")

    def test_missing_required_key_rejected(self):
        with pytest.raises(RegressionFormatError, match="missing"):
            parse_header(
                "# rehearsal-fuzz reproducer\n# seed: 1\nfile { '/x': }"
            )

    def test_bad_tristate_rejected(self):
        text = format_reproducer(
            "file { '/x': }",
            seed=1,
            case_id=0,
            disagreement="x",
            expected_deterministic=True,
        ).replace("expected-deterministic: true", "expected-deterministic: maybe")
        with pytest.raises(RegressionFormatError, match="true/false/none"):
            parse_header(text)

    def test_discover_is_sorted_and_pp_only(self, tmp_path):
        (tmp_path / "b.pp").write_text("x")
        (tmp_path / "a.pp").write_text("x")
        (tmp_path / "ignore.txt").write_text("x")
        assert [p.name for p in discover(tmp_path)] == ["a.pp", "b.pp"]


#: Reproducers whose nondeterminism the static analyzer is KNOWN to
#: miss (no REH005 definite race).  The contract is one-way: this list
#: may only shrink.  An entry that lint starts flagging fails the test
#: below until it is removed; new reproducers that lint misses must be
#: added here explicitly (with a comment on why) rather than silently
#: weakening the analyzer.  Currently every committed reproducer is
#: caught.
KNOWN_LINT_GAPS: frozenset = frozenset()


class TestLintCoverage:
    """Every committed reproducer of a *nondeterminism* disagreement
    should also be caught by the SAT-free analyzer — and the gap list
    above can only shrink."""

    def test_gap_list_names_real_reproducers(self):
        stems = {p.stem for p in REGRESSIONS}
        assert KNOWN_LINT_GAPS <= stems, (
            f"stale gap entries: {sorted(KNOWN_LINT_GAPS - stems)}"
        )

    @pytest.mark.parametrize(
        "path", REGRESSIONS, ids=[p.stem for p in REGRESSIONS]
    )
    def test_lint_finds_the_race_or_is_a_documented_gap(self, path):
        from repro.analysis.lint import lint_source

        text = path.read_text(encoding="utf8")
        header = parse_header(text, path.name)
        if header.expected_deterministic is not False:
            pytest.skip("reproducer is not a nondeterminism witness")
        report = lint_source(text, name=path.name)
        found = bool(report.definite_race_pairs())
        if path.stem in KNOWN_LINT_GAPS:
            assert not found, (
                f"{path.name}: lint now catches this race — remove it "
                "from KNOWN_LINT_GAPS (the list may only shrink)"
            )
        else:
            assert found, (
                f"{path.name}: lint no longer finds the definite race "
                "(regression: the analyzer got weaker)"
            )
