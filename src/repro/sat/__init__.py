"""SAT solving substrate: CDCL solver, DIMACS I/O, brute-force oracle."""

from repro.sat.brute import brute_force_solve, check_assignment, count_models
from repro.sat.dimacs import dimacs_to_string, read_dimacs, write_dimacs
from repro.sat.solver import SolveResult, Solver, solve_cnf

__all__ = [
    "SolveResult",
    "Solver",
    "brute_force_solve",
    "check_assignment",
    "count_models",
    "dimacs_to_string",
    "read_dimacs",
    "solve_cnf",
    "write_dimacs",
]
