"""Cross-run incremental verification store (ROADMAP #4).

The verdict cache (:mod:`repro.service.cache`) memoizes whole-manifest
results: one edited line invalidates everything.  This module keys the
*intermediate* results on content digests instead, so a re-verify after
a small edit reuses everything the edit did not invalidate:

- **CNF blocks** (``cnf`` section): Tseitin encodings of and/or
  subformulas, keyed by the stable structural digest of
  :func:`repro.logic.terms.structural_digest` (term uids are
  process-local and cannot be persisted).  Rehydration allocates fresh
  internal variables and resolves input variables by name — see
  :class:`repro.logic.cnf.SubtermCache`.
- **Commutativity verdicts** (``commute`` section): one bool per
  resource-pair *footprint* digest, so unchanged pairs skip
  :func:`repro.analysis.commutativity.footprints_commute`.
- **Per-resource idempotence** (``idem``) and **full-catalog
  idempotence** (``idem_full``): the dominant cost of a verify on large
  catalogs is the ``e ≡ e; e`` check over the whole sequenced catalog.
  :func:`check_idempotence_incremental` decomposes it — when every
  resource pair commutes, ``e;e`` reorders to ``r1;r1;…;rn;rn``, so
  per-resource idempotence (over *all* states, a strictly stronger
  property than the well-formed-initial variant) implies catalog
  idempotence.  The fast path only ever concludes *positively*; any
  non-commuting pair or non-idempotent resource falls back to the
  exact from-scratch check, so verdicts are byte-identical either way.
- **Exploration subtrees** (``explore``) and **root determinism
  results** (``det_root``): see :mod:`repro.analysis.determinism` for
  the graft rules and the scratch-rerun parity guard.

Storage is a single SQLite database (stdlib ``sqlite3``), versioned by
``STORE_VERSION`` *and* the package version: any mismatch drops the
store and starts cold.  Every storage failure — corruption, truncated
file, permission trouble — degrades to a cold run, never to a wrong
verdict: the store disables itself and every lookup misses.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import sqlite3
import threading
import time
from pathlib import Path as OsPath
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

import networkx as nx

from repro import __version__
from repro.analysis.commutativity import Footprint, footprint, footprints_commute
from repro.analysis.equivalence import check_equivalence
from repro.analysis.idempotence import IdempotenceResult, check_idempotence
from repro.analysis.localize import RaceReport
from repro.fs import FileSystem, eval_expr, seq
from repro.fs import syntax as fx
from repro.fs.paths import Path

NodeId = Hashable

#: Bump to invalidate every persisted entry (layout or semantics
#: change).  The package version is part of the gate too, mirroring the
#: verdict cache's version rotation.
STORE_VERSION = 1

_STORE_FILENAME = "incremental.sqlite"


def default_store_path(directory: Optional[str] = None) -> OsPath:
    """The store location: ``<cache-dir>/incremental.sqlite`` unless an
    explicit directory is given."""
    if directory:
        return OsPath(directory) / _STORE_FILENAME
    from repro.service.cache import default_cache_dir

    return default_cache_dir() / _STORE_FILENAME


class IncrementalStore:
    """A sectioned key/value store over one SQLite file.

    All values are JSON strings.  The store is defensive end to end:
    any :mod:`sqlite3` error disables it (reads miss, writes drop) for
    the rest of the process — a damaged store can cost a cold run but
    can never corrupt a verdict.  A version mismatch on open drops all
    entries, which is what makes schema bumps invalidate cleanly.
    """

    def __init__(self, path: OsPath):
        self.path = OsPath(path)
        self.disabled = False
        self._lock = threading.Lock()
        self._conn: Optional[sqlite3.Connection] = None
        try:
            self._open()
        except sqlite3.Error:
            # A corrupted database file: delete and retry once, then
            # give up and run cold.
            self._close_quietly()
            try:
                self.path.unlink()
            except OSError:
                pass
            try:
                self._open()
            except (sqlite3.Error, OSError):
                self._close_quietly()
                self.disabled = True
        except OSError:
            self.disabled = True

    # -- lifecycle ----------------------------------------------------------

    def _open(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(
            str(self.path), timeout=10.0, check_same_thread=False
        )
        self._conn = conn
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute(
            "CREATE TABLE IF NOT EXISTS meta ("
            "key TEXT PRIMARY KEY, value TEXT NOT NULL)"
        )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS entries ("
            "section TEXT NOT NULL, key TEXT NOT NULL, "
            "value TEXT NOT NULL, updated_at REAL NOT NULL, "
            "PRIMARY KEY (section, key))"
        )
        expected = f"{STORE_VERSION}:{__version__}"
        row = conn.execute(
            "SELECT value FROM meta WHERE key = 'version'"
        ).fetchone()
        if row is None or row[0] != expected:
            conn.execute("DELETE FROM entries")
            conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                ("version", expected),
            )
        conn.commit()

    def _close_quietly(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None

    def close(self) -> None:
        with self._lock:
            self._close_quietly()
            self.disabled = True

    def _trip(self) -> None:
        """First storage error wins: run cold from here on."""
        self.disabled = True
        self._close_quietly()

    # -- key/value ----------------------------------------------------------

    def get(self, section: str, key: str) -> Optional[str]:
        if self.disabled:
            return None
        with self._lock:
            if self._conn is None:
                return None
            try:
                row = self._conn.execute(
                    "SELECT value FROM entries WHERE section=? AND key=?",
                    (section, key),
                ).fetchone()
            except sqlite3.Error:
                self._trip()
                return None
        return row[0] if row else None

    def get_many(
        self, section: str, keys: Iterable[str]
    ) -> Dict[str, str]:
        """Batched lookup (one SELECT per ~500 keys) — the warm path
        asks for hundreds of pair verdicts at once and per-key queries
        would dominate the very latency this store exists to remove."""
        out: Dict[str, str] = {}
        if self.disabled:
            return out
        keys = list(keys)
        with self._lock:
            if self._conn is None:
                return out
            try:
                for i in range(0, len(keys), 500):
                    chunk = keys[i : i + 500]
                    marks = ",".join("?" * len(chunk))
                    rows = self._conn.execute(
                        f"SELECT key, value FROM entries "
                        f"WHERE section=? AND key IN ({marks})",
                        [section, *chunk],
                    ).fetchall()
                    out.update(rows)
            except sqlite3.Error:
                self._trip()
                return {}
        return out

    def put(self, section: str, key: str, value: str) -> None:
        self.put_many(section, [(key, value)])

    def put_many(
        self, section: str, items: Iterable[Tuple[str, str]]
    ) -> None:
        if self.disabled:
            return
        now = time.time()
        rows = [(section, k, v, now) for k, v in items]
        if not rows:
            return
        with self._lock:
            if self._conn is None:
                return
            try:
                self._conn.executemany(
                    "INSERT OR REPLACE INTO entries "
                    "(section, key, value, updated_at) VALUES (?, ?, ?, ?)",
                    rows,
                )
                self._conn.commit()
            except sqlite3.Error:
                self._trip()

    def get_json(self, section: str, key: str) -> Optional[dict]:
        raw = self.get(section, key)
        if raw is None:
            return None
        try:
            value = json.loads(raw)
        except ValueError:
            return None
        return value if isinstance(value, dict) else None

    def put_json(self, section: str, key: str, value: dict) -> None:
        self.put(section, key, json.dumps(value, sort_keys=True))

    # -- maintenance ---------------------------------------------------------

    def stats(self) -> dict:
        """Per-section entry counts and value bytes plus the on-disk
        file size, for ``rehearsal cache stats``."""
        sections: Dict[str, dict] = {}
        entries = 0
        value_bytes = 0
        if not self.disabled:
            with self._lock:
                if self._conn is not None:
                    try:
                        rows = self._conn.execute(
                            "SELECT section, COUNT(*), "
                            "COALESCE(SUM(LENGTH(value)), 0) "
                            "FROM entries GROUP BY section ORDER BY section"
                        ).fetchall()
                    except sqlite3.Error:
                        self._trip()
                        rows = []
                    for section, count, nbytes in rows:
                        sections[section] = {
                            "entries": count,
                            "bytes": nbytes,
                        }
                        entries += count
                        value_bytes += nbytes
        try:
            file_bytes = self.path.stat().st_size
        except OSError:
            file_bytes = 0
        return {
            "path": str(self.path),
            "entries": entries,
            "bytes": file_bytes,
            "value_bytes": value_bytes,
            "sections": sections,
        }

    def clear(self) -> int:
        """Drop every entry; returns how many were removed."""
        if self.disabled:
            return 0
        with self._lock:
            if self._conn is None:
                return 0
            try:
                (count,) = self._conn.execute(
                    "SELECT COUNT(*) FROM entries"
                ).fetchone()
                self._conn.execute("DELETE FROM entries")
                self._conn.commit()
                self._conn.execute("VACUUM")
            except sqlite3.Error:
                self._trip()
                return 0
        return count

    def gc(self, max_bytes: int) -> int:
        """Evict least-recently-updated entries until the summed value
        bytes fit in ``max_bytes``; returns entries removed."""
        if self.disabled:
            return 0
        removed = 0
        with self._lock:
            if self._conn is None:
                return 0
            try:
                rows = self._conn.execute(
                    "SELECT section, key, LENGTH(value), updated_at "
                    "FROM entries ORDER BY updated_at"
                ).fetchall()
                total = sum(r[2] for r in rows)
                doomed = []
                for section, key, size, _at in rows:
                    if total <= max_bytes:
                        break
                    doomed.append((section, key))
                    total -= size
                    removed += 1
                if doomed:
                    self._conn.executemany(
                        "DELETE FROM entries WHERE section=? AND key=?",
                        doomed,
                    )
                    self._conn.commit()
                    self._conn.execute("VACUUM")
            except sqlite3.Error:
                self._trip()
                return removed
        return removed


# One store handle per path per process: verify-batch workers and
# repeated verifies share the connection (and its page cache) instead
# of reopening SQLite per manifest.
_stores: Dict[str, IncrementalStore] = {}
_stores_lock = threading.Lock()


def open_store(directory: Optional[str] = None) -> Optional[IncrementalStore]:
    """The process-wide store for ``directory`` (default cache dir),
    or None when storage is unusable (degrade to cold)."""
    path = default_store_path(directory)
    key = str(path)
    with _stores_lock:
        store = _stores.get(key)
        if store is None or store.disabled:
            store = IncrementalStore(path)
            _stores[key] = store
    return None if store.disabled else store


def reset_store_registry() -> None:
    """Close and forget every open store (tests re-point the cache dir
    between cases; a cached handle would keep writing to the old one)."""
    with _stores_lock:
        for store in _stores.values():
            store.close()
        _stores.clear()


# -- content digests ---------------------------------------------------------


def _blake(text: str) -> str:
    return hashlib.blake2b(text.encode("utf8"), digest_size=16).hexdigest()


def expr_digest(e: fx.Expr) -> str:
    """Stable content digest of an FS program (or predicate): a
    canonical serialization of the AST, independent of object identity
    and process."""
    return _blake(_ast_repr(e))


def _ast_repr(obj: object) -> str:
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        inner = ",".join(
            f"{f.name}={_ast_repr(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj)
        )
        return f"{type(obj).__name__}({inner})"
    if isinstance(obj, str):
        return repr(obj)
    if isinstance(obj, (tuple, list)):
        return "[" + ",".join(_ast_repr(x) for x in obj) + "]"
    return repr(obj)


def footprint_digest(fp: Footprint) -> str:
    """Stable digest of a footprint — the commutativity cache key
    material (two resources with equal footprints share verdicts)."""
    accesses = sorted((str(p), a.name) for p, a in fp.accesses)
    children = sorted(str(p) for p in fp.children_reads)
    return _blake(f"fp:{accesses!r}:{children!r}")


def domains_digest(domains) -> str:
    """Digest of the modeled path domains (Fig. 8).  Part of every
    exploration key: a content edit can grow a path's value domain, and
    states over different domains are never interchangeable."""
    parts = []
    for p in domains.paths:
        values = ",".join(repr(v) for v in domains.values(p))
        parts.append(f"{p}=[{values}]")
    return _blake("dom:" + ";".join(parts))


def state_digest(bank, state) -> str:
    """Stable digest of a symbolic state: the ``ok`` term plus every
    path's value indicators, all via structural term digests.  Within
    one bank this is injective exactly like
    :meth:`~repro.smt.state.SymbolicState.fingerprint` (hash-consing
    makes structural equality identity), but unlike the fingerprint it
    survives across processes."""
    h = hashlib.blake2b(digest_size=16)
    h.update(bank.digest(state.ok).encode("ascii"))
    for path, value in sorted(
        state.fs.items(), key=lambda kv: str(kv[0])
    ):
        h.update(str(path).encode("utf8"))
        for dv, term in sorted(
            value.indicators.items(), key=lambda kv: repr(kv[0])
        ):
            h.update(repr(dv).encode("utf8"))
            h.update(bank.digest(term).encode("ascii"))
    return h.hexdigest()


# -- persistent CNF block cache ----------------------------------------------


class StoreSubtermCache:
    """:class:`repro.logic.cnf.SubtermCache` over the ``cnf`` section.

    Attached only to the one-shot idempotence queries — never to the
    determinism :class:`~repro.smt.query.IncrementalQuery`, whose CNF
    layout feeds race localization and must stay byte-identical to the
    from-scratch run.
    """

    #: Blocks above this many clauses are not persisted (a whole-goal
    #: block for a large catalog can dwarf everything else in the
    #: store; sub-blocks still cover the reusable structure).
    MAX_CLAUSES = 50_000

    def __init__(self, store: IncrementalStore):
        self._store = store

    def get(self, digest: str) -> Optional[dict]:
        block = self._store.get_json("cnf", digest)
        if block is None:
            return None
        if not (
            isinstance(block.get("v"), int)
            and isinstance(block.get("names"), list)
            and isinstance(block.get("root"), int)
            and isinstance(block.get("clauses"), list)
        ):
            return None  # damaged entry: miss, re-encode from scratch
        return block

    def put(self, digest: str, block: dict) -> None:
        if len(block["clauses"]) > self.MAX_CLAUSES:
            return
        self._store.put_json("cnf", digest, block)


# -- cached commutativity matrix ---------------------------------------------


def cached_commutativity_matrix(
    footprints: Mapping[NodeId, Footprint],
    store: Optional[IncrementalStore],
) -> Tuple[Dict[NodeId, Dict[NodeId, bool]], int]:
    """All-pairs commutativity, with per-pair verdicts persisted by
    footprint digest.  Returns ``(matrix, cache_hits)``; with no store
    this is exactly :func:`commutativity_matrix`."""
    keys = list(footprints)
    matrix: Dict[NodeId, Dict[NodeId, bool]] = {k: {k: True} for k in keys}
    if store is None:
        from repro.analysis.commutativity import commutativity_matrix

        return commutativity_matrix(footprints), 0
    digests = {k: footprint_digest(footprints[k]) for k in keys}
    pair_key: Dict[Tuple[NodeId, NodeId], str] = {}
    for i, a in enumerate(keys):
        for b in keys[i + 1 :]:
            da, db = sorted((digests[a], digests[b]))
            pair_key[(a, b)] = f"{da}:{db}"
    cached = store.get_many("commute", set(pair_key.values()))
    hits = 0
    fresh: Dict[str, str] = {}
    for (a, b), key in pair_key.items():
        raw = cached.get(key)
        if raw is None:
            raw = fresh.get(key)
        if raw is not None:
            commute = raw == "1"
            if key not in fresh:
                hits += 1
        else:
            commute = footprints_commute(footprints[a], footprints[b])
            fresh[key] = "1" if commute else "0"
        matrix[a][b] = commute
        matrix[b][a] = commute
    if fresh:
        store.put_many("commute", list(fresh.items()))
    return matrix, hits


# -- incremental idempotence -------------------------------------------------


def _fs_to_dict(fs: Optional[FileSystem]) -> Optional[Dict[str, Optional[str]]]:
    if fs is None:
        return None
    return {
        str(p): (None if fs.is_dir(p) else fs.file_content(p))
        for p in fs.paths()
    }


def _fs_from_dict(
    entries: Optional[Mapping[str, Optional[str]]]
) -> Optional[FileSystem]:
    if entries is None:
        return None
    return FileSystem.from_dict(entries)


def check_idempotence_incremental(
    graph: "nx.DiGraph",
    programs: Dict[NodeId, fx.Expr],
    options,
    stats=None,
    store: Optional[IncrementalStore] = None,
) -> IdempotenceResult:
    """Idempotence with cross-run reuse; byte-identical verdicts.

    Three tiers, each falling through to the next:

    1. **Full-catalog hit** (``idem_full``): the exact per-resource
       program digests in topological order were decided before —
       serve the recorded verdict (and witness).
    2. **Commuting decomposition**: when every resource pair commutes
       (Lemma 4), ``e;e = r1…rn;r1…rn ≡ r1;r1;…;rn;rn``, so catalog
       idempotence follows from per-resource idempotence.  Each
       ``ri;ri ≡ ri`` is checked over *all* initial states
       (``well_formed_initial=False`` — stronger than the catalog
       property, so the implication needs no well-formedness
       preservation argument) and cached by program digest.  This tier
       only ever concludes **positively**; a non-commuting pair or a
       non-idempotent resource falls through.
    3. **Exact fallback**: the unmodified from-scratch
       :func:`~repro.analysis.idempotence.check_idempotence` — same
       code path, same witness, byte-identical result.

    Reuse counters land on ``stats`` (a
    :class:`~repro.analysis.determinism.DeterminismStats`) when given.
    """
    start = time.perf_counter()
    wf = bool(options.well_formed_initial)
    if store is None or store.disabled:
        store = open_store(getattr(options, "incremental_dir", None))
    order: List[NodeId] = list(nx.topological_sort(graph))
    if store is None:
        return check_idempotence(graph, programs, well_formed_initial=wf)

    digests = {n: expr_digest(programs[n]) for n in order}
    full_key = _blake(
        f"idem_full:wf={int(wf)}:" + ":".join(digests[n] for n in order)
    )
    entry = store.get_json("idem_full", full_key)
    if entry is not None and isinstance(entry.get("idempotent"), bool):
        if stats is not None:
            stats.subtree_reuse_hits += 1
        return IdempotenceResult(
            idempotent=entry["idempotent"],
            witness_fs=_fs_from_dict(entry.get("witness")),
            total_seconds=time.perf_counter() - start,
        )

    prints = {n: footprint(programs[n]) for n in order}
    matrix, commute_hits = cached_commutativity_matrix(prints, store)
    if stats is not None:
        stats.commute_cache_hits += commute_hits
    all_commute = all(
        matrix[a][b]
        for i, a in enumerate(order)
        for b in order[i + 1 :]
    )

    if all_commute:
        cnf_cache = StoreSubtermCache(store)
        cached_bools = store.get_many("idem", [digests[n] for n in order])
        all_idem = True
        fresh: Dict[str, str] = {}
        for n in order:
            raw = cached_bools.get(digests[n])
            if raw is None:
                raw = fresh.get(digests[n])
            if raw is not None:
                if stats is not None:
                    stats.subtree_reuse_hits += 1
                idem = raw == "1"
            else:
                e = programs[n]
                res = check_equivalence(
                    e,
                    fx.seq(e, e),
                    well_formed_initial=False,
                    cnf_cache=cnf_cache,
                )
                if stats is not None:
                    stats.cnf_cache_hits += res.cnf_cache_hits
                idem = res.equivalent
                fresh[digests[n]] = "1" if idem else "0"
            if not idem:
                all_idem = False
                break
        if fresh:
            store.put_many("idem", list(fresh.items()))
        if all_idem:
            store.put_json(
                "idem_full", full_key, {"idempotent": True, "witness": None}
            )
            return IdempotenceResult(
                idempotent=True,
                witness_fs=None,
                total_seconds=time.perf_counter() - start,
            )

    result = check_idempotence(graph, programs, well_formed_initial=wf)
    store.put_json(
        "idem_full",
        full_key,
        {
            "idempotent": result.idempotent,
            "witness": _fs_to_dict(result.witness_fs),
        },
    )
    return IdempotenceResult(
        idempotent=result.idempotent,
        witness_fs=result.witness_fs,
        total_seconds=time.perf_counter() - start,
    )


# -- determinism-side persistence --------------------------------------------


def _det_options_digest(options) -> str:
    """Digest of every option that can change the determinism result.
    Only ``incremental``/``incremental_dir`` are excluded (cache
    plumbing, not inputs — the verdict contract).  ``timeout_seconds``
    stays in: a run whose budget would have expired must keep raising
    its timeout error row-for-row with a from-scratch run, not get
    rescued by a verdict recorded under a more generous budget."""
    d = dataclasses.asdict(options)
    d.pop("incremental", None)
    d.pop("incremental_dir", None)
    return _blake("opts:" + json.dumps(d, sort_keys=True, default=repr))


class DetIncremental:
    """Store context for one :func:`check_determinism` run.

    Holds the digests that key this manifest's exploration state:

    - ``root_key`` identifies the whole post-pass work set (programs
      after elimination/pruning/simplification, induced edges, modeled
      domains, analysis options).  The ``det_root`` section maps it to
      a complete recorded result — an unchanged work set (e.g. an edit
      to a pruned-away private path) is served without exploring.
    - :meth:`subtree_key` identifies one ``(remaining, state)``
      exploration node; the ``explore`` section maps it to that
      subtree's final-state digests plus the effort counters a
      standalone exploration from there would report.

    Creation is infallible-by-construction: :meth:`create` returns
    None whenever storage is unusable, and every lookup validates the
    entry shape — a damaged record is a miss, never a wrong verdict.
    """

    #: Walks with more distinct exploration nodes than this are not
    #: spilled (quadratic post-pass; such manifests are near the branch
    #: budget anyway).
    SPILL_MAX_NODES = 600

    def __init__(
        self,
        store: IncrementalStore,
        graph: "nx.DiGraph",
        programs: Dict[NodeId, fx.Expr],
        work_graph: "nx.DiGraph",
        work_programs: Dict[NodeId, fx.Expr],
        domains,
        options,
    ):
        self.store = store
        self.graph = graph
        self.programs = programs
        self.domain_digest = domains_digest(domains)
        self.opts_digest = _det_options_digest(options)
        self.work_digests: Dict[NodeId, str] = {
            n: expr_digest(work_programs[n]) for n in work_graph.nodes
        }
        self._edge_list = list(work_graph.edges)
        self.orig_digests = sorted(
            (str(n), expr_digest(programs[n])) for n in graph.nodes
        )
        work_set = sorted(
            (str(n), d) for n, d in self.work_digests.items()
        )
        work_edges = sorted(
            (str(u), str(v)) for u, v in self._edge_list
        )
        self.root_key = _blake(
            "det_root:"
            + self.opts_digest
            + self.domain_digest
            + repr(work_set)
            + repr(work_edges)
        )

    @classmethod
    def create(
        cls,
        graph,
        programs,
        work_graph,
        work_programs,
        domains,
        options,
        store: Optional[IncrementalStore] = None,
    ) -> Optional["DetIncremental"]:
        """``store`` — an already-open handle to reuse (the pipeline
        resolves one per verify, the daemon one per process); without
        it the process-wide registry is consulted per call."""
        if store is None or store.disabled:
            store = open_store(getattr(options, "incremental_dir", None))
        if store is None:
            return None
        return cls(
            store, graph, programs, work_graph, work_programs, domains, options
        )

    # -- exploration subtrees ------------------------------------------------

    def subtree_key(self, remaining: frozenset, state_dig: str) -> str:
        rem = sorted((str(n), self.work_digests[n]) for n in remaining)
        edges = sorted(
            (str(u), str(v))
            for u, v in self._edge_list
            if u in remaining and v in remaining
        )
        return _blake(
            "explore:"
            + self.opts_digest
            + self.domain_digest
            + repr(rem)
            + repr(edges)
            + state_dig
        )

    def lookup_subtree(self, key: str) -> Optional[dict]:
        entry = self.store.get_json("explore", key)
        if entry is None:
            return None
        finals = entry.get("finals")
        if not (
            isinstance(finals, list)
            and finals
            and all(isinstance(f, str) for f in finals)
            and all(
                isinstance(entry.get(k), int)
                for k in ("branches", "memo", "merged")
            )
        ):
            return None
        return entry

    def spill_subtrees(self, items: List[Tuple[str, dict]]) -> None:
        self.store.put_many(
            "explore",
            [(k, json.dumps(v, sort_keys=True)) for k, v in items],
        )

    # -- whole-result cache --------------------------------------------------

    def lookup_root(self):
        """The recorded result for this work set, or None.  Returns a
        fully reconstructed ``DeterminismResult`` — stats verbatim as
        recorded, witnesses/races rebuilt, outcomes re-derived by
        concrete replay of the recorded orders (outcome objects are not
        serialized; replaying the deterministic evaluator reproduces
        them exactly)."""
        from repro.analysis.determinism import (
            DeterminismResult,
            DeterminismStats,
        )

        entry = self.store.get_json("det_root", self.root_key)
        if entry is None or not isinstance(
            entry.get("deterministic"), bool
        ):
            return None
        raw_stats = entry.get("stats")
        if not isinstance(raw_stats, dict):
            return None
        stats = DeterminismStats()
        for f in dataclasses.fields(stats):
            value = raw_stats.get(f.name)
            if isinstance(value, (bool, int, float)):
                setattr(stats, f.name, value)
        if entry["deterministic"]:
            return DeterminismResult(True, stats)
        # Non-deterministic entries carry witness material that was
        # derived from the *original* programs; a different original
        # catalog can reduce to the same work set, so serve only on an
        # exact original match.
        if entry.get("originals") != [list(p) for p in self.orig_digests]:
            return None
        try:
            witness = _fs_from_dict(entry.get("witness"))
        except (KeyError, ValueError, TypeError):
            return None
        if witness is None:
            return None
        orders = entry.get("orders")
        order_pair = None
        outcome_pair = None
        if orders is not None:
            if not (
                isinstance(orders, list)
                and len(orders) == 2
                and all(isinstance(o, list) for o in orders)
            ):
                return None
            progs = {str(n): self.programs[n] for n in self.graph.nodes}
            try:
                outcomes = [
                    eval_expr(seq(*[progs[n] for n in order]), witness)
                    for order in orders
                ]
            except KeyError:
                return None
            order_pair = (list(orders[0]), list(orders[1]))
            outcome_pair = (outcomes[0], outcomes[1])
        raw_race = entry.get("race")
        race = None
        if raw_race is not None:
            if not isinstance(raw_race, dict):
                return None
            try:
                race = RaceReport(
                    resource_a=raw_race["a"],
                    resource_b=raw_race["b"],
                    path=(
                        Path.of(raw_race["path"])
                        if raw_race.get("path") is not None
                        else None
                    ),
                    core_paths=[
                        Path.of(p) for p in raw_race.get("core_paths", [])
                    ],
                    ok_divergence=bool(raw_race.get("ok_divergence")),
                    checks=int(raw_race.get("checks", 0)),
                )
            except (KeyError, ValueError, TypeError):
                return None
        return DeterminismResult(
            False,
            stats,
            witness_fs=witness,
            witness_orders=order_pair,
            witness_outcomes=outcome_pair,
            race=race,
        )

    def record_root(self, result) -> None:
        """Persist a finished result (never errors/budget blowups —
        those are transient, not functions of the manifest)."""
        if result.stats.elimination_fallback:
            # The fallback recursion recorded itself under its own
            # options digest; this key's exploration was discarded.
            return
        entry: dict = {
            "deterministic": bool(result.deterministic),
            "stats": dataclasses.asdict(result.stats),
        }
        if not result.deterministic:
            if result.witness_fs is None:
                return
            entry["originals"] = [list(p) for p in self.orig_digests]
            entry["witness"] = _fs_to_dict(result.witness_fs)
            entry["orders"] = (
                [list(map(str, o)) for o in result.witness_orders]
                if result.witness_orders is not None
                else None
            )
            entry["race"] = (
                {
                    "a": str(result.race.resource_a),
                    "b": str(result.race.resource_b),
                    "path": (
                        str(result.race.path)
                        if result.race.path is not None
                        else None
                    ),
                    "core_paths": [str(p) for p in result.race.core_paths],
                    "ok_divergence": result.race.ok_divergence,
                    "checks": result.race.checks,
                }
                if result.race is not None
                else None
            )
        self.store.put_json("det_root", self.root_key, entry)

    # -- commutativity -------------------------------------------------------

    def commutativity(
        self, footprints: Mapping[NodeId, Footprint]
    ) -> Tuple[Dict[NodeId, Dict[NodeId, bool]], int]:
        return cached_commutativity_matrix(footprints, self.store)
