"""Tests for the repair synthesizer (§9 future work: manifest repair)."""

import pytest

from repro import Rehearsal
from repro.analysis import check_determinism
from repro.analysis.repair import synthesize_repair
from repro.corpus import NONDET_NAMES, load_source
from repro.fs import Path, creat, file_, ite, rm, seq, none_, ERR, ID


def overwrite(path, content):
    p = Path.of(path)
    return ite(
        file_(p),
        seq(rm(p), creat(p, content)),
        ite(none_(p), creat(p, content), ERR),
    )


class TestBasicRepair:
    def test_already_deterministic_needs_nothing(self):
        import networkx as nx

        g = nx.DiGraph()
        programs = {"a": creat("/a", "x"), "b": creat("/b", "y")}
        g.add_nodes_from(programs)
        result = synthesize_repair(g, programs)
        assert result.success
        assert result.added_edges == []

    def test_mkdir_then_file(self):
        """The classic provider/consumer pair: the repair must order
        the directory creator first."""
        import networkx as nx

        from repro.fs import mkdir

        g = nx.DiGraph()
        programs = {"dir": mkdir("/a"), "file": creat("/a/f", "x")}
        g.add_nodes_from(programs)
        result = synthesize_repair(g, programs)
        assert result.success
        assert result.added_edges == [("dir", "file")]

    def test_two_writers_need_an_order(self):
        import networkx as nx

        g = nx.DiGraph()
        programs = {"w1": overwrite("/f", "one"), "w2": overwrite("/f", "two")}
        g.add_nodes_from(programs)
        result = synthesize_repair(g, programs)
        assert result.success
        assert len(result.added_edges) == 1
        repaired = g.copy()
        repaired.add_edges_from(result.added_edges)
        assert check_determinism(repaired, programs).deterministic

    def test_unrepairable_budget(self):
        """With a zero edge budget nothing can be fixed."""
        import networkx as nx

        g = nx.DiGraph()
        programs = {"w1": overwrite("/f", "one"), "w2": overwrite("/f", "two")}
        g.add_nodes_from(programs)
        result = synthesize_repair(g, programs, max_edges=0)
        assert not result.success


class TestCorpusRepair:
    @pytest.mark.parametrize("name", NONDET_NAMES)
    def test_repairs_every_nondet_benchmark(self, name):
        """The synthesizer rediscovers the fixes the paper's authors
        wrote by hand for all six buggy benchmarks."""
        tool = Rehearsal()
        graph, programs = tool.compile(load_source(name))
        result = synthesize_repair(graph, programs, max_edges=4)
        assert result.success, f"could not repair {name}"
        assert 1 <= len(result.added_edges) <= 4
        repaired = graph.copy()
        repaired.add_edges_from(result.added_edges)
        assert check_determinism(repaired, programs).deterministic

    def test_repair_direction_is_sensible_for_ntp(self):
        """ntp-nondet's fix must order the package before the file."""
        tool = Rehearsal()
        graph, programs = tool.compile(load_source("ntp-nondet"))
        result = synthesize_repair(graph, programs)
        assert result.success
        (src, dst), *_ = result.added_edges
        assert "Package" in str(src)
        assert "File" in str(dst)
