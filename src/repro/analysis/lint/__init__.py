"""Rehearsal lint: the catalog-level static analyzer (SAT-free).

Public surface::

    from repro.analysis.lint import LintOptions, lint_source
    report = lint_source(open("site.pp").read(), name="site.pp")
    print(report.render())      # human text
    report.to_dict()            # --format json / verify-batch rows
    render_sarif(report)        # --format sarif (SARIF 2.1.0)
"""

from repro.analysis.lint.diagnostics import (
    Diagnostic,
    LintReport,
    LintStats,
    RaceWitness,
    Related,
    Severity,
)
from repro.analysis.lint.engine import (
    RULES,
    LintContext,
    LintOptions,
    Rule,
    lint_graph,
    lint_source,
)
from repro.analysis.lint.sarif import render_sarif, to_sarif

# Importing the package fully populates the registry: RULES must list
# the whole catalogue even before the first lint_source() call.
import repro.analysis.lint.rules  # noqa: E402,F401  (registration side effect)

__all__ = [
    "Diagnostic",
    "LintContext",
    "LintOptions",
    "LintReport",
    "LintStats",
    "RaceWitness",
    "Related",
    "Rule",
    "RULES",
    "Severity",
    "lint_graph",
    "lint_source",
    "render_sarif",
    "to_sarif",
]
