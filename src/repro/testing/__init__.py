"""Differential fuzzing: generator, concrete oracle, driver, shrinker.

The subsystem behind ``rehearsal fuzz`` (and the nightly CI fuzz job):

* :mod:`repro.testing.generate` — seeded random resource catalogs;
* :mod:`repro.testing.oracle` — concrete all-interleavings reference
  executor, the ground truth the symbolic pipeline is diffed against;
* :mod:`repro.testing.differential` — the driver that runs both and
  classifies disagreements;
* :mod:`repro.testing.shrink` — delta-debugging minimizer;
* :mod:`repro.testing.regressions` — the committed-reproducer format
  shared by ``tests/regressions/`` and ``tools/check_regressions.py``;
* :mod:`repro.testing.replay` — single-reproducer replay through the
  differential pipeline (``rehearsal fuzz --replay``, and the burn-in
  executor);
* :mod:`repro.testing.orchestrate` — fleet test orchestration:
  dependency-aware selection, SPRT burn-in promotion, results database
  and HTML/DAG reporting (see docs/testing.md).

Like :mod:`repro` itself, this package init is lazy (PEP 562): the
``_LAZY_EXPORTS`` table below is a static literal the test-selection
import scanner resolves, so ``from repro.testing import run_oracle``
depends on :mod:`repro.testing.oracle` alone — not on the shrinker,
the generator, and everything they import.
"""

from importlib import import_module

#: name -> defining module (parsed by the testmap import scanner).
_LAZY_EXPORTS = {
    "BUG_CLASSES": "repro.testing.generate",
    "CASES_PER_SECOND": "repro.testing.differential",
    "CaseGenerator": "repro.testing.generate",
    "CaseOutcome": "repro.testing.differential",
    "Disagreement": "repro.testing.differential",
    "Finding": "repro.testing.differential",
    "FuzzSession": "repro.testing.differential",
    "FuzzSummary": "repro.testing.differential",
    "GENERATOR_VERSION": "repro.testing.generate",
    "GeneratedCase": "repro.testing.generate",
    "GeneratorConfig": "repro.testing.generate",
    "MAX_ORACLE_RESOURCES": "repro.testing.oracle",
    "OracleReport": "repro.testing.oracle",
    "RacingPair": "repro.testing.oracle",
    "ReplayResult": "repro.testing.replay",
    "ResourceSpec": "repro.testing.generate",
    "initial_state_family": "repro.testing.oracle",
    "racing_pairs": "repro.testing.oracle",
    "replay_file": "repro.testing.replay",
    "run_oracle": "repro.testing.oracle",
    "run_source": "repro.testing.differential",
    "shrink_case": "repro.testing.shrink",
}

__all__ = sorted(_LAZY_EXPORTS)


def __getattr__(name):
    target = _LAZY_EXPORTS.get(name)
    if target is not None:
        return getattr(import_module(target), name)
    qualified = f"{__name__}.{name}"
    try:
        return import_module(qualified)
    except ModuleNotFoundError as exc:
        if exc.name == qualified:
            raise AttributeError(
                f"module {__name__!r} has no attribute {name!r}"
            ) from None
        raise


def __dir__():
    return sorted(set(globals()) | set(__all__))
