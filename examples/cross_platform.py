#!/usr/bin/env python3
"""Cross-platform verification (the paper's §8 closing suggestion).

Puppet manifests branch on facts like ``$osfamily``, so a manifest can
be correct on the platform it was tested on and broken everywhere
else.  The paper's artifact re-verifies per platform; this example
uses the bundled platform profiles (Ubuntu and CentOS facts + package
databases) to audit one manifest across both at once and highlight
divergent verdicts.

Run:  python examples/cross_platform.py
"""

from repro.core.platforms import verify_across_platforms

PORTABLE = """
case $osfamily {
  'Debian': { $web = 'nginx'  $conf = '/etc/nginx/nginx.conf' }
  'RedHat': { $web = 'httpd'  $conf = '/etc/httpd/conf/httpd.conf' }
  default:  { fail('unsupported platform') }
}

package{$web: ensure => present }

file{$conf:
  content => 'keepalive_timeout 65;',
  require => Package[$web],
}
"""

HALF_FIXED = """
package{'ntp': ensure => present }

if $osfamily == 'Debian' {
  file{'/etc/ntp.conf':
    content => 'server 0.pool.ntp.org',
    require => Package['ntp'],
  }
} else {
  # The RedHat branch was never tested: the dependency is missing.
  file{'/etc/ntp.conf': content => 'server 0.pool.ntp.org' }
}

service{'ntpd': ensure => running, subscribe => File['/etc/ntp.conf'] }
"""


def audit(name: str, source: str) -> None:
    print(f"=== {name} ===")
    report = verify_across_platforms(source)
    for platform, rep in sorted(report.reports.items()):
        if rep.error:
            print(f"  {platform:<8} ERROR: {rep.error}")
        else:
            print(
                f"  {platform:<8} deterministic={rep.deterministic} "
                f"idempotent={rep.idempotent}"
            )
    if report.consistent:
        print("  -> consistent across platforms")
    else:
        print("  -> PLATFORM-DEPENDENT BEHAVIOUR:")
        for line in report.divergences():
            print(f"     {line}")
    print()


def main() -> None:
    audit("portable web server", PORTABLE)
    audit("half-fixed ntp (Debian-only fix)", HALF_FIXED)


if __name__ == "__main__":
    main()
