"""Variable scoping for the Puppet evaluator.

The model follows Puppet's modern scoping rules: a top scope, plus one
local scope per class instance / define instance / node block.  Lookup
is local → top (no dynamic scoping).  Qualified names reach other
scopes explicitly: ``$::x`` is top scope, ``$nginx::port`` reads class
``nginx``'s scope.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import PuppetEvalError
from repro.puppet.values import Value


class Scope:
    def __init__(self, name: str, parent: Optional["Scope"] = None):
        self.name = name
        self.parent = parent
        self._bindings: Dict[str, Value] = {}

    def define(self, name: str, value: Value) -> None:
        if name in self._bindings:
            raise PuppetEvalError(
                f"cannot reassign variable ${name} in scope {self.name!r} "
                "(Puppet variables are single-assignment)"
            )
        self._bindings[name] = value

    def lookup_local(self, name: str) -> Optional[Value]:
        return self._bindings.get(name)

    def has_local(self, name: str) -> bool:
        return name in self._bindings

    def lookup(self, name: str) -> Optional[Value]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope._bindings:
                return scope._bindings[name]
            scope = scope.parent
        return None

    def has(self, name: str) -> bool:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope._bindings:
                return True
            scope = scope.parent
        return False


class ScopeStack:
    """Top scope plus named class scopes and a current-scope pointer."""

    def __init__(self) -> None:
        self.top = Scope("::")
        self.class_scopes: Dict[str, Scope] = {}
        self.current = self.top

    def class_scope(self, class_name: str) -> Scope:
        scope = self.class_scopes.get(class_name)
        if scope is None:
            scope = Scope(class_name, parent=self.top)
            self.class_scopes[class_name] = scope
        return scope

    def resolve(self, name: str) -> Value:
        """Resolve a possibly-qualified variable name; missing
        variables resolve to undef (None) as in Puppet."""
        if name.startswith("::"):
            bare = name[2:]
            if "::" in bare:
                cls, _, var = bare.rpartition("::")
                scope = self.class_scopes.get(cls)
                return scope.lookup_local(var) if scope else None
            return self.top.lookup_local(bare)
        if "::" in name:
            cls, _, var = name.rpartition("::")
            scope = self.class_scopes.get(cls)
            return scope.lookup_local(var) if scope else None
        return self.current.lookup(name)
