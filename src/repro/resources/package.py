"""FS model for the ``package`` resource type (§3.3 "Packages").

A package is modeled from its file listing (via
:class:`~repro.resources.package_db.PackageDatabase`): installation
creates the directory tree with guarded mkdirs (the §4.3 idiom), then
creates every file with a unique content, then an installed marker
under ``/var/lib/pkg``.  Removal deletes files and the marker.

Dependency behaviour mirrors apt (and reproduces Fig. 3c):

* installing a package first installs its dependency closure;
* removing a package first removes its reverse-dependency closure.

Both actions are guarded on the marker, so an installed package's
resource is a no-op — Puppet "checks which packages are installed
before it issues any commands".
"""

from __future__ import annotations

from typing import Iterable, List

from repro.errors import ResourceModelError
from repro.fs import (
    Expr,
    ID,
    Path,
    creat,
    file_,
    ite,
    pnot,
    rm,
    seq,
)
from repro.resources.base import Resource, ensure_directory_tree
from repro.resources.package_db import MARKER_ROOT, PackageDatabase, PackageInfo

_INSTALL_ENSURES = {"present", "installed", "latest", "held"}
_REMOVE_ENSURES = {"absent", "purged"}


def marker_path(name: str) -> Path:
    return MARKER_ROOT.child(name)


def file_content_for(pkg: str, path: Path) -> str:
    """Every file in a package gets a unique content (§3.3): sound but
    conservative — identical re-writes by other resources are reported
    as conflicts, which the paper argues indicates a likely mistake."""
    return f"pkg:{pkg}:{path}"


def compile_package(resource: Resource, context) -> Expr:
    name = resource.get_str("name") or resource.title
    ensure = (resource.get_str("ensure") or "present").lower()
    db: PackageDatabase = context.package_db
    snapshot = getattr(context, "package_semantics", "direct") == "snapshot"
    if ensure in _INSTALL_ENSURES:
        if snapshot:
            from repro.resources.snapshot import install_with_snapshot

            return install_with_snapshot(db, name)
        closure = db.install_closure(name)
        return seq(*[_install_one(info) for info in closure])
    if ensure in _REMOVE_ENSURES:
        if snapshot:
            from repro.resources.snapshot import remove_with_snapshot

            return remove_with_snapshot(db, name)
        dependents = db.reverse_dependents(name)
        steps = [_remove_one(info) for info in dependents]
        steps.append(_remove_one(db.lookup(name)))
        return seq(*steps)
    raise ResourceModelError(
        f"{resource.ref}: unsupported ensure => {ensure!r}"
    )


def _install_tree(info: PackageInfo) -> Expr:
    """Guarded mkdirs for the package's directory tree.  Ensured even
    when the package is already installed: an installed package implies
    its directories exist, which keeps manifests deterministic on
    initial states where the marker is present but the tree is not (and
    keeps the idempotent D-footprint of §4.3 for shared directories)."""
    files = info.file_paths()
    return ensure_directory_tree(files + [marker_path(info.name)])


def _install_body(info: PackageInfo) -> Expr:
    """Marker-guarded file creation (assumes the tree is ensured)."""
    marker = marker_path(info.name)
    files = info.file_paths()
    body = seq(
        *[creat(p, file_content_for(info.name, p)) for p in sorted(files)],
        creat(marker, f"installed:{info.name}"),
    )
    return ite(file_(marker), ID, body)


def _install_one(info: PackageInfo) -> Expr:
    return seq(_install_tree(info), _install_body(info))


def _remove_one(info: PackageInfo) -> Expr:
    marker = marker_path(info.name)
    steps: List[Expr] = []
    for p in sorted(info.file_paths()):
        steps.append(ite(file_(p), rm(p)))
    steps.append(rm(marker))
    return ite(file_(marker), seq(*steps), ID)
