"""Idempotence checking (paper §5).

Once a manifest is known deterministic, any valid ordering of its
resources denotes *the* function of the manifest, so sequencing one
topological order gives a single expression ``e`` and idempotence is
simply ``e ≡ e; e``.  Running this on a non-deterministic manifest
would be unsound, which is why the pipeline gates it on the
determinacy result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Sequence

import networkx as nx

from repro.analysis.equivalence import EquivalenceResult, check_equivalence
from repro.fs import FileSystem
from repro.fs import syntax as fx

NodeId = Hashable


@dataclass
class IdempotenceResult:
    idempotent: bool
    witness_fs: Optional[FileSystem] = None
    total_seconds: float = 0.0

    def __bool__(self) -> bool:
        return self.idempotent


def check_idempotence_expr(
    e: fx.Expr, well_formed_initial: bool = True
) -> IdempotenceResult:
    """``e ≡ e; e`` for a single expression."""
    start = time.perf_counter()
    result = check_equivalence(
        e, fx.seq(e, e), well_formed_initial=well_formed_initial
    )
    return IdempotenceResult(
        idempotent=result.equivalent,
        witness_fs=result.witness_fs,
        total_seconds=time.perf_counter() - start,
    )


def check_idempotence(
    graph: "nx.DiGraph",
    programs: Dict[NodeId, fx.Expr],
    well_formed_initial: bool = True,
) -> IdempotenceResult:
    """Idempotence of a *deterministic* resource graph: sequence any
    topological order and check ``e ≡ e; e``."""
    order = list(nx.topological_sort(graph))
    e = fx.seq(*[programs[n] for n in order])
    return check_idempotence_expr(e, well_formed_initial)
