"""Light structural simplification of formula DAGs.

The :class:`~repro.logic.terms.TermBank` already constant-folds during
construction; this module adds a few rewrites used when formulas are
assembled from pre-built pieces: unit propagation of top-level literals
through a conjunction and substitution of variables by constants.
"""

from __future__ import annotations

from typing import Dict

from repro.logic.terms import Term, TermBank


def substitute(
    bank: TermBank, t: Term, bindings: Dict[str, bool]
) -> Term:
    """Replace variables by boolean constants, re-simplifying."""
    memo: Dict[int, Term] = {}

    def go(node: Term) -> Term:
        cached = memo.get(node.uid)
        if cached is not None:
            return cached
        if node.kind == "var":
            if node.name in bindings:
                out = bank.const(bindings[node.name])
            else:
                out = node
        elif node.kind == "not":
            out = bank.not_(go(node.args[0]))
        elif node.kind == "and":
            out = bank.and_(*[go(a) for a in node.args])
        elif node.kind == "or":
            out = bank.or_(*[go(a) for a in node.args])
        else:
            out = node
        memo[node.uid] = out
        return out

    return go(t)


def propagate_units(bank: TermBank, t: Term) -> Term:
    """If ``t`` is a conjunction containing literals, substitute them
    into the remaining conjuncts.  Helps shrink determinism queries
    where many exactly-one constraints pin variables."""
    if t.kind != "and":
        return t
    bindings: Dict[str, bool] = {}
    rest = []
    for arg in t.args:
        if arg.kind == "var":
            bindings[arg.name] = True
        elif arg.kind == "not" and arg.args[0].kind == "var":
            bindings[arg.args[0].name] = False
        else:
            rest.append(arg)
    if not bindings:
        return t
    new_rest = [substitute(bank, r, bindings) for r in rest]
    units = [
        bank.var(name) if value else bank.not_(bank.var(name))
        for name, value in bindings.items()
    ]
    return bank.and_(*(units + new_rest))
