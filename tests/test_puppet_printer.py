"""Round-trip property: ``parse(print(ast)) == ast``.

The unparser and parser are mutual inverses at the AST level (surface
syntax may normalize — quoting style, parentheses — but the tree must
be preserved exactly).  Hypothesis generates random ASTs from composed
strategies mirroring the grammar.
"""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.puppet import ast_nodes as ast
from repro.puppet.parser import parse_manifest
from repro.puppet.printer import print_manifest

# -- strategies ---------------------------------------------------------------

lower_names = st.text(
    alphabet=string.ascii_lowercase, min_size=1, max_size=8
)
type_names = lower_names.map(lambda s: s)  # resource type names
cap_names = lower_names.map(lambda s: s.capitalize())
var_names = lower_names
safe_text = st.text(
    alphabet=string.ascii_letters + string.digits + "/._- ",
    min_size=0,
    max_size=12,
)

literals = st.one_of(
    st.just(ast.Literal(None)),
    st.booleans().map(ast.Literal),
    st.integers(min_value=0, max_value=9999).map(ast.Literal),
    safe_text.map(ast.Literal),
)


def exprs(depth=2):
    base = st.one_of(
        literals,
        var_names.map(ast.VariableRef),
        st.tuples(cap_names, safe_text).map(
            lambda t: ast.ResourceRefExpr(t[0], (ast.Literal(t[1]),))
        ),
    )
    if depth == 0:
        return base
    sub = exprs(depth - 1)
    return st.one_of(
        base,
        st.lists(sub, min_size=0, max_size=3).map(
            lambda items: ast.ArrayLit(tuple(items))
        ),
        st.tuples(
            st.sampled_from(["==", "!=", "+", "and", "or", "in", "<"]),
            sub,
            sub,
        ).map(lambda t: ast.BinaryOp(t[0], t[1], t[2])),
        sub.map(lambda e: ast.UnaryOp("!", e)),
        st.tuples(sub, sub, sub).map(
            lambda t: ast.Selector(
                t[0], ((t[1], t[2]), (None, ast.Literal("d")))
            )
        ),
    )


attributes = st.lists(
    st.tuples(lower_names, exprs(1)).map(
        lambda t: ast.AttributeDef(t[0], t[1])
    ),
    min_size=0,
    max_size=3,
    unique_by=lambda a: a.name,
).map(tuple)

resource_decls = st.tuples(
    lower_names, safe_text, attributes, st.booleans()
).map(
    lambda t: ast.ResourceDecl(
        rtype=t[0],
        bodies=(ast.ResourceBody(ast.Literal(t[1]), t[2]),),
        virtual=t[3],
    )
)

assignments = st.tuples(var_names, exprs(2)).map(
    lambda t: ast.Assignment(name=t[0], value=t[1])
)

includes = st.lists(lower_names, min_size=1, max_size=3, unique=True).map(
    lambda names: ast.IncludeStatement(names=tuple(names))
)

chains = st.tuples(cap_names, safe_text, cap_names, safe_text).map(
    lambda t: ast.ChainStatement(
        operands=(
            ast.ResourceRefExpr(t[0], (ast.Literal(t[1]),)),
            ast.ResourceRefExpr(t[2], (ast.Literal(t[3]),)),
        ),
        arrows=("->",),
    )
)


def statements(depth=1):
    base = st.one_of(resource_decls, assignments, includes, chains)
    if depth == 0:
        return base
    sub = st.lists(statements(depth - 1), min_size=0, max_size=2).map(tuple)
    ifs = st.tuples(exprs(1), sub, sub).map(
        lambda t: ast.IfStatement(
            branches=((t[0], t[1]), (None, t[2]))
        )
    )
    defines = st.tuples(
        lower_names,
        st.lists(
            st.tuples(var_names, st.none() | exprs(0)),
            min_size=0,
            max_size=2,
            unique_by=lambda p: p[0],
        ).map(tuple),
        sub,
    ).map(lambda t: ast.DefineDecl(name=t[0], params=t[1], body=t[2]))
    classes = st.tuples(lower_names, sub).map(
        lambda t: ast.ClassDecl(name=t[0], body=t[1])
    )
    return st.one_of(base, ifs, defines, classes)


manifests = st.lists(statements(2), min_size=0, max_size=4).map(
    lambda stmts: ast.Manifest(tuple(stmts))
)

# -- tests -----------------------------------------------------------------------


KEYWORDS = {
    "define", "class", "node", "inherits", "if", "elsif", "else",
    "unless", "case", "default", "true", "false", "undef", "and", "or",
    "in", "include", "require",
}


def _uses_keyword_badly(manifest: ast.Manifest) -> bool:
    """Generated names colliding with keywords would not round-trip."""

    def bad_name(name: str) -> bool:
        return name in KEYWORDS

    def check_stmt(stmt) -> bool:
        if isinstance(stmt, ast.ResourceDecl):
            return bad_name(stmt.rtype) or any(
                any(bad_name(a.name) for a in b.attributes)
                for b in stmt.bodies
            )
        if isinstance(stmt, ast.Assignment):
            return False
        if isinstance(stmt, ast.IncludeStatement):
            return any(bad_name(n) for n in stmt.names)
        if isinstance(stmt, (ast.DefineDecl, ast.ClassDecl)):
            return bad_name(stmt.name) or any(
                check_stmt(s) for s in stmt.body
            )
        if isinstance(stmt, ast.IfStatement):
            return any(
                check_stmt(s) for _, body in stmt.branches for s in body
            )
        return False

    return any(check_stmt(s) for s in manifest.statements)


class TestRoundTrip:
    @given(manifests)
    @settings(max_examples=200, deadline=None)
    def test_parse_print_roundtrip(self, manifest):
        if _uses_keyword_badly(manifest):
            return
        source = print_manifest(manifest)
        reparsed = parse_manifest(source)
        assert reparsed == manifest, f"surface:\n{source}"

    def test_concrete_roundtrip(self):
        source = """
        define myuser($shell = '/bin/bash') {
          user{"$title": ensure => present }
        }
        class base inherits core {
          $x = 4 + 2
          include tools, extras
        }
        if $osfamily == 'Debian' { package{'apt': } }
        else { package{'yum': } }
        @user{'carol': ensure => present }
        Package['a'] -> File['/f']
        File { owner => 'root' }
        """
        first = parse_manifest(source)
        second = parse_manifest(print_manifest(first))
        assert first == second

    def test_collector_roundtrip(self):
        source = "File <| owner == 'carol' |> { mode => 'go-rwx' }"
        first = parse_manifest(source)
        second = parse_manifest(print_manifest(first))
        assert first == second

    def test_case_roundtrip(self):
        source = """
        case $os {
          'a', 'b': { $x = 1 }
          default: { $x = 2 }
        }
        """
        first = parse_manifest(source)
        second = parse_manifest(print_manifest(first))
        assert first == second

    def test_selector_roundtrip(self):
        source = "$x = $y ? { 'a' => 1, default => 2 }"
        first = parse_manifest(source)
        second = parse_manifest(print_manifest(first))
        assert first == second
