# rehearsal-fuzz reproducer
# seed: 42
# case-id: 2
# generator-version: 1
# bug-class: missing-pkg-dep
# found-by: sabotage-drill
# disagreement: missed_nondet
# expected-deterministic: false
# expected-idempotent: none

ssh_authorized_key {
  'bob-key':
    key => 'AAAAbob',
    user => 'bob',
}
host {
  'node1':
    ip => '192.168.0.5',
}
