"""Fig. 13 — scalability against n unordered conflicting writes.

n resources all overwrite the same path, defeating both the
commutativity check and pruning; the checker must explore the full
n! permutation space.  Expected shape: super-linear (factorial)
growth in n — the paper reports >2 minutes at n = 6 on Z3; the
absolute wall at a given n depends on the solver, the growth curve is
the reproduction target.

The second group reproduces the paper's harder deterministic variant:
a final resource ordered after all writers forces a full
unsatisfiability proof instead of an early satisfying model.
"""

import pytest

from repro.analysis.determinism import DeterminismOptions, check_determinism
from repro.bench.harness import conflicting_write, synthetic_conflict_graph


@pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
def test_fig13_conflicting_writes(benchmark, bench_timeout, n):
    graph, programs = synthetic_conflict_graph(n)
    options = DeterminismOptions(
        timeout_seconds=bench_timeout, max_branches=500_000
    )

    result = benchmark.pedantic(
        check_determinism,
        args=(graph, programs),
        kwargs={"options": options},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["n"] = n
    assert not result.deterministic
    benchmark.extra_info["branches"] = result.stats.branches_explored


@pytest.mark.parametrize("n", [2, 3, 4, 5])
def test_fig13_deterministic_variant(benchmark, bench_timeout, n):
    graph, programs = synthetic_conflict_graph(n)
    programs = dict(programs)
    programs["final"] = conflicting_write("/shared", "x")
    graph.add_node("final")
    for i in range(n):
        graph.add_edge(f"w{i}", "final")
    options = DeterminismOptions(
        timeout_seconds=bench_timeout, max_branches=500_000
    )

    result = benchmark.pedantic(
        check_determinism,
        args=(graph, programs),
        kwargs={"options": options},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["n"] = n
    assert result.deterministic
