"""Batch-verification service: verify fleets of manifests in parallel
behind a content-addressed verdict cache.

* :class:`BatchVerifier` / :func:`verify_batch` — the orchestrator
  (directory or path list → :class:`BatchReport`).
* :class:`VerdictCache` — SHA-256-keyed verdict store with
  corrupted-entry recovery.
* :class:`ManifestResult`, :class:`BatchReport` — the machine-readable
  run-report schema (``rehearsal verify-batch --json``).
* :class:`TieredVerdictCache` — in-process LRU over the on-disk
  verdict store (the daemon's hot tier).
* :mod:`repro.service.daemon` — the resident HTTP service behind
  ``rehearsal serve`` (imported lazily: it pulls in asyncio and is
  only needed by the daemon entry points).
"""

from repro.service.cache import (
    VerdictCache,
    cache_key,
    default_cache_dir,
    source_digest,
)
from repro.service.tiered import TieredVerdictCache
from repro.service.orchestrator import (
    BatchVerifier,
    discover_manifests,
    verify_batch,
)
from repro.service.schema import (
    BatchReport,
    CacheStats,
    ManifestResult,
    batch_table_rows,
    normalized_row,
    normalized_rows,
)

__all__ = [
    "BatchReport",
    "BatchVerifier",
    "CacheStats",
    "ManifestResult",
    "TieredVerdictCache",
    "VerdictCache",
    "batch_table_rows",
    "cache_key",
    "default_cache_dir",
    "discover_manifests",
    "normalized_row",
    "normalized_rows",
    "source_digest",
    "verify_batch",
]
