"""Pruning definitive writes (paper §4.4, Fig. 10a).

``prune(p, e)`` removes every write to ``p`` from ``e``, replacing each
write by its precondition check and partially evaluating subsequent
reads of ``p`` against the value the removed write would have left.
The path then stays read-only throughout the program, which lets the
encoding use a single variable for it (its initial-state variable).

Knowledge about ``p`` is threaded per control-flow branch:

* ``_INITIAL`` — ``p`` still holds its initial value; reads stay as
  syntactic predicates (they read the read-only variable);
* a known value (``dir``/``dne``/``file(c)``) — reads fold to
  constants;
* ``_TAINTED`` — branches merged with different knowledge; a further
  read cannot be folded, so pruning *bails out* (returns None) rather
  than produce an unsound program.

The manifest-level pass (:func:`prune_manifest`) selects prunable paths
per the paper: each path definitively written by exactly one resource
and not observed or affected by any other, with the guard-privacy side
condition explained in :mod:`repro.analysis.definitive`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.commutativity import footprint
from repro.analysis.definitive import (
    A_DIR,
    A_DNE,
    AFile,
    ADir,
    ADne,
    TOP,
    WriteProfile,
    analyze_definitive,
)
from repro.fs import syntax as fx
from repro.fs.domain import is_fresh_witness
from repro.fs.paths import Path


class _Initial:
    def __repr__(self) -> str:
        return "initial"


class _Tainted:
    def __repr__(self) -> str:
        return "tainted"


_INITIAL = _Initial()
_TAINTED = _Tainted()
Knowledge = Union[_Initial, _Tainted, ADir, ADne, AFile]


class _Bail(Exception):
    """Pruning cannot proceed soundly for this path."""


def prune(path: Path, e: fx.Expr) -> Optional[fx.Expr]:
    """Remove writes to ``path`` from ``e``; None if not possible."""
    try:
        pruned, _ = _go(e, path, _INITIAL)
    except _Bail:
        return None
    return pruned


def _go(
    e: fx.Expr, p: Path, k: Knowledge
) -> Tuple[fx.Expr, Knowledge]:
    if isinstance(e, (fx.Id, fx.Err)):
        return e, k
    if isinstance(e, fx.Mkdir):
        if e.path != p:
            # Creating a child of p reads p (the parent check): only
            # sound while p still holds its initial value.
            if e.path.parent() == p and k is not _INITIAL:
                raise _Bail()
            return e, k
        if isinstance(k, (ADir, ADne, AFile)):
            if isinstance(k, ADne):
                # Precondition reduces to the parent check.
                return (
                    fx.ite(fx.dir_(p.parent()), fx.ID, fx.ERR),
                    A_DIR,
                )
            return fx.ERR, k  # target exists: mkdir always fails
        if k is _TAINTED:
            raise _Bail()
        check = fx.pand(fx.none_(p), fx.dir_(p.parent()))
        return fx.ite(check, fx.ID, fx.ERR), A_DIR
    if isinstance(e, fx.Creat):
        if e.path != p:
            if e.path.parent() == p and k is not _INITIAL:
                raise _Bail()
            return e, k
        if isinstance(k, (ADir, ADne, AFile)):
            if isinstance(k, ADne):
                return (
                    fx.ite(fx.dir_(p.parent()), fx.ID, fx.ERR),
                    AFile(e.content),
                )
            return fx.ERR, k
        if k is _TAINTED:
            raise _Bail()
        check = fx.pand(fx.none_(p), fx.dir_(p.parent()))
        return fx.ite(check, fx.ID, fx.ERR), AFile(e.content)
    if isinstance(e, fx.Rm):
        if e.path != p:
            # rm of p's parent observes p's existence (the emptiness
            # check): only sound while p holds its initial value.
            if e.path == p.parent() and k is not _INITIAL:
                raise _Bail()
            return e, k
        if isinstance(k, (ADir, ADne, AFile)):
            if isinstance(k, ADne):
                return fx.ERR, k
            if isinstance(k, AFile):
                return fx.ID, A_DNE
            # Known dir from a *removed* mkdir: emptiness would have to
            # be tested without the dir-ness conjunct, which FS cannot
            # express — bail rather than consult the stale real path.
            raise _Bail()
        if k is _TAINTED:
            raise _Bail()
        check = fx.por(fx.file_(p), fx.emptydir_(p))
        return fx.ite(check, fx.ID, fx.ERR), A_DNE
    if isinstance(e, fx.Cp):
        if e.dst == p:
            if k is _TAINTED:
                raise _Bail()
            none_check = (
                fx.TRUE
                if isinstance(k, ADne)
                else (fx.FALSE if isinstance(k, (ADir, AFile)) else fx.none_(p))
            )
            check = fx.pand(
                fx.file_(e.src), none_check, fx.dir_(p.parent())
            )
            # The copied content is the source's — not statically known.
            return fx.ite(check, fx.ID, fx.ERR), _TAINTED
        if e.src == p:
            # A read of the content: only foldable knowledge would be a
            # known file value, but cp still copies real content, so
            # the source read must survive; that is fine unless the
            # knowledge came from removed writes.
            if k is _INITIAL:
                return e, k
            raise _Bail()
        if e.dst.parent() == p and k is not _INITIAL:
            raise _Bail()
        return e, k
    if isinstance(e, fx.Seq):
        first, k1 = _go(e.first, p, k)
        second, k2 = _go(e.second, p, k1)
        return fx.seq(first, second), k2
    if isinstance(e, fx.If):
        folded = _fold_pred(e.pred, p, k)
        if folded is fx.TRUE:
            return _go(e.then_branch, p, k)
        if folded is fx.FALSE:
            return _go(e.else_branch, p, k)
        then_e, k1 = _go(e.then_branch, p, k)
        else_e, k2 = _go(e.else_branch, p, k)
        merged = k1 if _same_knowledge(k1, k2) else _TAINTED
        return fx.ite(folded, then_e, else_e), merged
    raise TypeError(f"unknown expression: {e!r}")


def _same_knowledge(a: Knowledge, b: Knowledge) -> bool:
    if a is b:
        return True
    return a == b and type(a) is type(b)


def _fold_pred(pred: fx.Pred, p: Path, k: Knowledge) -> fx.Pred:
    """Replace atoms about ``p`` with constants when knowledge allows.

    With ``_INITIAL`` knowledge atoms are kept (they read the
    read-only initial value).  With ``_TAINTED`` knowledge any atom
    about ``p`` forces a bail."""
    if isinstance(pred, (fx.PTrue, fx.PFalse)):
        return pred
    if isinstance(pred, fx.PNot):
        inner = _fold_pred(pred.inner, p, k)
        return fx.pnot(inner)
    if isinstance(pred, fx.PAnd):
        return fx.pand(
            _fold_pred(pred.left, p, k), _fold_pred(pred.right, p, k)
        )
    if isinstance(pred, fx.POr):
        return fx.por(
            _fold_pred(pred.left, p, k), _fold_pred(pred.right, p, k)
        )
    # Atomic predicates.
    target = pred.path  # type: ignore[attr-defined]
    involves_p = target == p or (
        isinstance(pred, fx.IsEmptyDir) and target.is_ancestor_of(p)
    )
    if not involves_p:
        return pred
    if k is _INITIAL:
        return pred
    if k is _TAINTED:
        raise _Bail()
    if isinstance(pred, fx.IsEmptyDir) and target != p:
        # Emptiness of an ancestor observes p; p's state is known but
        # partially folding emptydir? is not expressible — bail.
        raise _Bail()
    return _fold_atom(pred, k)


def _fold_atom(pred: fx.Pred, k: Knowledge) -> fx.Pred:
    assert isinstance(k, (ADir, ADne, AFile))
    if isinstance(pred, fx.IsNone):
        return fx.TRUE if isinstance(k, ADne) else fx.FALSE
    if isinstance(pred, fx.IsDir):
        return fx.TRUE if isinstance(k, ADir) else fx.FALSE
    if isinstance(pred, fx.IsFile):
        return fx.TRUE if isinstance(k, AFile) else fx.FALSE
    if isinstance(pred, fx.IsFileWith):
        if isinstance(k, AFile):
            return fx.TRUE if k.content == pred.content else fx.FALSE
        return fx.FALSE
    if isinstance(pred, fx.IsEmptyDir):
        if isinstance(k, (ADne, AFile)):
            return fx.FALSE
        # Known dir: emptiness still depends on (unpruned) children.
        raise _Bail()
    raise TypeError(f"unknown atomic predicate: {pred!r}")


# ---------------------------------------------------------------------------
# Manifest-level pruning pass
# ---------------------------------------------------------------------------


@dataclass
class PruneReport:
    """What the pass did — feeds the Fig. 11a instrumentation.

    ``paths_before``/``paths_after`` count the full logical domain
    (reads keep pruned paths alive as read-only, single-variable
    state).  ``stateful_before``/``stateful_after`` count paths some
    resource still *writes* — the quantity whose reduction drives the
    Fig. 11 speedups.  ``writers_by_path`` maps every surviving
    stateful path to the indices of the resources writing it — the
    contention-candidate view of a manifest: paths with two or more
    writers are the ones the unsat-core localization
    (:mod:`repro.analysis.localize`) can end up naming, and a pruned
    path by construction never appears with more than one writer."""

    pruned_paths: List[Path]
    paths_before: int
    paths_after: int
    stateful_before: int = 0
    stateful_after: int = 0
    writers_by_path: Dict[Path, List[int]] = field(default_factory=dict)


def prune_manifest(
    exprs: Sequence[fx.Expr],
) -> Tuple[List[fx.Expr], PruneReport]:
    """Prune every path that is (a) written definitively by exactly one
    resource, (b) untouched by every other resource, and (c) guarded
    only by paths private to that resource (see module docstring)."""
    from repro.fs.domain import domain_of

    exprs = list(exprs)
    prints = [footprint(e) for e in exprs]
    touched_by: Dict[Path, List[int]] = {}
    for i, fp in enumerate(prints):
        for p in fp.touched():
            touched_by.setdefault(p, []).append(i)
        for d in fp.children_reads:
            # Observing d's children touches every modeled descendant.
            touched_by.setdefault(d, []).append(i)

# Children observation: resource i reading children of d observes
    # every path under d.
    children_observers: List[Tuple[Path, int]] = []
    for i, fp in enumerate(prints):
        for d in fp.children_reads:
            children_observers.append((d, i))

    def observers_of(p: Path) -> set[int]:
        out = set(touched_by.get(p, ()))
        for d, i in children_observers:
            if d.is_ancestor_of(p):
                out.add(i)
        return out

    def subtree_observers(root: Path) -> set[int]:
        """Resources touching the directory or anything under it."""
        out = set(touched_by.get(root, ()))
        for p, idxs in touched_by.items():
            if root.is_ancestor_of(p):
                out.update(idxs)
        return out

    profiles = [analyze_definitive(e) for e in exprs]
    before = len(domain_of(exprs))
    stateful_before = len(
        set().union(*[fp.writes | fp.dir_ensures for fp in prints])
        if prints
        else set()
    )
    pruned_paths: List[Path] = []
    result = exprs

    candidates: List[Tuple[Path, int, WriteProfile]] = []
    for i, prof in enumerate(profiles):
        for p, wp in prof.items():
            candidates.append((p, i, wp))

    for p, i, wp in candidates:
        if observers_of(p) - {i}:
            continue  # another resource observes or affects p
        if not _conditions_private(wp, i, observers_of, subtree_observers, p):
            continue
        pruned = prune(p, result[i])
        if pruned is None:
            continue
        updated = list(result)
        updated[i] = pruned
        result = updated
        pruned_paths.append(p)

    after = len(domain_of(result))
    final_prints = [footprint(e) for e in result]
    stateful_after = len(
        set().union(*[fp.writes | fp.dir_ensures for fp in final_prints])
        if final_prints
        else set()
    )
    writers_by_path: Dict[Path, List[int]] = {}
    for i, fp in enumerate(final_prints):
        for p in fp.writes | fp.dir_ensures:
            writers_by_path.setdefault(p, []).append(i)
    return result, PruneReport(
        pruned_paths,
        before,
        after,
        stateful_before,
        stateful_after,
        writers_by_path,
    )


def _conditions_private(
    wp: WriteProfile,
    owner: int,
    observers_of,
    subtree_observers,
    pruned_path: Path,
) -> bool:
    """All guard/condition paths must be private to the owning resource
    (or be the pruned path itself): then the write's occurrence and
    value are the same function of the initial state in every
    permutation."""
    for c in wp.condition_paths:
        if c == pruned_path:
            continue
        if is_fresh_witness(c):
            # Emptiness observation: require the whole subtree private.
            if subtree_observers(c.parent()) - {owner}:
                return False
            continue
        if observers_of(c) - {owner}:
            return False
    return True
