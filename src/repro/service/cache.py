"""Content-addressed verdict cache for batch verification.

Verification is a pure function of (manifest source, analysis options,
platform, tool version), so its verdict can be memoised under a
SHA-256 of exactly those inputs.  Each entry is one JSON file named
``<key>.json`` in the cache directory; re-verifying an unchanged fleet
then costs one hash + one small file read per manifest instead of a
solver run.

The cache is defensive about its own storage: an entry that fails to
parse or fails validation (truncated write, schema drift, manual
editing) is deleted, counted in :attr:`VerdictCache.corrupted`, and
treated as a miss — a damaged cache can slow a run down but never
change a verdict.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Optional, Union

from repro import __version__
from repro.analysis.determinism import DeterminismOptions
from repro.service.schema import SCHEMA_VERSION, ManifestResult

_ENTRY_SUFFIX = ".json"


def default_cache_dir() -> Path:
    """``$REHEARSAL_CACHE_DIR``, else ``$XDG_CACHE_HOME/rehearsal``
    (or ``~/.cache/rehearsal``).

    The dedicated override points directly at the cache directory (no
    ``rehearsal`` suffix appended), so CI jobs and the fuzz workflow
    can isolate cache state without mutating ``XDG_CACHE_HOME`` for
    every other tool in the process.
    """
    override = os.environ.get("REHEARSAL_CACHE_DIR")
    if override:
        return Path(override)
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base) if base else Path.home() / ".cache"
    return root / "rehearsal"


def cache_key(
    source: str,
    options: Optional[DeterminismOptions] = None,
    platform: str = "ubuntu",
    node_name: str = "default",
    version: str = __version__,
    synthesize_packages: bool = True,
    package_semantics: str = "direct",
) -> str:
    """SHA-256 over everything the verdict depends on.

    Any change to the manifest text, the analysis options, the target
    platform, the node selection, the package-modeling knobs, the
    result-row schema version, or the tool version produces a new key,
    so stale verdicts can never be served — they are simply never
    found.  Keying on :data:`repro.service.schema.SCHEMA_VERSION`
    rotates entries whose rows predate newly added fields (e.g. the
    v2 exploration statistics) instead of deserializing them
    incompletely.
    """
    options = options or DeterminismOptions()
    options_dict = dataclasses.asdict(options)
    # The incremental store is a cache of intermediate results, not an
    # input to the verdict: incremental and from-scratch runs promise
    # byte-identical results, so they must share verdict-cache entries.
    options_dict.pop("incremental", None)
    options_dict.pop("incremental_dir", None)
    material = json.dumps(
        {
            "source": source,
            "options": options_dict,
            "platform": platform,
            "node": node_name,
            "version": version,
            "schema": SCHEMA_VERSION,
            "synthesize_packages": synthesize_packages,
            "package_semantics": package_semantics,
        },
        sort_keys=True,
    )
    return hashlib.sha256(material.encode("utf8")).hexdigest()


def source_digest(source: str) -> str:
    """SHA-256 of the manifest text alone (reported per manifest)."""
    return hashlib.sha256(source.encode("utf8")).hexdigest()


class VerdictCache:
    """Filesystem-backed map from cache key to :class:`ManifestResult`."""

    def __init__(self, directory: Union[str, os.PathLike, None] = None):
        self.directory = Path(directory) if directory else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.corrupted = 0
        self.read_errors = 0
        self.write_errors = 0
        self._writes_disabled = False

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}{_ENTRY_SUFFIX}"

    def get(self, key: str) -> Optional[ManifestResult]:
        """The cached verdict, or None (counting a miss).  Corrupted
        entries are deleted and reported as misses."""
        path = self._path(key)
        try:
            raw = path.read_text(encoding="utf8")
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError:
            # Unreadable storage (permissions, network filesystem):
            # still a miss, but counted separately so a broken cache is
            # distinguishable from a genuinely cold one.
            self.read_errors += 1
            self.misses += 1
            return None
        try:
            payload = json.loads(raw)
            if not isinstance(payload, dict):
                raise ValueError("entry is not a JSON object")
            if payload.get("key") != key:
                raise ValueError("entry key does not match its filename")
            result = ManifestResult.from_dict(payload["result"])
        except (ValueError, KeyError, TypeError):
            self.corrupted += 1
            self.misses += 1
            self._evict(path)
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: ManifestResult) -> None:
        """Persist a verdict atomically (write temp file, then rename),
        so a crashed or concurrent run can leave at worst a stale temp
        file, never a half-written entry.  Storage trouble must never
        abort a batch that verified successfully: the first failed
        write disables further write attempts (reads still work — a
        pre-warmed read-only cache is a legitimate setup) and every
        store that did not persist is counted in
        :attr:`write_errors`."""
        if self._writes_disabled:
            self.write_errors += 1
            return
        payload = {
            "key": key,
            "version": __version__,
            "result": result.to_dict(),
        }
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(payload, indent=2), encoding="utf8")
            os.replace(tmp, path)
        except OSError:
            self.write_errors += 1
            self._writes_disabled = True
            self._evict(tmp)

    def _evict(self, path: Path) -> bool:
        try:
            path.unlink()
        except OSError:
            return False
        return True

    def clear(self) -> int:
        """Delete every entry (plus any temp files an interrupted
        write left behind); returns how many entries were actually
        removed (an undeletable entry is not counted)."""
        removed = 0
        if not self.directory.is_dir():
            return removed
        for entry in self.directory.glob(f"*{_ENTRY_SUFFIX}"):
            if self._evict(entry):
                removed += 1
        for orphan in self.directory.glob("*.tmp.*"):
            self._evict(orphan)
        return removed

    def stats(self) -> dict:
        """Entry count and on-disk footprint, for ``rehearsal cache
        stats``.  Entries that vanish mid-scan are simply skipped."""
        entries = 0
        total_bytes = 0
        if self.directory.is_dir():
            for entry in self.directory.glob(f"*{_ENTRY_SUFFIX}"):
                try:
                    total_bytes += entry.stat().st_size
                except OSError:
                    continue
                entries += 1
        return {
            "directory": str(self.directory),
            "entries": entries,
            "bytes": total_bytes,
        }

    def gc(self, max_bytes: int) -> int:
        """Evict oldest-first (mtime) until the cache fits in
        ``max_bytes``; returns the number of entries removed.  Temp
        files from interrupted writes are always swept."""
        removed = 0
        if not self.directory.is_dir():
            return removed
        for orphan in self.directory.glob("*.tmp.*"):
            self._evict(orphan)
        entries = []
        total = 0
        for entry in self.directory.glob(f"*{_ENTRY_SUFFIX}"):
            try:
                st = entry.stat()
            except OSError:
                continue
            entries.append((st.st_mtime, st.st_size, entry))
            total += st.st_size
        entries.sort()
        for _mtime, size, entry in entries:
            if total <= max_bytes:
                break
            if self._evict(entry):
                removed += 1
                total -= size
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob(f"*{_ENTRY_SUFFIX}"))
