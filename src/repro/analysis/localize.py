"""Unsat-core fault localization for non-deterministic manifests.

A raw SAT verdict ("the manifest is non-deterministic, here is a
witness filesystem") leaves the user to reconstruct *which* resource
interaction actually races — the paper's users did this by hand (§6).
This module automates it with the assumption interface of the
incremental solver:

1. Assert the initial-state constraints **and** the state difference of
   the diverging pair of execution orders (known satisfiable — that is
   the non-determinism witness).
2. For every modeled path ``p``, register a guarded *equality*
   assumption ``eq$p`` ("the two orders agree on ``p``"), plus one for
   the error status.
3. Check with **all** equality assumptions enabled.  The conjunction is
   unsatisfiable by construction (the orders do diverge), and the final
   conflict yields an unsat core: a subset of the equalities that
   cannot hold together with the divergence.
4. Shrink the core by iterated re-solving (each pass re-checks with
   only the previous core assumed; the incremental solver reuses all
   learned clauses, so this is nearly free), then map the surviving
   ``eq$p`` assumptions back to filesystem paths and to the pair of
   unordered resources whose footprints contend on them.

The result names the racing resource pair and the contended path —
"File[/etc/ntp.conf] and Package[ntp] race on /etc/ntp.conf" — which
``rehearsal verify --explain`` and the batch-service JSON rows surface.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from repro.analysis.commutativity import Footprint, footprint
from repro.errors import SolverError
from repro.fs import FileSystem, syntax as fx
from repro.fs.paths import Path
from repro.fs.semantics import ERROR, eval_expr
from repro.logic.terms import TermBank
from repro.smt.query import IncrementalQuery
from repro.smt.state import SymbolicState
from repro.smt.values import PathDomains

NodeId = Hashable

#: Cores at or below this size are minimized by deletion (one re-solve
#: per member); larger cores only get the cheap iterated shrinking.
DELETION_MINIMIZE_LIMIT = 8

#: Concrete-evaluation budget for validating a candidate racing pair
#: on the witness filesystem (see :func:`_concretely_racing`).
VALIDATION_EVAL_LIMIT = 4000


@dataclass
class RaceReport:
    """Where the non-determinism comes from."""

    #: The two resources whose relative order changes the outcome.
    resource_a: NodeId
    resource_b: NodeId
    #: The contended path both of them touch (one of ``core_paths``),
    #: None when the divergence is purely an error-status change with
    #: no single contended path identified.
    path: Optional[Path]
    #: Every path named by the minimized unsat core.
    core_paths: List[Path] = field(default_factory=list)
    #: True when the orders disagree on whether the run errors.
    ok_divergence: bool = False
    #: Assumption-query statistics (each shrink pass is one check on
    #: the shared solver).
    checks: int = 0

    def describe(self) -> str:
        on = (
            f"race on {self.path}"
            if self.path is not None
            else "diverge on error status"
        )
        return f"{self.resource_a} and {self.resource_b} {on}"


def localize_race(
    bank: TermBank,
    domains: PathDomains,
    base: SymbolicState,
    other: SymbolicState,
    base_order: Sequence[NodeId],
    other_order: Sequence[NodeId],
    graph: "nx.DiGraph",
    programs: Dict[NodeId, fx.Expr],
    query: IncrementalQuery,
    pair_selector: int,
    max_conflicts: Optional[int] = None,
    deadline: Optional[float] = None,
    descendants: Optional[Mapping[NodeId, frozenset]] = None,
    witness: Optional[FileSystem] = None,
) -> Optional[RaceReport]:
    """Map a diverging pair of symbolic final states to the racing
    resource pair and contended path; see the module docstring.

    ``query`` is the determinacy check's shared incremental solver and
    ``pair_selector`` the selector of the diverging pair's difference
    term, so localization rides on everything already encoded and
    learned.  Localization respects the analysis budget: each check is
    bounded by ``max_conflicts``, and once ``deadline`` (a
    ``time.perf_counter()`` instant) passes, core minimization stops
    with the best core found so far.  Returns None when localization
    cannot name a pair (e.g. single-resource divergence after
    elimination) or when the budget is exhausted before the first
    unsat core exists.

    ``descendants`` — optional node → descendant-set mapping of
    ``graph`` (the explorer precomputes it); when provided, the
    pair-ranking pass answers "are a and b ordered?" with two set
    lookups instead of an ``nx.has_path`` traversal per candidate
    pair.

    ``witness`` — the decoded non-determinism witness filesystem.
    When given, candidate pairs are *validated concretely*: the best
    candidate whose adjacent swap actually changes the outcome at some
    state reachable from the witness wins (see :func:`_concretely_racing`)
    — the static footprint ranking alone can name a pair that merely
    shares an idempotently-ensured directory while the true race runs
    through a parent directory one resource creates for the other.
    """
    checks_before = query.checks
    selectors: Dict[int, Optional[Path]] = {}
    assumptions: List[int] = [pair_selector]
    ok_eq = bank.iff(base.ok, other.ok)
    s_ok = query.add_selector("eq$ok", ok_eq)
    selectors[s_ok] = None
    assumptions.append(s_ok)
    for path in domains.paths:
        v1 = base.value(path)
        v2 = other.value(path)
        if v1 is v2:
            continue  # identical symbolic value: cannot be in any core
        s = query.add_selector(f"eq${path}", v1.equals(bank, v2))
        selectors[s] = path
        assumptions.append(s)

    try:
        result = query.check(
            assumptions=assumptions, max_conflicts=max_conflicts
        )
    except SolverError:
        return None  # conflict budget exhausted: localization is
        # best-effort diagnostics, never a crash
    if result.sat:
        # The equalities are jointly consistent with the difference —
        # only possible if the "difference" was over paths outside the
        # domain; nothing to localize.
        return None
    core = _minimize_core(
        query,
        result.core_lits,
        keep=pair_selector,
        max_conflicts=max_conflicts,
        deadline=deadline,
    )

    core_paths = sorted(
        {
            selectors[s]
            for s in core
            if selectors.get(s) is not None
        },
        key=str,
    )
    ok_divergence = s_ok in core
    pair = _pick_pair(
        core_paths,
        base_order,
        other_order,
        graph,
        programs,
        descendants=descendants,
        witness=witness,
    )
    if pair is None:
        return None
    resource_a, resource_b, path = pair
    return RaceReport(
        resource_a=resource_a,
        resource_b=resource_b,
        path=path,
        core_paths=list(core_paths),
        ok_divergence=ok_divergence,
        checks=query.checks - checks_before,
    )


def _minimize_core(
    query: IncrementalQuery,
    core: List[int],
    keep: int,
    max_conflicts: Optional[int] = None,
    deadline: Optional[float] = None,
) -> List[int]:
    """Shrink an unsat core on the shared solver.

    First iterate "re-solve with the core as the only assumptions"
    until it stops shrinking (final-conflict analysis often tightens),
    then, for small cores, try dropping each member except ``keep``
    (deletion-based minimization).  Every check reuses the solver's
    learned clauses, so each pass is nearly free.  A passed
    ``deadline`` or an exhausted conflict budget ends minimization
    early with the best (still valid) core found so far.
    """

    def out_of_budget() -> bool:
        return deadline is not None and time.perf_counter() > deadline

    if keep not in core:
        core = [keep] + core
    try:
        while True:
            if out_of_budget():
                return core
            result = query.check(
                assumptions=core, max_conflicts=max_conflicts
            )
            if result.sat or not result.core_lits:
                return core  # defensive: keep the last known core
            new_core = result.core_lits
            if keep not in new_core:
                new_core = [keep] + new_core
            if len(new_core) >= len(core):
                core = new_core
                break
            core = new_core
        if len(core) > DELETION_MINIMIZE_LIMIT:
            return core
        i = 0
        while i < len(core):
            if core[i] == keep:
                i += 1
                continue
            if out_of_budget():
                return core
            candidate = core[:i] + core[i + 1 :]
            result = query.check(
                assumptions=candidate, max_conflicts=max_conflicts
            )
            if result.sat:
                i += 1  # member is essential
            else:
                core = result.core_lits or candidate
                if keep not in core:
                    core = [keep] + core
                i = 0  # core may have been reordered; rescan
    except SolverError:
        pass  # conflict budget exhausted mid-minimization
    return core


def _pick_pair(
    core_paths: Sequence[Path],
    base_order: Sequence[NodeId],
    other_order: Sequence[NodeId],
    graph: "nx.DiGraph",
    programs: Dict[NodeId, fx.Expr],
    descendants: Optional[Mapping[NodeId, frozenset]] = None,
    witness: Optional[FileSystem] = None,
) -> Optional[Tuple[NodeId, NodeId, Optional[Path]]]:
    """The racing pair: two resources that swap relative order between
    the two diverging linearizations, are unordered in the dependency
    graph, and have conflicting footprints — preferring pairs that
    contend on a path from the unsat core, concretely validated on the
    witness when one is available."""
    position = {n: i for i, n in enumerate(base_order)}
    other_position = {n: i for i, n in enumerate(other_order)}
    prints: Dict[NodeId, Footprint] = {
        n: footprint(programs[n]) for n in position if n in programs
    }
    core_set = set(core_paths)

    def ordered(a: NodeId, b: NodeId) -> bool:
        if descendants is not None:
            return b in descendants[a] or a in descendants[b]
        return nx.has_path(graph, a, b) or nx.has_path(graph, b, a)

    swapped: List[Tuple[NodeId, NodeId]] = []
    nodes = [n for n in base_order if n in other_position]
    for i, a in enumerate(nodes):
        for b in nodes[i + 1 :]:
            if (position[a] < position[b]) != (
                other_position[a] < other_position[b]
            ):
                if ordered(a, b):
                    continue  # ordered by dependencies: cannot race
                swapped.append(tuple(sorted((a, b), key=str)))

    candidates: List[Tuple[tuple, NodeId, NodeId, Optional[Path]]] = []
    for a, b in swapped:
        fa = prints.get(a)
        fb = prints.get(b)
        if fa is None or fb is None:
            continue
        effects_a = fa.writes | fa.dir_ensures
        effects_b = fb.writes | fb.dir_ensures
        shared = effects_a & fb.touched() | effects_b & fa.touched()
        # Parent-directory conflicts: one resource creates the
        # directory the other writes into.  Invisible to the shared-
        # path intersection (the child path is in neither footprint of
        # the parent's creator), yet a classic race: run the child
        # writer first and it errors on the missing parent.
        parent_conflicts = {
            p.parent()
            for p in effects_a
            if p.parent() in effects_b
        } | {
            p.parent()
            for p in effects_b
            if p.parent() in effects_a
        }
        real_writes = fa.writes | fb.writes
        for p in shared | parent_conflicts:
            # Prefer paths the unsat core names, then genuine writes
            # over idempotent directory creation, then parent-conflict
            # evidence, then the most specific (deepest) path.
            score = (
                1 if p in core_set else 0,
                1 if p in real_writes else 0,
                1 if p in parent_conflicts else 0,
                len(str(p)),
            )
            candidates.append((score, a, b, p))
    candidates.sort(key=lambda c: c[0], reverse=True)

    if witness is not None and swapped:
        candidate_pairs = {(a, b) for _, a, b, _ in candidates}
        # Validate every swapped pair, not only the footprint-scored
        # candidates: when the true race is invisible to the footprint
        # heuristics (neither a shared path nor a parent conflict),
        # the concrete walk can still confirm it.
        racing = _concretely_racing(
            graph,
            programs,
            witness,
            set(swapped),
            VALIDATION_EVAL_LIMIT,
        )
        if racing is not None:
            for _, a, b, p in candidates:
                if (a, b) in racing:
                    return a, b, p
            for a, b in swapped:
                if (a, b) in racing and (a, b) not in candidate_pairs:
                    return a, b, (
                        sorted(core_set, key=str)[0] if core_set else None
                    )
        # Budget exhausted (None) or nothing confirmed: trust the
        # static ranking below rather than return no pair at all.
    if candidates:
        _, a, b, p = candidates[0]
        return a, b, p
    if swapped:
        a, b = swapped[0]
        return a, b, (sorted(core_set, key=str)[0] if core_set else None)
    return None


def _concretely_racing(
    graph: "nx.DiGraph",
    programs: Dict[NodeId, fx.Expr],
    witness: FileSystem,
    pairs: set,
    eval_limit: int,
) -> Optional[set]:
    """Which candidate ``pairs`` concretely race from ``witness``: at
    some reachable state where both members are schedulable, ``a;b``
    and ``b;a`` produce different outcomes.

    One walk of the reachable concrete-state DAG (deduplicated on
    ``(remaining, state)`` by value — exact, no fingerprints) checks
    every candidate pair at every visited state, with each fringe
    resource evaluated once per state and reused for both the pair
    comparisons and the expansion.  Returns the racing subset, or None
    when ``eval_limit`` runs out first (verdict unknown — the caller
    falls back to its static ranking).
    """
    predecessors = {n: frozenset(graph.predecessors(n)) for n in graph}
    budget = [eval_limit]

    def evaluate(node: NodeId, state: FileSystem):
        budget[0] -= 1
        return eval_expr(programs[node], state)

    racing: set = set()
    root = frozenset(graph.nodes)
    seen = {(root, witness)}
    stack = [(root, witness)]
    while stack:
        if budget[0] <= 0:
            return None
        remaining, state = stack.pop()
        fringe = [
            n for n in remaining if not (predecessors[n] & remaining)
        ]
        after = {n: evaluate(n, state) for n in fringe}
        schedulable = set(fringe)
        for a, b in pairs - racing:
            if a not in schedulable or b not in schedulable:
                continue
            out_ab = (
                ERROR
                if after[a] is ERROR
                else evaluate(b, after[a])
            )
            out_ba = (
                ERROR
                if after[b] is ERROR
                else evaluate(a, after[b])
            )
            if out_ab != out_ba:
                racing.add((a, b))
        if racing == pairs:
            return racing  # every candidate settled
        for n in fringe:
            if after[n] is ERROR:
                continue
            key = (remaining - {n}, after[n])
            if key not in seen:
                seen.add(key)
                stack.append(key)
    return racing
