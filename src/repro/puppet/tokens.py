"""Token definitions for the Puppet DSL lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokenKind(Enum):
    # Literals and names
    NAME = auto()  # bareword: package, nginx::config
    TYPEREF = auto()  # capitalized: File, Package, Class, Nginx::Config
    VARIABLE = auto()  # $x, $::x, $nginx::port
    STRING = auto()  # single-quoted (no interpolation)
    DQSTRING = auto()  # double-quoted (interpolation payload kept raw)
    NUMBER = auto()
    REGEX = auto()  # /pattern/ in case/selector matches

    # Keywords
    DEFINE = auto()
    CLASS = auto()
    NODE = auto()
    INHERITS = auto()
    IF = auto()
    ELSIF = auto()
    ELSE = auto()
    UNLESS = auto()
    CASE = auto()
    DEFAULT = auto()
    TRUE = auto()
    FALSE = auto()
    UNDEF = auto()
    AND = auto()
    OR = auto()
    NOT = auto()
    IN = auto()
    INCLUDE = auto()
    REQUIRE_KW = auto()

    # Punctuation
    LBRACE = auto()
    RBRACE = auto()
    LBRACK = auto()
    RBRACK = auto()
    LPAREN = auto()
    RPAREN = auto()
    COLON = auto()
    SEMI = auto()
    COMMA = auto()
    FARROW = auto()  # =>
    PARROW = auto()  # +>
    ARROW_RIGHT = auto()  # ->
    ARROW_LEFT = auto()  # <-
    NOTIFY_RIGHT = auto()  # ~>
    NOTIFY_LEFT = auto()  # <~
    COLLECT_OPEN = auto()  # <|
    COLLECT_CLOSE = auto()  # |>
    EQ = auto()  # ==
    NEQ = auto()  # !=
    MATCH = auto()  # =~
    NOMATCH = auto()  # !~
    LT = auto()
    GT = auto()
    LTEQ = auto()
    GTEQ = auto()
    ASSIGN = auto()  # =
    PLUS = auto()
    MINUS = auto()
    STAR = auto()
    SLASH = auto()
    PERCENT = auto()
    BANG = auto()
    QUESTION = auto()
    AT = auto()  # virtual resource
    ATAT = auto()  # exported resource
    DOT = auto()

    EOF = auto()


KEYWORDS = {
    "define": TokenKind.DEFINE,
    "class": TokenKind.CLASS,
    "node": TokenKind.NODE,
    "inherits": TokenKind.INHERITS,
    "if": TokenKind.IF,
    "elsif": TokenKind.ELSIF,
    "else": TokenKind.ELSE,
    "unless": TokenKind.UNLESS,
    "case": TokenKind.CASE,
    "default": TokenKind.DEFAULT,
    "true": TokenKind.TRUE,
    "false": TokenKind.FALSE,
    "undef": TokenKind.UNDEF,
    "and": TokenKind.AND,
    "or": TokenKind.OR,
    "in": TokenKind.IN,
    "include": TokenKind.INCLUDE,
    "require": TokenKind.REQUIRE_KW,
}


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"
