"""External SAT-competition solver backend.

:class:`ExternalBackend` satisfies :class:`repro.sat.backend.SolverBackend`
by shelling out to a solver binary (kissat, cadical, minisat — anything
speaking DIMACS in and SAT-competition output out).  Each ``solve()``
call dumps the clause database plus the assumptions (appended as unit
clauses) through :func:`repro.sat.dimacs.write_dimacs`, runs the
binary, and parses the verdict:

* exit code 10 / ``s SATISFIABLE`` → SAT, model from the ``v`` lines;
* exit code 20 / ``s UNSATISFIABLE`` → UNSAT;
* anything else → :class:`repro.errors.SolverError`.

Two impedance mismatches with the incremental interface, both handled
here rather than leaked to callers:

* **Unsat cores.**  Competition solvers don't report which appended
  assumption units caused UNSAT, but race localization needs the core.
  We recover a minimal-ish core by deletion: drop one assumption at a
  time and re-run; if the instance stays UNSAT the assumption was not
  needed.  That costs up to ``len(assumptions)`` extra solver runs —
  acceptable because the pure-Python CDCL stays the default and the
  external backend is an escape hatch for instances where one external
  run beats thousands of Python conflicts.

* **Conflict budgets.**  There is no portable way to impose a conflict
  limit on an arbitrary binary, so ``max_conflicts`` is *advisory and
  ignored*; :data:`TIMEOUT_SECONDS` bounds each run by wall clock
  instead, raising ``SolverError`` on expiry (the analysis layers
  already treat that exactly like a budget exhaustion).

``minisat`` is special-cased: it takes ``input output`` file arguments
and writes the verdict/model to the output file (still exiting 10/20).
"""

from __future__ import annotations

import os
import shutil
import subprocess
import tempfile
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SolverError
from repro.sat.dimacs import write_dimacs
from repro.sat.solver import SolveResult

#: Probe order for ``--solver external:auto``.
KNOWN_SOLVERS = ("kissat", "cadical", "minisat")

#: Wall-clock bound per external run (``max_conflicts`` has no portable
#: equivalent across binaries).
TIMEOUT_SECONDS = 60.0


def find_external_solver(name: Optional[str] = None) -> Optional[str]:
    """Resolve an external solver to an executable path.

    With ``name=None``, probe :data:`KNOWN_SOLVERS` on PATH in order.
    With a name or path, resolve that specific solver.  Returns None
    when nothing is found.
    """
    if name is None:
        for candidate in KNOWN_SOLVERS:
            path = shutil.which(candidate)
            if path:
                return path
        return None
    if os.path.sep in name or (os.path.altsep and os.path.altsep in name):
        return name if os.access(name, os.X_OK) else None
    return shutil.which(name)


def parse_solver_output(text: str) -> Tuple[Optional[bool], Dict[int, bool]]:
    """Parse SAT-competition output: the ``s`` status line and, on
    SAT, the ``v`` model lines (terminated by literal 0).  Returns
    ``(verdict, model)`` with verdict None when no status line was
    printed."""
    verdict: Optional[bool] = None
    model: Dict[int, bool] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if line.startswith("s "):
            status = line[2:].strip().upper()
            if status == "SATISFIABLE":
                verdict = True
            elif status == "UNSATISFIABLE":
                verdict = False
        elif line.startswith("v ") or line == "v":
            for token in line[1:].split():
                lit = int(token)
                if lit == 0:
                    continue
                model[abs(lit)] = lit > 0
        elif verdict is None and line in ("SAT", "UNSAT", "SATISFIABLE", "UNSATISFIABLE"):
            # minisat's output file spells the verdict bare, with the
            # model on the following line (no "v " prefix).
            verdict = line.startswith("SAT")
        elif verdict is True and not model and _all_ints(line):
            for token in line.split():
                lit = int(token)
                if lit:
                    model[abs(lit)] = lit > 0
    return verdict, model


def _all_ints(line: str) -> bool:
    tokens = line.split()
    if not tokens:
        return False
    for token in tokens:
        body = token[1:] if token[0] in "+-" else token
        if not body.isdigit():
            return False
    return True


class ExternalBackend:
    """A :class:`SolverBackend` backed by a solver binary on PATH.

    Clauses accumulate in-process; every ``solve()`` is a fresh run of
    the binary over the whole database (external solvers have no
    incremental interface), so counters stay at zero and learned
    clauses are not retained between calls.
    """

    def __init__(
        self,
        path: str,
        timeout_seconds: float = TIMEOUT_SECONDS,
    ):
        if not path:
            raise SolverError("external solver path is empty")
        self.path = path
        self.timeout_seconds = timeout_seconds
        self.num_vars = 0
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self._clauses: List[List[int]] = []
        self._ok = True

    # -- clause database ------------------------------------------------------

    def ensure_vars(self, n: int) -> None:
        if n > self.num_vars:
            self.num_vars = n

    def add_clause(self, lits: Sequence[int]) -> None:
        clause = list(lits)
        for lit in clause:
            if lit == 0:
                raise SolverError("literal 0 is not allowed")
            self.ensure_vars(abs(lit))
        if not clause:
            self._ok = False
            return
        self._clauses.append(clause)

    def root_units(self) -> List[int]:
        return [c[0] for c in self._clauses if len(c) == 1]

    def clause_database(
        self, include_learned: bool = False
    ) -> List[List[int]]:
        if not self._ok:
            return [[]]
        return [list(c) for c in self._clauses]

    # -- solving --------------------------------------------------------------

    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,  # advisory; see module doc
    ) -> SolveResult:
        assumptions = list(assumptions)
        for lit in assumptions:
            if lit == 0:
                raise SolverError("literal 0 is not allowed")
            self.ensure_vars(abs(lit))
        if not self._ok:
            return SolveResult(False)
        sat, model = self._run(assumptions)
        if sat:
            # The binary may leave don't-care variables out of the
            # model; downstream evaluation treats absence as False,
            # matching the CDCL backend's convention.
            return SolveResult(True, assignment=model)
        core = self._minimize_core(assumptions) if assumptions else []
        return SolveResult(False, core=core)

    def _run(self, assumptions: List[int]) -> Tuple[bool, Dict[int, bool]]:
        clauses = self._clauses + [[lit] for lit in assumptions]
        with tempfile.TemporaryDirectory(prefix="rehearsal-sat-") as tmp:
            cnf_path = os.path.join(tmp, "query.cnf")
            with open(cnf_path, "w") as out:
                write_dimacs(
                    out,
                    clauses,
                    self.num_vars,
                    comments=[f"rehearsal external query via {self.path}"],
                )
            argv = [self.path, cnf_path]
            out_path = None
            if os.path.basename(self.path).startswith("minisat"):
                out_path = os.path.join(tmp, "result.out")
                argv.append(out_path)
            try:
                proc = subprocess.run(
                    argv,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                    timeout=self.timeout_seconds,
                    text=True,
                )
            except subprocess.TimeoutExpired:
                raise SolverError(
                    f"external solver timed out after "
                    f"{self.timeout_seconds:g}s: {self.path}"
                ) from None
            except OSError as exc:
                raise SolverError(
                    f"failed to run external solver {self.path}: {exc}"
                ) from None
            output = proc.stdout
            if out_path and os.path.exists(out_path):
                with open(out_path) as handle:
                    output += "\n" + handle.read()
            verdict, model = parse_solver_output(output)
            if verdict is None:
                if proc.returncode == 10:
                    verdict = True
                elif proc.returncode == 20:
                    verdict = False
                else:
                    raise SolverError(
                        f"external solver {self.path} produced no verdict "
                        f"(exit {proc.returncode}): "
                        f"{proc.stderr.strip()[:200]}"
                    )
            return verdict, model

    def _minimize_core(self, assumptions: List[int]) -> List[int]:
        """Deletion-based core recovery: an assumption stays in the
        core iff removing it flips the instance to SAT.  Each probe is
        one more solver run, so the core is minimal w.r.t. single
        deletions (same guarantee callers get from iterated deletion
        in the localizer)."""
        core = list(assumptions)
        i = 0
        while i < len(core):
            trial = core[:i] + core[i + 1 :]
            sat, _ = self._run(trial)
            if sat:
                i += 1  # needed: keep it
            else:
                core = trial  # redundant: drop and retry at same index
        return sorted(core)
