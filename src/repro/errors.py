"""Exception hierarchy shared by every repro subsystem."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class PuppetSyntaxError(ReproError):
    """Raised by the lexer or parser on malformed manifest source."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class PuppetEvalError(ReproError):
    """Raised while evaluating a manifest to a catalog (bad attribute,
    undefined variable, duplicate resource, unknown type, ...)."""


class DependencyCycleError(PuppetEvalError):
    """The resource graph contains a dependency cycle (Fig. 3b)."""

    def __init__(self, cycle):
        self.cycle = list(cycle)
        pretty = " -> ".join(str(n) for n in self.cycle)
        super().__init__(f"dependency cycle: {pretty}")


class ResourceModelError(ReproError):
    """A resource cannot be compiled to an FS program (missing or
    inconsistent attributes, unsupported type, ...)."""


class UnsupportedResourceError(ResourceModelError):
    """The resource type has no FS model (notably ``exec``, see paper §8)."""


class PackageNotFoundError(ResourceModelError):
    """The package database has no entry and synthesis is disabled."""


class CorpusManifestMissing(ReproError):
    """A benchmark named in the corpus inventory has no manifest file
    on disk (broken checkout or packaging that dropped the .pp data
    files)."""

    def __init__(self, name: str, filename: str, directory: str):
        self.name = name
        self.filename = filename
        self.directory = directory
        super().__init__(
            f"corpus benchmark {name!r} is registered but its manifest "
            f"{filename!r} is missing from {directory}; the package was "
            "probably installed without its manifests/*.pp data files "
            "(see setup.py package_data)"
        )


class AnalysisBudgetExceeded(ReproError):
    """The determinacy analysis exceeded its exploration or time budget.

    Models the ten-minute timeout in the paper's Fig. 11 experiments.
    """

    def __init__(
        self,
        message: str,
        elapsed: float = 0.0,
        branches: int = 0,
        wall_clock: bool = False,
        memo_hits: int = 0,
        states_merged: int = 0,
    ):
        self.elapsed = elapsed
        self.branches = branches
        # Exploration-memoization counters at the moment the budget
        # blew: zero memo hits on a large manifest points at a
        # memoization regression (or a genuinely tree-shaped state
        # space), nonzero ones at a state space that is simply huge —
        # diagnosable from the exception alone, without a re-run.
        self.memo_hits = memo_hits
        self.states_merged = states_merged
        # Wall-clock timeouts depend on machine load, unlike the
        # deterministic exploration budget; the verdict cache must not
        # persist them.
        self.wall_clock = wall_clock
        super().__init__(message)


class SolverError(ReproError):
    """Internal failure of the SAT solving pipeline."""
