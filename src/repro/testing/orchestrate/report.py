"""Render the results DB and the test map as an HTML report.

``rehearsal testreport --db <results.sqlite> --out <dir>`` writes

* ``index.html`` — run summaries, per-module total-duration trends
  (inline SVG sparklines over the recorded runs), and the slowest
  tests of the latest run with their recorded seeds;
* ``dag.svg`` — the module→test import DAG from the committed test
  map, layered by import depth (modules at the bottom, test files on
  top, direct-import edges between layers).

Everything is generated with the standard library — no plotting or
templating dependency — so the report renders in any CI artifact
browser.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.testing.orchestrate.resultsdb import ResultsDB, RunSummary
from repro.testing.orchestrate.testmap import TestMap

REPORT_NAME = "index.html"
DAG_NAME = "dag.svg"

_PASS = "#2e7d32"
_FAIL = "#c62828"
_SKIP = "#f9a825"
_EDGE = "#90a4ae"
_MODULE = "#1565c0"
_TEST = "#6a1b9a"


# -- sparklines ---------------------------------------------------------------


def sparkline(
    values: Sequence[float], width: int = 160, height: int = 28
) -> str:
    """Inline SVG polyline for a duration series (empty series → dash)."""
    if not values:
        return "<span>–</span>"
    top = max(values) or 1.0
    step = width / max(len(values) - 1, 1)
    points = " ".join(
        f"{i * step:.1f},{height - 2 - (v / top) * (height - 4):.1f}"
        for i, v in enumerate(values)
    )
    last = values[-1]
    return (
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img">'
        f'<polyline points="{points}" fill="none" '
        f'stroke="{_MODULE}" stroke-width="1.5"/>'
        f"</svg> <code>{last:.2f}s</code>"
    )


# -- the DAG ------------------------------------------------------------------


def _layer_modules(test_map: TestMap) -> Dict[str, int]:
    """Longest-path depth per module over direct deps (DAG by
    construction of the import graph; cycles would already have broken
    the import)."""
    deps = {
        name: [d for d in info["deps"] if d in test_map.modules]
        for name, info in test_map.modules.items()
    }
    depth: Dict[str, int] = {}

    def resolve(name: str, trail: Tuple[str, ...] = ()) -> int:
        if name in depth:
            return depth[name]
        if name in trail:  # defensive: never recurse forever
            return 0
        best = 0
        for dep in deps.get(name, ()):
            best = max(best, resolve(dep, trail + (name,)) + 1)
        depth[name] = best
        return best

    for name in deps:
        resolve(name)
    return depth


def render_dag(test_map: TestMap) -> str:
    """The module→test import graph as standalone SVG."""
    depth = _layer_modules(test_map)
    max_depth = max(depth.values(), default=0)
    layers: List[List[str]] = [[] for _ in range(max_depth + 2)]
    for name in sorted(depth):
        layers[depth[name]].append(name)
    test_layer = max_depth + 1
    tests = sorted(test_map.tests)
    layers[test_layer] = tests

    node_w, node_h, x_gap, y_gap = 170, 22, 14, 64
    widest = max((len(layer) for layer in layers), default=1)
    width = max(widest * (node_w + x_gap) + x_gap, 640)
    height = len(layers) * (node_h + y_gap) + y_gap

    pos: Dict[str, Tuple[float, float]] = {}
    for layer_index, layer in enumerate(layers):
        if not layer:
            continue
        span = len(layer) * (node_w + x_gap)
        x0 = (width - span) / 2
        # Bottom layer = depth 0 (leaves), tests on top.
        y = height - (layer_index + 1) * (node_h + y_gap)
        for i, name in enumerate(layer):
            pos[name] = (x0 + i * (node_w + x_gap), y)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        'font-family="monospace" font-size="10">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="8" y="16" font-size="13">module → test import DAG '
        f"({len(test_map.modules)} modules, {len(tests)} test files)"
        "</text>",
    ]

    def edge(src: str, dst: str) -> None:
        if src not in pos or dst not in pos:
            return
        x1, y1 = pos[src][0] + node_w / 2, pos[src][1] + node_h
        x2, y2 = pos[dst][0] + node_w / 2, pos[dst][1]
        parts.append(
            f'<line x1="{x1:.0f}" y1="{y1:.0f}" x2="{x2:.0f}" '
            f'y2="{y2:.0f}" stroke="{_EDGE}" stroke-width="0.6" '
            'opacity="0.55"/>'
        )

    for name, info in sorted(test_map.modules.items()):
        for dep in info["deps"]:
            edge(name, dep)
    for name in tests:
        for dep in test_map.tests[name]["deps"]:
            edge(name, dep)

    global_modules = set(test_map.global_modules)
    for name, (x, y) in pos.items():
        is_test = name in test_map.tests
        fill = _TEST if is_test else _MODULE
        label = Path(name).name if is_test else name
        if len(label) > 28:
            label = "…" + label[-27:]
        stroke = (
            f' stroke="{_FAIL}" stroke-width="1.5"'
            if name in global_modules
            else ""
        )
        parts.append(
            f'<g><rect x="{x:.0f}" y="{y:.0f}" width="{node_w}" '
            f'height="{node_h}" rx="4" fill="{fill}" '
            f'opacity="0.85"{stroke}/>'
            f'<text x="{x + node_w / 2:.0f}" y="{y + 14:.0f}" '
            f'fill="white" text-anchor="middle">'
            f"{html.escape(label)}</text>"
            f"<title>{html.escape(name)}</title></g>"
        )
    parts.append(
        f'<text x="8" y="{height - 8:.0f}">'
        "edges = direct imports; red outline = conftest dependency "
        "(any edit runs the full suite)</text>"
    )
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


# -- the HTML report ----------------------------------------------------------


def _outcome_cell(summary: RunSummary) -> str:
    color = _PASS if not summary.failed else _FAIL
    return (
        f'<td style="color:{color}">{summary.passed} passed, '
        f"{summary.failed} failed, {summary.skipped} skipped</td>"
    )


def render_html(
    db: ResultsDB,
    test_map: Optional[TestMap] = None,
    trend_runs: int = 20,
    slowest: int = 15,
) -> str:
    runs = db.runs(limit=trend_runs)
    trends = db.module_durations(limit_runs=trend_runs)
    latest = runs[-1] if runs else None
    rows = []
    for summary in runs:
        rows.append(
            "<tr>"
            f"<td><code>{html.escape(summary.run_id)}</code></td>"
            f"<td>{summary.total}</td>"
            + _outcome_cell(summary)
            + f"<td>{summary.duration:.1f}s</td>"
            f"<td>{summary.exit_status}</td>"
            "</tr>"
        )
    trend_rows = []
    for module in sorted(
        trends, key=lambda m: -(trends[m][-1] if trends[m] else 0)
    ):
        trend_rows.append(
            "<tr>"
            f"<td><code>{html.escape(module)}</code></td>"
            f"<td>{sparkline(trends[module])}</td>"
            "</tr>"
        )
    slow_rows = []
    if latest is not None:
        for result in db.slowest_tests(latest.run_id, limit=slowest):
            seed = (
                f"<code>{html.escape(result.seed)}</code>"
                if result.seed
                else "–"
            )
            color = _PASS if result.outcome == "passed" else (
                _SKIP if result.outcome == "skipped" else _FAIL
            )
            slow_rows.append(
                "<tr>"
                f"<td><code>{html.escape(result.nodeid)}</code></td>"
                f'<td style="color:{color}">{result.outcome}</td>'
                f"<td>{result.duration:.2f}s</td>"
                f"<td>{seed}</td>"
                "</tr>"
            )
    dag_section = (
        f'<h2>Import DAG</h2><p><a href="{DAG_NAME}">'
        f"module → test dependency graph ({len(test_map.modules)} "
        f"modules, {len(test_map.tests)} test files)</a></p>"
        if test_map is not None
        else ""
    )
    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>rehearsal test report</title>
<style>
 body {{ font-family: sans-serif; margin: 2em; max-width: 70em; }}
 table {{ border-collapse: collapse; }}
 td, th {{ border: 1px solid #ccc; padding: 4px 10px;
           text-align: left; }}
 th {{ background: #eceff1; }}
</style></head><body>
<h1>rehearsal test report</h1>
<p>{len(runs)} recorded run(s) in <code>{html.escape(str(db.path))}</code>.</p>
<h2>Runs</h2>
<table><tr><th>run</th><th>tests</th><th>outcomes</th>
<th>total duration</th><th>exit</th></tr>
{''.join(rows) or '<tr><td colspan="5">no runs recorded</td></tr>'}
</table>
<h2>Per-module duration trend (last {trend_runs} runs)</h2>
<table><tr><th>test module</th><th>total call duration</th></tr>
{''.join(trend_rows) or '<tr><td colspan="2">no results</td></tr>'}
</table>
<h2>Slowest tests (latest run)</h2>
<table><tr><th>test</th><th>outcome</th><th>duration</th>
<th>seed</th></tr>
{''.join(slow_rows) or '<tr><td colspan="4">no results</td></tr>'}
</table>
{dag_section}
</body></html>
"""


def write_report(
    db_path,
    out_dir,
    map_path=None,
    trend_runs: int = 20,
) -> List[Path]:
    """Render ``index.html`` (and ``dag.svg`` when a map is given)
    into ``out_dir``; returns the written paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    test_map = None
    if map_path is not None and Path(map_path).is_file():
        test_map = TestMap.load(map_path)
    written = []
    with ResultsDB(db_path) as db:
        index = out / REPORT_NAME
        index.write_text(
            render_html(db, test_map, trend_runs=trend_runs),
            encoding="utf8",
        )
        written.append(index)
    if test_map is not None:
        dag = out / DAG_NAME
        dag.write_text(render_dag(test_map), encoding="utf8")
        written.append(dag)
    return written
