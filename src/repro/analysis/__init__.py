"""The paper's analyses: commutativity (§4.3), definitive writes and
pruning (§4.4), resource elimination (§4.4), determinacy (§4, Thm. 1),
equivalence/idempotence and invariants (§5)."""

from repro.analysis.commutativity import (
    Access,
    Footprint,
    exprs_commute,
    footprint,
    footprints_commute,
)
from repro.analysis.definitive import (
    A_DIR,
    A_DNE,
    AFile,
    BOT,
    TOP,
    WriteProfile,
    analyze_definitive,
)
from repro.analysis.determinism import (
    DeterminismOptions,
    DeterminismResult,
    DeterminismStats,
    check_determinism,
)
from repro.analysis.elimination import EliminationReport, eliminate_resources
from repro.analysis.equivalence import (
    EquivalenceResult,
    check_commutes_semantically,
    check_equivalence,
)
from repro.analysis.idempotence import (
    IdempotenceResult,
    check_idempotence,
    check_idempotence_expr,
)
from repro.analysis.invariants import (
    InvariantResult,
    check_invariant,
    ensures_absent,
    ensures_directory,
    ensures_file,
    ensures_present,
)
from repro.analysis.localize import RaceReport, localize_race
from repro.analysis.pruning import PruneReport, prune, prune_manifest
from repro.analysis.repair import RepairResult, synthesize_repair

__all__ = [
    "A_DIR",
    "A_DNE",
    "AFile",
    "Access",
    "BOT",
    "DeterminismOptions",
    "DeterminismResult",
    "DeterminismStats",
    "EliminationReport",
    "EquivalenceResult",
    "Footprint",
    "IdempotenceResult",
    "InvariantResult",
    "PruneReport",
    "RaceReport",
    "RepairResult",
    "TOP",
    "WriteProfile",
    "analyze_definitive",
    "check_commutes_semantically",
    "check_determinism",
    "check_equivalence",
    "check_idempotence",
    "check_idempotence_expr",
    "check_invariant",
    "ensures_absent",
    "ensures_directory",
    "ensures_file",
    "ensures_present",
    "exprs_commute",
    "eliminate_resources",
    "footprint",
    "footprints_commute",
    "localize_race",
    "prune",
    "prune_manifest",
    "synthesize_repair",
]
