"""Tiered verdict cache: an in-process LRU over the on-disk store.

A resident daemon answers the same digests over and over; paying a
file open + JSON parse per hit is pointless once the process owns the
working set.  :class:`TieredVerdictCache` keeps the hottest
``capacity`` verdicts in memory (an ``OrderedDict`` in LRU order) in
front of the on-disk :class:`~repro.service.cache.VerdictCache`:

* **memory tier** — hit without touching the filesystem;
* **disk tier** — a miss in memory falls through to the on-disk
  store and, on a hit, promotes the entry into memory;
* **miss** — both tiers cold; the caller verifies and ``put`` fills
  both tiers.

The class *is a* :class:`VerdictCache`, so
:class:`~repro.service.orchestrator.BatchVerifier` uses it unchanged,
and the base hit/miss counters keep their meaning (a memory hit is
still a cache hit).  The per-tier split lands in
:attr:`memory_hits` / :attr:`disk_hits`, surfaced by the daemon's
``/metrics`` endpoint.

Thread safety: the daemon verifies on a worker-thread pool, so every
LRU mutation holds a lock.  Stored results are defensively copied on
the way in and out — callers mutate rows (``dataclasses.replace`` is
the idiom, but nothing enforces it) and a shared object would let one
request's relabeling leak into another's.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Optional, Union

from repro.service.cache import VerdictCache
from repro.service.schema import ManifestResult

DEFAULT_CAPACITY = 1024


class TieredVerdictCache(VerdictCache):
    """In-process LRU in front of the on-disk verdict store."""

    def __init__(
        self,
        directory: Union[str, os.PathLike, None] = None,
        capacity: int = DEFAULT_CAPACITY,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        super().__init__(directory)
        self.capacity = capacity
        self.memory_hits = 0
        self.disk_hits = 0
        self._lru: "OrderedDict[str, ManifestResult]" = OrderedDict()
        self._lock = threading.Lock()

    @staticmethod
    def _copy(result: ManifestResult) -> ManifestResult:
        # Round-trip through the dict form: cheap, and guarantees the
        # cached object shares no mutable state (the lint block is a
        # nested dict) with what callers hold.
        return ManifestResult.from_dict(result.to_dict())

    def get(self, key: str) -> Optional[ManifestResult]:
        with self._lock:
            cached = self._lru.get(key)
            if cached is not None:
                self._lru.move_to_end(key)
                self.memory_hits += 1
                self.hits += 1
                return self._copy(cached)
        result = super().get(key)
        if result is not None:
            self.disk_hits += 1
            self._remember(key, result)
        return result

    def put(self, key: str, result: ManifestResult) -> None:
        self._remember(key, result)
        super().put(key, result)

    def _remember(self, key: str, result: ManifestResult) -> None:
        with self._lock:
            self._lru[key] = self._copy(result)
            self._lru.move_to_end(key)
            while len(self._lru) > self.capacity:
                self._lru.popitem(last=False)

    def clear(self) -> int:
        with self._lock:
            self._lru.clear()
        return super().clear()

    @property
    def memory_entries(self) -> int:
        with self._lock:
            return len(self._lru)

    def tier_stats(self) -> dict:
        """Per-tier traffic, for ``/metrics``: memory and disk hits
        split out of the base class's aggregate ``hits``."""
        with self._lock:
            memory_entries = len(self._lru)
        return {
            "capacity": self.capacity,
            "memory_entries": memory_entries,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
        }
