"""Fig. 13 — scalability against n unordered conflicting writes.

n resources all overwrite the same path, defeating both the
commutativity check and pruning: the order space is the full n!
permutation set.  The reachable-state memoization collapses the walk
to the subset/state lattice — after applying any subset the symbolic
state depends only on (subset, last writer), so the checker explores
n·2^(n-1) edges instead of sum_k n!/(n-k)! branches.  Expected shape:
exponential, decisively sub-factorial, with nonzero memo hits from
n = 3 on (each final state is reached from every predecessor subset).
The paper reports >2 minutes at n = 6 on Z3 without the reduction;
``DeterminismOptions(use_memoization=False)`` still reproduces that
factorial curve.

Default runs cover n = 2..6; set ``REHEARSAL_BENCH_FULL=1`` to extend
to n = 8 (the full-mode sweep ``run_figures.py`` also reports).

The second group reproduces the paper's harder deterministic variant:
a final resource ordered after all writers forces a full
unsatisfiability proof instead of an early satisfying model.
"""

import os

import pytest

from repro.analysis.determinism import DeterminismOptions, check_determinism
from repro.bench.harness import (
    conflicting_write,
    fig13_lattice_bound,
    synthetic_conflict_graph,
)

FULL_MODE = os.environ.get("REHEARSAL_BENCH_FULL", "") not in ("", "0")

NS = (2, 3, 4, 5, 6, 7, 8) if FULL_MODE else (2, 3, 4, 5, 6)


@pytest.mark.parametrize("n", NS)
def test_fig13_conflicting_writes(benchmark, bench_timeout, n):
    graph, programs = synthetic_conflict_graph(n)
    options = DeterminismOptions(
        timeout_seconds=bench_timeout, max_branches=500_000
    )

    result = benchmark.pedantic(
        check_determinism,
        args=(graph, programs),
        kwargs={"options": options},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["n"] = n
    assert not result.deterministic
    stats = result.stats
    benchmark.extra_info["branches"] = stats.branches_explored
    benchmark.extra_info["memo_hits"] = stats.memo_hits
    benchmark.extra_info["distinct_finals"] = stats.distinct_finals
    # The structural guards: exploration stays on the subset/state
    # lattice, far below the order tree, finals deduplicate to one
    # per last writer, and from n = 3 the lattice genuinely
    # converges.  A memoization regression trips these even on a
    # machine fast enough to hide the wall-clock difference.
    assert stats.branches_explored <= fig13_lattice_bound(n)
    assert stats.distinct_finals == n
    if n >= 3:
        assert stats.memo_hits > 0


@pytest.mark.parametrize("n", (2, 3, 4, 5, 6) if FULL_MODE else (2, 3, 4, 5))
def test_fig13_deterministic_variant(benchmark, bench_timeout, n):
    graph, programs = synthetic_conflict_graph(n)
    programs = dict(programs)
    programs["final"] = conflicting_write("/shared", "x")
    graph.add_node("final")
    for i in range(n):
        graph.add_edge(f"w{i}", "final")
    options = DeterminismOptions(
        timeout_seconds=bench_timeout, max_branches=500_000
    )

    result = benchmark.pedantic(
        check_determinism,
        args=(graph, programs),
        kwargs={"options": options},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["n"] = n
    benchmark.extra_info["branches"] = result.stats.branches_explored
    benchmark.extra_info["memo_hits"] = result.stats.memo_hits
    assert result.deterministic
