"""The benchmark corpus: re-creations of the 13 third-party Puppet
configurations the paper evaluates (§6) plus fixed variants of the six
non-deterministic ones.

The original manifests came from GitHub and Puppet Forge; these
re-creations exercise the identical resource-interaction patterns and
carry the same seeded bug classes (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from importlib import resources as importlib_resources
from typing import Dict, List, Optional

from repro.errors import CorpusManifestMissing


@dataclass(frozen=True)
class BenchmarkCase:
    """Metadata for one corpus manifest."""

    name: str
    filename: str
    deterministic: bool
    bug: Optional[str] = None
    fixed_by: Optional[str] = None  # name of the fixed variant
    description: str = ""


CASES: Dict[str, BenchmarkCase] = {
    case.name: case
    for case in [
        BenchmarkCase(
            "amavis",
            "amavis.pp",
            True,
            description="mail content filter; stages + class params",
        ),
        BenchmarkCase(
            "bind",
            "bind.pp",
            True,
            description="DNS server; facts/case + zone defines",
        ),
        BenchmarkCase(
            "clamav",
            "clamav.pp",
            True,
            description="antivirus; package deps + cron + defaults",
        ),
        BenchmarkCase(
            "dns-nondet",
            "dns-nondet.pp",
            False,
            bug="config fragment missing its package dependency",
            fixed_by="dns-fixed",
            description="dnsmasq DNS/DHCP",
        ),
        BenchmarkCase(
            "hosting",
            "hosting.pp",
            True,
            description="multi-site hosting; defines + virtual users + collectors",
        ),
        BenchmarkCase(
            "irc-nondet",
            "irc-nondet.pp",
            False,
            bug="ssh key missing its user-account dependency",
            fixed_by="irc-fixed",
            description="ngircd IRC server with operator account",
        ),
        BenchmarkCase(
            "jpa",
            "jpa.pp",
            True,
            description="Java web app; inheritance + cross-class deps",
        ),
        BenchmarkCase(
            "logstash-nondet",
            "logstash-nondet.pp",
            False,
            bug="pipeline config missing its package dependency",
            fixed_by="logstash-fixed",
            description="log aggregation",
        ),
        BenchmarkCase(
            "monit",
            "monit.pp",
            True,
            description="process monitoring; per-check defines",
        ),
        BenchmarkCase(
            "nginx",
            "nginx.pp",
            True,
            description="web server; parameterized class",
        ),
        BenchmarkCase(
            "ntp-nondet",
            "ntp-nondet.pp",
            False,
            bug="config file overwrites a package file without ordering "
            "(the Fig. 3a pattern)",
            fixed_by="ntp-fixed",
            description="time synchronization",
        ),
        BenchmarkCase(
            "rsyslog-nondet",
            "rsyslog-nondet.pp",
            False,
            bug="forwarding fragment missing its package dependency",
            fixed_by="rsyslog-fixed",
            description="system logging",
        ),
        BenchmarkCase(
            "xinetd-nondet",
            "xinetd-nondet.pp",
            False,
            bug="main config overwrites the package default without ordering",
            fixed_by="xinetd-fixed",
            description="super-server with tftp entry",
        ),
    ]
}

FIXED_VARIANTS: Dict[str, str] = {
    "dns-fixed": "dns-fixed.pp",
    "irc-fixed": "irc-fixed.pp",
    "logstash-fixed": "logstash-fixed.pp",
    "ntp-fixed": "ntp-fixed.pp",
    "rsyslog-fixed": "rsyslog-fixed.pp",
    "xinetd-fixed": "xinetd-fixed.pp",
}

BENCHMARK_NAMES: List[str] = sorted(CASES)
DETERMINISTIC_NAMES = [n for n in BENCHMARK_NAMES if CASES[n].deterministic]
NONDET_NAMES = [n for n in BENCHMARK_NAMES if not CASES[n].deterministic]


def load_source(name: str) -> str:
    """Manifest source text for a benchmark (or fixed variant) name."""
    if name in CASES:
        filename = CASES[name].filename
    elif name in FIXED_VARIANTS:
        filename = FIXED_VARIANTS[name]
    else:
        raise KeyError(
            f"unknown corpus manifest {name!r}; available: "
            f"{BENCHMARK_NAMES + sorted(FIXED_VARIANTS)}"
        )
    package = importlib_resources.files("repro.corpus") / "manifests"
    try:
        return (package / filename).read_text(encoding="utf8")
    except FileNotFoundError:
        raise CorpusManifestMissing(name, filename, str(package)) from None


def manifest_dir():
    """Path to the on-disk directory holding every corpus manifest —
    the natural target for ``rehearsal verify-batch``."""
    return importlib_resources.files("repro.corpus") / "manifests"


def manifest_paths() -> List[str]:
    """Sorted paths of all 19 corpus manifests (13 benchmarks + 6
    fixed variants)."""
    directory = manifest_dir()
    names = [CASES[n].filename for n in BENCHMARK_NAMES] + sorted(
        FIXED_VARIANTS.values()
    )
    return [str(directory / filename) for filename in sorted(names)]


def idempotence_subject(name: str) -> str:
    """The manifest used for a benchmark's idempotence check: the
    paper checks fixed versions of the non-deterministic benchmarks
    (idempotence is unsound on non-deterministic manifests, §5)."""
    case = CASES[name]
    if case.deterministic:
        return name
    assert case.fixed_by is not None
    return case.fixed_by
