"""Fig. 11c — determinacy-analysis time, commutativity off vs on.

Both configurations run without the §4.4 passes (the paper's middle
column).  Expected shape: without the commutativity reduction the
permutation exploration blows up — the `hosting` benchmark (12
unordered, mutually-commuting resources) exceeds the budget, matching
the paper's timed-out bars — while with it every benchmark finishes.
"""

import pytest

from repro.bench.harness import timed_determinism
from repro.corpus import BENCHMARK_NAMES, CASES

# Benchmarks whose permutation space is too large to explore without
# the commutativity reduction under the default budget (the paper had
# four such; our corpus has one — the largest unordered graph).
EXPECTED_TIMEOUTS_WITHOUT_COMM = {"hosting"}


@pytest.mark.parametrize(
    "commutativity", [False, True], ids=["nocomm", "comm"]
)
@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_fig11c_determinism(benchmark, bench_timeout, name, commutativity):
    def run():
        return timed_determinism(
            name,
            use_commutativity=commutativity,
            use_pruning=False,
            timeout=bench_timeout,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["timed_out"] = result.timed_out
    if commutativity:
        assert not result.timed_out
        assert result.deterministic == CASES[name].deterministic
    elif name in EXPECTED_TIMEOUTS_WITHOUT_COMM:
        assert result.timed_out, (
            f"{name} should exceed the budget without commutativity "
            "checking (the Fig. 11c timeout shape)"
        )
    elif not result.timed_out:
        assert result.deterministic == CASES[name].deterministic
