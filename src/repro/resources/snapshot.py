"""Snapshot semantics for package installed-state checks.

Puppet "checks which packages are installed before it issues any
commands" (§2, Fig. 3c discussion): the installed-state query happens
once per run, not at each resource's execution time.  The default
package model checks its marker at execution time, which is simpler
and adequate for determinacy analysis — but it hides the paper's
Fig. 3c *non-idempotence*: with per-resource checks, `remove perl ->
install go` re-installs perl in the same run and the manifest
converges; with a start-of-run snapshot, the second run removes both
packages and the third reinstalls them — the manifest oscillates.

FS has no variables, so the snapshot is materialized in the filesystem
itself: a prelude program mirrors every package marker into a snapshot
area ``/run/pkg-snapshot`` at the start of the run, and snapshot-mode
package programs consult the snapshot instead of the live marker.  The
pipeline (``Rehearsal``) injects the prelude as a resource every
package depends on, so the compilation stays a plain resource graph.

Enable with ``ModelContext(package_semantics="snapshot")``.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.fs import (
    Expr,
    ID,
    Path,
    creat,
    file_,
    ite,
    none_,
    rm,
    seq,
)
from repro.resources.base import ensure_directory_tree
from repro.resources.package_db import PackageDatabase
from repro.resources.package import (
    _install_body,
    _install_tree,
    _remove_one,
    marker_path,
)

SNAPSHOT_ROOT = Path.of("/run/pkg-snapshot")

SNAPSHOT_PRELUDE_NODE = "PackageSnapshot[prelude]"
"""Graph node id used for the injected prelude resource."""

SNAPSHOT_EPILOGUE_NODE = "PackageSnapshot[epilogue]"
"""Graph node id for the end-of-run cleanup: the snapshot is run-local
bookkeeping (Puppet's query cache dies with the run), so it is cleared
after every package resource has executed — otherwise the bookkeeping
itself would register as state divergence in idempotence checks."""


def snapshot_epilogue(names: Iterable[str]) -> Expr:
    steps: List[Expr] = []
    for name in sorted(set(names)):
        snap = snapshot_path(name)
        steps.append(ite(file_(snap), rm(snap), ID))
    return seq(*steps)


def snapshot_path(name: str) -> Path:
    return SNAPSHOT_ROOT.child(name)


def snapshot_prelude(names: Iterable[str]) -> Expr:
    """Mirror each package's live marker into the snapshot area.

    Idempotent by construction: re-running the prelude re-synchronizes
    the snapshot with the live state, exactly like Puppet re-querying
    dpkg/rpm at the start of each run.
    """
    steps: List[Expr] = [ensure_directory_tree([snapshot_path("x")])]
    for name in sorted(set(names)):
        marker = marker_path(name)
        snap = snapshot_path(name)
        steps.append(
            ite(
                file_(marker),
                # A stray directory at the snapshot path is left alone
                # (the guards test file-ness, so it reads as "not
                # installed" consistently — the install step's own
                # marker check then makes it a no-op).
                ite(none_(snap), creat(snap, f"snap:{name}"), ID),
                ite(file_(snap), rm(snap), ID),
            )
        )
    return seq(*steps)


def install_with_snapshot(db: PackageDatabase, name: str) -> Expr:
    """Install closure, with each step guarded on the *snapshot*.

    The directory tree is ensured unconditionally (same consistency
    argument as the direct model: installed implies directories)."""
    steps = []
    for info in db.install_closure(name):
        steps.append(_install_tree(info))
        steps.append(
            ite(
                file_(snapshot_path(info.name)),
                ID,
                _install_body(info),
            )
        )
    return seq(*steps)


def remove_with_snapshot(db: PackageDatabase, name: str) -> Expr:
    """Remove reverse-dependents then the package, guarded on the
    snapshot."""
    steps = []
    infos = db.reverse_dependents(name) + [db.lookup(name)]
    for info in infos:
        steps.append(
            ite(
                file_(snapshot_path(info.name)),
                _remove_one(info),
                ID,
            )
        )
    return seq(*steps)


def packages_in_snapshot_scope(db: PackageDatabase, names: Iterable[str]) -> List[str]:
    """Every package whose snapshot entry some resource may consult:
    the install and reverse-dependency closures of the named ones."""
    out: set[str] = set()
    for name in names:
        out.update(info.name for info in db.install_closure(name))
        out.update(info.name for info in db.reverse_dependents(name))
        out.add(name)
    return sorted(out)
