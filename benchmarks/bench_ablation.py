"""Ablation benchmarks beyond the paper's figures.

DESIGN.md calls out two design choices worth isolating:

* **resource elimination** separately from file pruning — the paper's
  Fig. 11b toggles them together; this ablation shows each §4.4 pass
  alone;
* **snapshot vs direct package semantics** — the higher-fidelity
  snapshot model (reproducing Fig. 3c's non-idempotence) costs extra
  paths and a prelude resource; this quantifies the overhead on the
  corpus.
"""

import pytest

from repro.analysis.determinism import DeterminismOptions, check_determinism
from repro.core.pipeline import Rehearsal
from repro.corpus import CASES, DETERMINISTIC_NAMES, load_source
from repro.resources import ModelContext

ABLATION_NAMES = ["clamav", "hosting", "jpa", "bind"]


@pytest.mark.parametrize(
    "config",
    ["neither", "elimination", "pruning", "both"],
)
@pytest.mark.parametrize("name", ABLATION_NAMES)
def test_ablation_441_passes(benchmark, bench_timeout, name, config):
    """Isolate the two §4.4 passes (commutativity always on)."""
    tool = Rehearsal()
    graph, programs = tool.compile(load_source(name))
    options = DeterminismOptions(
        use_commutativity=True,
        use_elimination=config in ("elimination", "both"),
        use_pruning=config in ("pruning", "both"),
        timeout_seconds=bench_timeout,
    )

    result = benchmark.pedantic(
        check_determinism,
        args=(graph, programs),
        kwargs={"options": options},
        rounds=1,
        iterations=1,
    )
    assert result.deterministic == CASES[name].deterministic


@pytest.mark.parametrize(
    "semantics", ["direct", "snapshot"], ids=["direct", "snapshot"]
)
@pytest.mark.parametrize("name", DETERMINISTIC_NAMES)
def test_ablation_package_semantics(benchmark, bench_timeout, name, semantics):
    """Verification cost of the snapshot package model."""
    tool = Rehearsal(
        context=ModelContext(package_semantics=semantics),
        options=DeterminismOptions(timeout_seconds=bench_timeout),
    )
    source = load_source(name)

    report = benchmark.pedantic(
        tool.verify, args=(source,), kwargs={"name": name}, rounds=1,
        iterations=1,
    )
    assert report.error is None
    assert report.deterministic is True
    benchmark.extra_info["semantics"] = semantics
