"""The ``rehearsal verify-batch`` CLI: exit codes, reports, caching."""

import json

import pytest

from repro.core.cli import main as cli_main

GOOD = """
file {"/etc/app.conf": content => "x" }
"""

NONDET = """
file {"/etc/apache2/sites-available/default.conf": content => "z" }
package {"apache2": ensure => present }
"""

BROKEN = """
file {"/etc/app.conf" content
"""


@pytest.fixture
def fleet(tmp_path):
    """A directory of manifests plus a private cache directory."""
    manifests = tmp_path / "manifests"
    manifests.mkdir()
    (manifests / "good.pp").write_text(GOOD)
    (manifests / "nondet.pp").write_text(NONDET)
    cache_dir = tmp_path / "cache"
    return manifests, cache_dir


def batch(*argv):
    return cli_main(["verify-batch", *map(str, argv)])


class TestExitCodes:
    def test_zero_when_all_verdicts_land(self, fleet, capsys):
        manifests, cache_dir = fleet
        code = batch(manifests, "--cache-dir", cache_dir)
        out = capsys.readouterr().out
        assert code == 0
        assert "2 manifests: 1 ok, 1 failed, 0 errors" in out

    def test_strict_fails_on_failed_verdicts(self, fleet):
        manifests, cache_dir = fleet
        assert batch(manifests, "--cache-dir", cache_dir, "--strict") == 1

    def test_strict_passes_on_clean_fleet(self, tmp_path):
        (tmp_path / "good.pp").write_text(GOOD)
        assert batch(tmp_path, "--no-cache", "--strict") == 0

    def test_one_on_error_manifest(self, tmp_path, capsys):
        (tmp_path / "broken.pp").write_text(BROKEN)
        code = batch(tmp_path, "--no-cache")
        out = capsys.readouterr().out
        assert code == 1
        assert "1 errors" in out

    def test_two_on_missing_target(self, tmp_path, capsys):
        code = batch(tmp_path / "nope")
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_two_on_directory_without_manifests(self, tmp_path, capsys):
        code = batch(tmp_path)
        assert code == 2
        assert "no *.pp manifests" in capsys.readouterr().err

    def test_two_on_bad_worker_count(self, fleet, capsys):
        manifests, _ = fleet
        assert batch(manifests, "--no-cache", "--workers", "0") == 2
        assert "--workers" in capsys.readouterr().err


class TestCacheFlow:
    def test_second_run_is_all_hits(self, fleet, capsys):
        manifests, cache_dir = fleet
        batch(manifests, "--cache-dir", cache_dir)
        capsys.readouterr()
        code = batch(manifests, "--cache-dir", cache_dir)
        out = capsys.readouterr().out
        assert code == 0
        assert "cache 2 hit(s) / 0 miss(es)" in out
        assert "solver 0.000s" in out

    def test_no_cache_never_hits(self, fleet, capsys):
        manifests, cache_dir = fleet
        batch(manifests, "--cache-dir", cache_dir, "--no-cache")
        capsys.readouterr()
        batch(manifests, "--cache-dir", cache_dir, "--no-cache")
        out = capsys.readouterr().out
        assert "cache 0 hit(s) / 0 miss(es)" in out
        assert not cache_dir.exists(), "--no-cache must not write the cache"

    def test_editing_a_manifest_invalidates_only_it(self, fleet, capsys):
        manifests, cache_dir = fleet
        batch(manifests, "--cache-dir", cache_dir)
        (manifests / "good.pp").write_text(
            GOOD + '\nfile {"/etc/second.conf": content => "y" }\n'
        )
        capsys.readouterr()
        batch(manifests, "--cache-dir", cache_dir)
        out = capsys.readouterr().out
        assert "cache 1 hit(s) / 1 miss(es)" in out


class TestJsonReport:
    def test_json_written_to_file(self, fleet, tmp_path):
        manifests, cache_dir = fleet
        out_path = tmp_path / "report.json"
        batch(manifests, "--cache-dir", cache_dir, "--json", out_path)
        payload = json.loads(out_path.read_text())
        assert payload["summary"] == {
            "manifests": 2,
            "ok": 1,
            "failed": 1,
            "errors": 0,
            "solver_seconds": payload["summary"]["solver_seconds"],
        }
        names = {r["name"] for r in payload["results"]}
        assert names == {
            str(manifests / "good.pp"),
            str(manifests / "nondet.pp"),
        }
        statuses = {
            r["name"].rsplit("/", 1)[-1]: r["status"]
            for r in payload["results"]
        }
        assert statuses == {"good.pp": "ok", "nondet.pp": "failed"}

    def test_unwritable_json_path_fails_fast(self, fleet, capsys):
        manifests, _ = fleet
        code = batch(
            manifests, "--no-cache", "--json", "/nonexistent/dir/report.json"
        )
        assert code == 2
        assert "cannot write --json" in capsys.readouterr().err

    def test_json_path_that_is_a_directory_fails_fast(
        self, fleet, tmp_path, capsys
    ):
        manifests, _ = fleet
        target = tmp_path / "adir"
        target.mkdir()
        code = batch(manifests, "--no-cache", "--json", target)
        assert code == 2
        assert "directory" in capsys.readouterr().err

    def test_failed_json_precheck_leaves_no_file_behind(
        self, fleet, tmp_path
    ):
        _, _ = fleet
        out_path = tmp_path / "report.json"
        # Batch aborts before verification (bad target), and the
        # precheck must not have created the report file.
        assert batch(tmp_path / "nope", "--json", out_path) == 2
        assert not out_path.exists()

    def test_json_to_stdout(self, fleet, capsys):
        manifests, cache_dir = fleet
        batch(manifests, "--cache-dir", cache_dir, "--json", "-")
        out = capsys.readouterr().out
        start = out.index("{")
        payload = json.loads(out[start:])
        assert payload["summary"]["manifests"] == 2


class TestDispatch:
    def test_explicit_verify_subcommand(self, tmp_path, capsys):
        manifest = tmp_path / "good.pp"
        manifest.write_text(GOOD)
        assert cli_main(["verify", str(manifest)]) == 0
        assert "DETERMINISTIC" in capsys.readouterr().out

    def test_single_verify_missing_manifest_exits_2(self, tmp_path, capsys):
        code = cli_main(["verify", str(tmp_path / "typo.pp")])
        assert code == 2
        assert "cannot read manifest" in capsys.readouterr().err

    def test_legacy_bare_manifest_still_works(self, tmp_path, capsys):
        manifest = tmp_path / "good.pp"
        manifest.write_text(GOOD)
        assert cli_main([str(manifest)]) == 0
        assert "DETERMINISTIC" in capsys.readouterr().out

    def test_multiple_targets_mix_files_and_dirs(self, fleet, tmp_path, capsys):
        manifests, cache_dir = fleet
        extra = tmp_path / "extra.pp"
        extra.write_text(GOOD)
        code = batch(manifests, extra, "--cache-dir", cache_dir)
        out = capsys.readouterr().out
        assert code == 0
        assert "3 manifests" in out

    def test_overlapping_targets_are_deduplicated(self, fleet, capsys):
        manifests, cache_dir = fleet
        code = batch(manifests, manifests / "good.pp", "--cache-dir", cache_dir)
        out = capsys.readouterr().out
        assert code == 0
        assert "2 manifests: 1 ok, 1 failed" in out

    def test_budget_exhaustion_is_an_error_row_not_a_crash(
        self, fleet, capsys
    ):
        manifests, _ = fleet
        code = batch(manifests / "nondet.pp", "--no-cache", "--timeout", "1e-9")
        out = capsys.readouterr().out
        assert code == 1
        assert "1 errors" in out

    def test_cache_clear_subcommand(self, fleet, capsys):
        manifests, cache_dir = fleet
        batch(manifests, "--cache-dir", cache_dir)
        capsys.readouterr()
        assert cli_main(["cache-clear", "--cache-dir", str(cache_dir)]) == 0
        assert "removed 2 cached verdict(s)" in capsys.readouterr().out
        code = batch(manifests, "--cache-dir", cache_dir)
        assert "cache 0 hit(s) / 2 miss(es)" in capsys.readouterr().out
        assert code == 0


class TestCorpusBatch:
    """The acceptance scenario over the real §6 corpus (serial, so the
    suite stays fast on small machines; parallel equivalence is covered
    in test_service.py)."""

    def test_corpus_verdicts_and_cache(self, tmp_path, capsys):
        from repro.corpus import NONDET_NAMES, manifest_dir

        cache_dir = tmp_path / "cache"
        code = batch(manifest_dir(), "--cache-dir", cache_dir)
        out = capsys.readouterr().out
        assert code == 0
        assert "19 manifests: 13 ok, 6 failed, 0 errors" in out
        code = batch(manifest_dir(), "--cache-dir", cache_dir)
        out = capsys.readouterr().out
        assert code == 0
        assert "cache 19 hit(s) / 0 miss(es)" in out
        assert "solver 0.000s" in out
        for name in NONDET_NAMES:
            assert f"{name}.pp" in out
