"""Symbolic execution of FS programs into boolean formulas (Fig. 7).

``apply_expr`` implements the combination of the paper's ``ok(e)`` and
``f(e)``: it threads a :class:`SymbolicState` through an expression,
conjoining error conditions into ``Σ.ok`` and functionally updating
``Σ.fs``.  Conditionals join both branches with if-then-else at every
touched path, so the result is a *single* state per expression — FS
expressions denote functions (§5), only resource graphs denote
relations.
"""

from __future__ import annotations

from typing import Dict

from repro.fs import syntax as fx
from repro.fs.paths import Path
from repro.logic.terms import Term, TermBank
from repro.smt.state import SymbolicState
from repro.smt.values import SymbolicValue, V_DIR, V_DNE, VFile


def encode_pred(
    bank: TermBank, state: SymbolicState, pred: fx.Pred
) -> Term:
    """encPred(σ̂, a): the predicate as a formula over the state."""
    if isinstance(pred, fx.PTrue):
        return bank.TRUE
    if isinstance(pred, fx.PFalse):
        return bank.FALSE
    if isinstance(pred, fx.IsNone):
        return _value(state, pred.path).is_dne(bank)
    if isinstance(pred, fx.IsFile):
        return _value(state, pred.path).is_file(bank)
    if isinstance(pred, fx.IsDir):
        return _is_dir(bank, state, pred.path)
    if isinstance(pred, fx.IsEmptyDir):
        return bank.and_(
            _is_dir(bank, state, pred.path),
            _children_absent(bank, state, pred.path),
        )
    if isinstance(pred, fx.IsFileWith):
        return _value(state, pred.path).has_content(bank, pred.content)
    if isinstance(pred, fx.PNot):
        return bank.not_(encode_pred(bank, state, pred.inner))
    if isinstance(pred, fx.PAnd):
        return bank.and_(
            encode_pred(bank, state, pred.left),
            encode_pred(bank, state, pred.right),
        )
    if isinstance(pred, fx.POr):
        return bank.or_(
            encode_pred(bank, state, pred.left),
            encode_pred(bank, state, pred.right),
        )
    raise TypeError(f"unknown predicate: {pred!r}")


def apply_expr(
    bank: TermBank, state: SymbolicState, expr: fx.Expr
) -> SymbolicState:
    """Φ(e)⟨ok, fs⟩ = ⟨ok ∧ ok(e)fs, f(e)fs⟩."""
    if isinstance(expr, fx.Id):
        return state
    if isinstance(expr, fx.Err):
        return state.with_ok(bank.FALSE)
    if isinstance(expr, fx.Mkdir):
        pre = bank.and_(
            _is_dir(bank, state, expr.path.parent()),
            _value(state, expr.path).is_dne(bank),
        )
        return state.with_ok(bank.and_(state.ok, pre)).update(
            expr.path, SymbolicValue.const(bank, V_DIR)
        )
    if isinstance(expr, fx.Creat):
        pre = bank.and_(
            _is_dir(bank, state, expr.path.parent()),
            _value(state, expr.path).is_dne(bank),
        )
        return state.with_ok(bank.and_(state.ok, pre)).update(
            expr.path, SymbolicValue.const(bank, VFile(expr.content))
        )
    if isinstance(expr, fx.Rm):
        value = _value(state, expr.path)
        pre = bank.or_(
            value.is_file(bank),
            bank.and_(
                value.is_dir(bank),
                _children_absent(bank, state, expr.path),
            ),
        )
        return state.with_ok(bank.and_(state.ok, pre)).update(
            expr.path, SymbolicValue.const(bank, V_DNE)
        )
    if isinstance(expr, fx.Cp):
        src = _value(state, expr.src)
        pre = bank.and_(
            src.is_file(bank),
            _is_dir(bank, state, expr.dst.parent()),
            _value(state, expr.dst).is_dne(bank),
        )
        return state.with_ok(bank.and_(state.ok, pre)).update(
            expr.dst, src
        )
    if isinstance(expr, fx.Seq):
        return apply_expr(
            bank, apply_expr(bank, state, expr.first), expr.second
        )
    if isinstance(expr, fx.If):
        guard = encode_pred(bank, state, expr.pred)
        if guard is bank.TRUE:
            return apply_expr(bank, state, expr.then_branch)
        if guard is bank.FALSE:
            return apply_expr(bank, state, expr.else_branch)
        then_state = apply_expr(bank, state, expr.then_branch)
        else_state = apply_expr(bank, state, expr.else_branch)
        return _join(bank, guard, then_state, else_state)
    raise TypeError(f"unknown expression: {expr!r}")


def _join(
    bank: TermBank,
    guard: Term,
    then_state: SymbolicState,
    else_state: SymbolicState,
) -> SymbolicState:
    ok = bank.ite(guard, then_state.ok, else_state.ok)
    fs: Dict[Path, SymbolicValue] = dict(else_state.fs)
    for path, then_value in then_state.fs.items():
        else_value = else_state.fs.get(path, then_value)
        fs[path] = SymbolicValue.ite(bank, guard, then_value, else_value)
    return SymbolicState(ok, fs)


def _value(state: SymbolicState, path: Path) -> SymbolicValue:
    return state.value(path)


def _is_dir(bank: TermBank, state: SymbolicState, path: Path) -> Term:
    """dir?(p); the root is always a directory."""
    if path.is_root:
        return bank.TRUE
    return state.value(path).is_dir(bank)


def _children_absent(
    bank: TermBank, state: SymbolicState, path: Path
) -> Term:
    """All *modeled* children of ``path`` are absent.  Complete because
    the domain (Fig. 8) contains a fresh witness child for every path
    whose children are observable (rm / emptydir?)."""
    parts = []
    for candidate, value in state.fs.items():
        if candidate.is_child_of(path):
            parts.append(value.is_dne(bank))
    return bank.and_(*parts)
