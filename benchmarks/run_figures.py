#!/usr/bin/env python3
"""Regenerate every figure of the paper's §6 as text tables.

This is the standalone companion to the pytest-benchmark suite: it
prints the same rows/series the paper plots, suitable for pasting into
EXPERIMENTS.md.

Run:  python benchmarks/run_figures.py [--timeout SECONDS]
"""

from __future__ import annotations

import argparse

from repro.bench.harness import (
    fig11a_rows,
    fig11b_rows,
    fig11c_rows,
    fig12_rows,
    fig13_deterministic_rows,
    fig13_rows,
    render_rows,
    verdict_rows,
)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--timeout",
        type=float,
        default=20.0,
        help="per-configuration budget in seconds (paper: 600)",
    )
    args = parser.parse_args()

    print(
        render_rows(
            "Fig. 11a — written paths per state (pruning off / on)",
            ["benchmark", "no pruning", "pruning"],
            fig11a_rows(),
        )
    )
    print()
    print(
        render_rows(
            "Fig. 11b — determinacy time, commutativity on "
            "(pruning off / on)",
            ["benchmark", "no pruning", "pruning"],
            fig11b_rows(timeout=args.timeout),
        )
    )
    print()
    print(
        render_rows(
            "Fig. 11c — determinacy time, §4.4 passes off "
            "(commutativity off / on)",
            ["benchmark", "no commutativity", "commutativity"],
            fig11c_rows(timeout=args.timeout),
        )
    )
    print()
    print(
        render_rows(
            "Fig. 12 — idempotence-check time",
            ["benchmark", "time"],
            fig12_rows(),
        )
    )
    print()
    print(
        render_rows(
            "Fig. 13 — n conflicting writes (non-deterministic: "
            "early SAT model)",
            ["n", "time"],
            fig13_rows(ns=(2, 3, 4, 5, 6), timeout=args.timeout),
        )
    )
    print()
    print(
        render_rows(
            "Fig. 13 — deterministic variant (full UNSAT proof)",
            ["n", "time"],
            fig13_deterministic_rows(ns=(2, 3, 4, 5), timeout=args.timeout),
        )
    )
    print()
    print(
        render_rows(
            '§6 "Bugs found" — verdicts',
            ["benchmark", "deterministic", "idempotent (of fix)"],
            [
                (name, "yes" if det else "NO", "yes" if idem else "NO")
                for name, det, idem in verdict_rows()
            ],
        )
    )


if __name__ == "__main__":
    main()
