# rehearsal-fuzz reproducer
# seed: 42
# case-id: 5
# generator-version: 1
# bug-class: shared-write
# found-by: sabotage-drill
# disagreement: missed_nondet
# expected-deterministic: false
# expected-idempotent: none

file {
  '/srv/fuzz/f3.conf':
    content => 'a',
    ensure => 'file',
}
file {
  '/srv/fuzz/f3.conf#2':
    content => 'b',
    ensure => 'file',
    path => '/srv/fuzz/f3.conf',
}
