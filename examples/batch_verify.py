#!/usr/bin/env python3
"""Batch verification: verify the whole §6 corpus as one fleet.

One `BatchVerifier` call replaces 19 single-manifest runs: manifests
fan out to worker processes, every verdict lands in a
content-addressed cache, and a second run over the unchanged fleet is
served entirely from cache — no solver work at all.  The same flow is
available from the command line:

    rehearsal verify-batch src/repro/corpus/manifests --workers 4

Run:  python examples/batch_verify.py
"""

import tempfile

from repro import BatchVerifier, VerdictCache
from repro.core.report import render_batch_report
from repro.corpus import manifest_dir


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="rehearsal-example-") as cache_dir:
        verifier = BatchVerifier(workers=2, cache=VerdictCache(cache_dir))

        print("== cold run: every manifest is verified from scratch ==")
        cold = verifier.verify_directory(str(manifest_dir()))
        print(render_batch_report(cold))

        print()
        print("== warm run: the unchanged fleet is served from cache ==")
        warm = verifier.verify_directory(str(manifest_dir()))
        print(render_batch_report(warm))

        assert warm.cache.hits == len(warm.results), "expected all hits"
        assert warm.solver_seconds == 0.0, "cache hits never touch the solver"

        # The run report is also available as JSON (the CLI's --json):
        payload = warm.to_dict()
        print()
        print(
            f"JSON report: {payload['summary']['manifests']} manifests, "
            f"{payload['summary']['ok']} ok, "
            f"{payload['cache']['hits']} cache hits"
        )


if __name__ == "__main__":
    main()
