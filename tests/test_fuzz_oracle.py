"""The concrete interleaving oracle against hand-built catalogs."""

import networkx as nx
import pytest

from repro.fs import creat, file_, file_with, ite, mkdir, rm, seq
from repro.fs.filesystem import DIR, FileContent, FileSystem
from repro.fs.paths import Path
from repro.testing.oracle import (
    MAX_ORACLE_RESOURCES,
    initial_state_family,
    racing_pairs,
    run_oracle,
)

ETC = Path.of("/etc")
A = Path.of("/etc/a")
B = Path.of("/etc/b")


def graph_of(programs, edges=()):
    g = nx.DiGraph()
    for name in programs:
        g.add_node(name)
    g.add_edges_from(edges)
    return g


def write(path, content):
    """Idempotent 'force file content' (the file-resource idiom)."""
    return seq(
        ite(file_(path), rm(path), seq()),
        creat(path, content),
    )


class TestVerdicts:
    def test_disjoint_writers_are_deterministic(self):
        programs = {
            "a": creat(A, "x"),
            "b": creat(B, "y"),
        }
        report = run_oracle(graph_of(programs), programs)
        assert report.deterministic is True
        assert not report.skipped

    def test_shared_write_is_nondeterministic(self):
        programs = {
            "a": write(A, "one"),
            "b": write(A, "two"),
        }
        report = run_oracle(graph_of(programs), programs)
        assert report.deterministic is False
        div = report.divergence
        assert div is not None
        assert div.outcome_a != div.outcome_b
        assert report.racing, "a concrete divergence must name a pair"
        assert report.racing[0].key == ("a", "b")
        assert "/etc/a" in report.racing[0].paths

    def test_ordering_edge_restores_determinism(self):
        programs = {
            "a": write(A, "one"),
            "b": write(A, "two"),
        }
        graph = graph_of(programs, [("a", "b")])
        report = run_oracle(graph, programs)
        assert report.deterministic is True

    def test_parent_dir_race_found_via_knockout_states(self):
        # 'user' creates /etc; 'key' errors without /etc.  The
        # scaffold state has /etc present, so only the knockout family
        # member exposes the ok-divergence.
        programs = {
            "user": ite(file_(ETC), seq(), mkdir(ETC)),
            "key": creat(A, "k"),
        }
        report = run_oracle(graph_of(programs), programs)
        assert report.deterministic is False
        assert any(r.ok_divergence for r in report.racing)

    def test_nonidempotent_catalog_detected(self):
        # Unconditional create: second run errors on the existing file.
        programs = {"a": creat(A, "x")}
        graph = graph_of(programs)
        report = run_oracle(graph, programs)
        assert report.deterministic is True
        # creat errors when /etc is missing too — for the single-
        # resource graph every order agrees, but a second run from the
        # success state errors, which e ≡ e;e treats as non-idempotent
        # ... except ERROR short-circuits make an erroring first run
        # trivially idempotent.  From the scaffold the first run
        # succeeds and the second errors: non-idempotent.
        assert report.idempotent is False
        initial, once, twice = report.idempotence_witness
        assert once != twice

    def test_error_is_absorbing_not_divergence(self):
        # Both orders end in ERROR (creat without the parent dir in
        # the empty state); all-error outcomes agree per initial state.
        programs = {
            "a": creat(A, "x"),
            "b": creat(A, "x"),
        }
        report = run_oracle(
            graph_of(programs), programs, max_states=1
        )  # family collapses to the empty filesystem
        assert report.deterministic is True


class TestScope:
    def test_oversized_catalog_is_skipped(self):
        programs = {
            f"r{i}": creat(Path.of(f"/etc/f{i}"), "x")
            for i in range(MAX_ORACLE_RESOURCES + 1)
        }
        report = run_oracle(graph_of(programs), programs)
        assert report.skipped
        assert report.deterministic is None
        assert "exceed" in report.skip_reason

    def test_blown_evaluation_budget_is_a_skip(self):
        programs = {
            "a": write(A, "one"),
            "b": write(A, "two"),
            "c": write(B, "z"),
        }
        report = run_oracle(
            graph_of(programs), programs, max_evaluations=3
        )
        assert report.skipped
        assert report.deterministic is None

    def test_found_divergence_survives_racing_budget_blowup(
        self, monkeypatch
    ):
        # Once a concrete divergence exists the verdict is decisive:
        # racing-pair *attribution* running out of budget degrades to
        # an empty pair list, never back to a skip.
        from repro.testing import oracle as oracle_mod

        def exploding(*args, **kwargs):
            raise oracle_mod.OracleBudgetExceeded()

        monkeypatch.setattr(oracle_mod, "racing_pairs", exploding)
        programs = {
            "a": write(A, "one"),
            "b": write(A, "two"),
        }
        report = oracle_mod.run_oracle(graph_of(programs), programs)
        assert not report.skipped
        assert report.deterministic is False
        assert report.divergence is not None
        assert report.racing == []

    def test_idempotence_budget_blowup_keeps_determinism_verdict(self):
        # Enough budget to prove determinism of the single order but
        # not to re-run it for the idempotence question.
        programs = {"a": write(A, "one"), "b": creat(B, "y")}
        graph = graph_of(programs, [("a", "b")])
        full = run_oracle(graph, programs)
        assert full.deterministic is True
        budget_needed = full.evaluations
        report = run_oracle(
            graph, programs, max_evaluations=budget_needed - 1
        )
        if not report.skipped:  # exploration itself fit
            assert report.deterministic is True
            assert report.idempotent is None

    def test_extra_states_are_tried_first(self):
        # A divergence only triggered by content the sampled family
        # never produces ("three" is not the first sorted content, so
        # the converged member holds "one"): only the caller-provided
        # witness state exposes it.
        special = FileSystem({ETC: DIR, A: FileContent("three")})
        programs = {
            "a": ite(file_with(A, "three"), write(A, "one"), seq()),
            "b": ite(file_with(A, "three"), write(A, "two"), seq()),
        }
        report = run_oracle(
            graph_of(programs),
            programs,
            extra_states=[special],
            max_states=0,
        )
        assert report.deterministic is False
        assert report.divergence.initial == special

        without = run_oracle(
            graph_of(programs), programs, max_states=0
        )
        assert without.deterministic is True


class TestStateFamily:
    def test_family_is_deterministic(self):
        programs = [write(A, "one"), creat(B, "y")]
        first = initial_state_family(programs, seed=3)
        second = initial_state_family(programs, seed=3)
        assert first == second
        assert first != initial_state_family(programs, seed=4)

    def test_family_members_are_well_formed(self):
        programs = [
            write(Path.of("/a/b/c/d"), "x"),
            mkdir(Path.of("/a/b")),
            creat(Path.of("/q/r"), "y"),
        ]
        for fs in initial_state_family(programs, max_states=30, seed=1):
            assert fs.is_well_formed(), fs

    def test_family_contains_empty_and_scaffold(self):
        programs = [write(A, "one")]
        family = initial_state_family(programs)
        assert FileSystem.empty() in family
        assert FileSystem({ETC: DIR}) in family

    def test_no_paths_means_single_empty_state(self):
        assert initial_state_family([seq()]) == [FileSystem.empty()]


class TestRacingPairs:
    def test_pair_racing_only_after_setup_is_found(self):
        # a and b fight over /etc/a, but only once 'setup' created
        # /etc: the racing check must look at reachable intermediate
        # states, not just the initial one.
        programs = {
            "setup": mkdir(ETC),
            "a": write(A, "one"),
            "b": write(A, "two"),
        }
        pairs = racing_pairs(
            graph_of(programs), programs, FileSystem.empty()
        )
        assert ("a", "b") in {p.key for p in pairs}

    def test_ordered_pairs_are_not_reported(self):
        programs = {
            "a": write(A, "one"),
            "b": write(A, "two"),
        }
        graph = graph_of(programs, [("a", "b")])
        pairs = racing_pairs(graph, programs, FileSystem({ETC: DIR}))
        assert pairs == []
