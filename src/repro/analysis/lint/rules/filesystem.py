"""Filesystem-hygiene rules (REH009 missing-parent-dir, REH010
protected-write)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.audit import audit_writes
from repro.analysis.lint.diagnostics import Diagnostic, Severity
from repro.analysis.lint.engine import (
    LintContext,
    Rule,
    graph_checker,
    register_rule,
)
from repro.fs.paths import Path

register_rule(
    Rule(
        id="REH009",
        name="missing-parent-dir",
        severity=Severity.NOTE,
        summary="resource writes under a directory no resource manages",
        description=(
            "A resource writes a path whose parent directory is not "
            "created or ensured by any resource in the catalog. The "
            "write fails on hosts where the directory does not "
            "pre-exist; Puppet's file auto-require (Fig. 1 footnote) "
            "only helps when the parent is itself managed. Advisory: "
            "system directories like /etc routinely pre-exist."
        ),
    )
)

register_rule(
    Rule(
        id="REH010",
        name="protected-write",
        severity=Severity.WARNING,
        summary="resource writes inside a protected subtree",
        description=(
            "A resource's footprint writes (or ensures a directory) "
            "inside a subtree listed as protected (--protect). Reuses "
            "the §9 write-scope audit."
        ),
    )
)


@graph_checker
def missing_parent_dirs(ctx: LintContext) -> Iterable[Diagnostic]:
    if ctx.graph is None or not ctx.programs:
        return
    managed: Set[Path] = set()
    for fp in ctx.footprints.values():
        managed |= fp.writes | fp.dir_ensures
    seen: Set[Tuple[str, Path]] = set()
    for node in sorted(ctx.programs, key=str):
        fp = ctx.footprints[node]
        for path in sorted(fp.writes):
            parent = path.parent()
            if parent.is_root or parent in managed:
                continue
            key = (str(node), parent)
            if key in seen:
                continue
            seen.add(key)
            line, col = ctx.span_of(node)
            yield ctx.diag(
                "REH009",
                f"{node} writes {path} but no resource manages the "
                f"parent directory {parent}",
                line=line,
                col=col,
                resource=str(node),
                paths=(str(parent),),
            )


@graph_checker
def protected_writes(ctx: LintContext) -> Iterable[Diagnostic]:
    if not ctx.options.protected or not ctx.programs:
        return
    report = audit_writes(ctx.programs, list(ctx.options.protected))
    for finding in report.findings:
        line, col = ctx.span_of(finding.resource)
        yield ctx.diag(
            "REH010",
            f"{finding.resource}: {finding.kind} of {finding.path} "
            f"inside a protected subtree",
            line=line,
            col=col,
            resource=str(finding.resource),
            paths=(str(finding.path),),
        )
