"""Tseitin transformation from formula DAGs to CNF.

Each internal DAG node gets a fresh propositional variable; clauses
constrain it to equal its definition.  The transformation is
equisatisfiable and linear in DAG size.  Negative literals are encoded
as negative integers (DIMACS convention); variable 0 is never used.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol

from repro.logic.terms import Term, TermBank, iter_dag

Clause = List[int]


class SubtermCache(Protocol):
    """Persistent store of encoded CNF blocks keyed by structural digest.

    A *block* is the Tseitin encoding of one subformula with local
    variable numbering: internal (definitional) variables are 1..v,
    named input variables are v+1.. and listed in ``names``; ``root``
    is the block-local literal equivalent to the subformula.  Blocks
    rehydrate into any CNF by allocating fresh internal variables and
    resolving names through ``var_ids`` — nothing in a block depends on
    process-local uids or on the surrounding query.
    """

    def get(self, digest: str) -> Optional[dict]: ...

    def put(self, digest: str, block: dict) -> None: ...


@dataclass
class CNF:
    """A CNF instance plus the mapping back to named variables."""

    num_vars: int = 0
    clauses: List[Clause] = field(default_factory=list)
    var_ids: Dict[str, int] = field(default_factory=dict)

    def new_var(self, name: Optional[str] = None) -> int:
        self.num_vars += 1
        if name is not None:
            self.var_ids[name] = self.num_vars
        return self.num_vars

    def add(self, clause: Clause) -> None:
        self.clauses.append(clause)

    def name_of(self, var: int) -> Optional[str]:
        for name, vid in self.var_ids.items():
            if vid == var:
                return name
        return None

    def decode(self, assignment: Dict[int, bool]) -> Dict[str, bool]:
        """Restrict a solver assignment to the named (input) variables."""
        return {
            name: assignment.get(vid, False)
            for name, vid in self.var_ids.items()
        }


class TseitinEncoder:
    """Incremental Tseitin encoder with a persistent node cache.

    Encoding several terms of one :class:`~repro.logic.terms.TermBank`
    through the same encoder shares the definitional variables of every
    common subterm: a DAG node is clausified exactly once, no matter
    how many asserted terms it appears in.  This is what lets a batch
    of structurally-overlapping queries (e.g. the per-pair determinacy
    differences) reuse one CNF and one solver instance.
    """

    def __init__(
        self,
        cnf: Optional[CNF] = None,
        subterm_cache: Optional[SubtermCache] = None,
        digest_fn: Optional[Callable[[Term], str]] = None,
    ):
        self.cnf = cnf if cnf is not None else CNF()
        self._node_lit: Dict[int, int] = {}
        # Optional persistence: with a cache and a stable digest
        # function attached, and/or nodes whose encodings were recorded
        # by an earlier run rehydrate instead of being re-clausified.
        self.subterm_cache = subterm_cache
        self._digest_fn = digest_fn
        self.cache_hits = 0

    def lit(self, root: Term) -> int:
        """The CNF literal defined to be equivalent to ``root``,
        emitting definition clauses for nodes not yet encoded."""
        if self.subterm_cache is not None and self._digest_fn is not None:
            misses = self._rehydrate_pass(root)
        else:
            misses = []
        cnf = self.cnf
        node_lit = self._node_lit

        def lit_of_const(value: bool) -> int:
            # Constants get dedicated variables pinned by unit clauses
            # (rare: constant folding removes most constants first).
            name = "$true" if value else "$false"
            vid = cnf.var_ids.get(name)
            if vid is None:
                vid = cnf.new_var(name)
                cnf.add([vid] if value else [-vid])
            return vid

        for node in _topo_order(root, node_lit):
            if node.uid in node_lit:
                continue
            if node.kind == "true":
                node_lit[node.uid] = lit_of_const(True)
            elif node.kind == "false":
                node_lit[node.uid] = lit_of_const(False)
            elif node.kind == "var":
                vid = cnf.var_ids.get(node.name)
                if vid is None:
                    vid = cnf.new_var(node.name)
                node_lit[node.uid] = vid
            elif node.kind == "not":
                node_lit[node.uid] = -node_lit[node.args[0].uid]
            elif node.kind == "and":
                fresh = cnf.new_var()
                child_lits = [node_lit[a.uid] for a in node.args]
                for cl in child_lits:
                    cnf.add([-fresh, cl])
                cnf.add([fresh] + [-cl for cl in child_lits])
                node_lit[node.uid] = fresh
            elif node.kind == "or":
                fresh = cnf.new_var()
                child_lits = [node_lit[a.uid] for a in node.args]
                for cl in child_lits:
                    cnf.add([fresh, -cl])
                cnf.add([-fresh] + child_lits)
                node_lit[node.uid] = fresh
            else:
                raise TypeError(f"unknown term kind: {node.kind}")
        for miss in misses:
            self.subterm_cache.put(  # type: ignore[union-attr]
                self._digest_fn(miss), _extract_block(miss)  # type: ignore[misc]
            )
        return node_lit[root.uid]

    # -- persistent block cache ---------------------------------------------

    def _rehydrate_pass(self, root: Term) -> List[Term]:
        """Top-down sweep resolving cached and/or nodes before the
        encode loop runs; returns the nodes worth recording afterwards
        (the root and its immediate and/or arguments that missed).
        Children below a hit are never visited — that is the saving."""
        assert self.subterm_cache is not None and self._digest_fn is not None
        node_lit = self._node_lit
        record: List[Term] = []
        seen: set[int] = set()
        stack = [root]
        while stack:
            node = stack.pop()
            if node.uid in seen or node.uid in node_lit:
                continue
            seen.add(node.uid)
            if node.kind in ("and", "or"):
                block = self.subterm_cache.get(self._digest_fn(node))
                if block is not None:
                    node_lit[node.uid] = self._inflate_block(block)
                    self.cache_hits += 1
                    continue
                if node is root or (
                    root.kind in ("and", "or") and node in root.args
                ):
                    record.append(node)
            stack.extend(node.args)
        return record

    def _inflate_block(self, block: dict) -> int:
        """Copy a recorded block into this encoder's CNF: fresh
        internal variables, named variables resolved by name."""
        cnf = self.cnf
        num_internal = block["v"]
        vmap: Dict[int, int] = {}
        for i in range(1, num_internal + 1):
            vmap[i] = cnf.new_var()
        for j, name in enumerate(block["names"]):
            vid = cnf.var_ids.get(name)
            if vid is None:
                vid = cnf.new_var(name)
            vmap[num_internal + 1 + j] = vid
        for clause in block["clauses"]:
            cnf.add([vmap[abs(l)] * (1 if l > 0 else -1) for l in clause])
        r = block["root"]
        return vmap[abs(r)] * (1 if r > 0 else -1)


def tseitin(root: Term, bank: TermBank, cnf: Optional[CNF] = None) -> tuple[CNF, int]:
    """Encode ``root`` into ``cnf``; returns the CNF and the root literal.

    The caller typically asserts the root literal as a unit clause:
    ``cnf.add([lit])``.  Passing an existing CNF allows several terms to
    share named input variables.  For sharing *internal* subterm
    variables across several terms, keep a :class:`TseitinEncoder`.
    """
    encoder = TseitinEncoder(cnf)
    lit = encoder.lit(root)
    return encoder.cnf, lit


def _extract_block(node: Term) -> dict:
    """Encode ``node`` standalone and repack the result with block-local
    variable numbering (see :class:`SubtermCache`).  Constants keep
    their ``$true``/``$false`` pin clauses inside the block, so a block
    is self-contained."""
    sub = TseitinEncoder()
    root_lit = sub.lit(node)
    cnf = sub.cnf
    named: Dict[int, str] = {vid: name for name, vid in cnf.var_ids.items()}
    internal = [v for v in range(1, cnf.num_vars + 1) if v not in named]
    vmap: Dict[int, int] = {v: i + 1 for i, v in enumerate(internal)}
    names: List[str] = []
    for vid in sorted(named):
        vmap[vid] = len(internal) + len(names) + 1
        names.append(named[vid])

    def m(lit: int) -> int:
        return vmap[abs(lit)] * (1 if lit > 0 else -1)

    return {
        "v": len(internal),
        "names": names,
        "root": m(root_lit),
        "clauses": [[m(l) for l in clause] for clause in cnf.clauses],
    }


def _topo_order(
    root: Term, already: Optional[Dict[int, int]] = None
) -> List[Term]:
    """Children-before-parents order over the DAG (iterative); nodes
    present in ``already`` (an encoded-node cache) are not revisited."""
    order: List[Term] = []
    state: Dict[int, int] = {}  # 0 = visiting, 1 = done
    stack: List[tuple[Term, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            state[node.uid] = 1
            order.append(node)
            continue
        if state.get(node.uid) == 1:
            continue
        if state.get(node.uid) == 0:
            continue
        if already is not None and node.uid in already:
            continue
        state[node.uid] = 0
        stack.append((node, True))
        for arg in node.args:
            if state.get(arg.uid) != 1:
                stack.append((arg, False))
    return order
