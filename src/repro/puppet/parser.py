"""Recursive-descent parser for the Puppet DSL subset.

The grammar follows Fig. 1 of the paper extended with the features
§3.1 relies on: user-defined types, classes (with parameters and
inheritance), node blocks, conditionals, case statements, selectors,
resource defaults and overrides, virtual resources and collectors,
chaining arrows, and include/require.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import PuppetSyntaxError
from repro.puppet import ast_nodes as ast
from repro.puppet.lexer import tokenize
from repro.puppet.tokens import Token, TokenKind as T


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _at(self, *kinds: T) -> bool:
        return self._peek().kind in kinds

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not T.EOF:
            self.pos += 1
        return tok

    def _expect(self, kind: T, what: str = "") -> Token:
        tok = self._peek()
        if tok.kind is not kind:
            expected = what or kind.name
            raise PuppetSyntaxError(
                f"expected {expected}, found {tok.text!r}",
                tok.line,
                tok.column,
            )
        return self._advance()

    def _accept(self, kind: T) -> Optional[Token]:
        if self._at(kind):
            return self._advance()
        return None

    def _error(self, message: str) -> PuppetSyntaxError:
        tok = self._peek()
        return PuppetSyntaxError(message, tok.line, tok.column)

    # -- entry points ---------------------------------------------------------

    def parse_manifest(self) -> ast.Manifest:
        statements = []
        while not self._at(T.EOF):
            statements.append(self.parse_statement())
        return ast.Manifest(tuple(statements))

    def parse_statements_until(self, closer: T) -> Tuple[ast.Statement, ...]:
        statements = []
        while not self._at(closer):
            if self._at(T.EOF):
                raise self._error("unexpected end of input")
            statements.append(self.parse_statement())
        return tuple(statements)

    # -- statements -------------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        tok = self._peek()
        if tok.kind is T.DEFINE:
            return self._parse_define()
        if tok.kind is T.CLASS:
            if self._peek(1).kind is T.LBRACE:
                # class { 'name': ... } — resource-style declaration.
                return self._parse_resource_decl()
            return self._parse_class()
        if tok.kind is T.NODE:
            return self._parse_node()
        if tok.kind is T.IF:
            return self._parse_if()
        if tok.kind is T.UNLESS:
            return self._parse_unless()
        if tok.kind is T.CASE:
            return self._parse_case()
        if tok.kind is T.INCLUDE:
            return self._parse_include(require_edges=False)
        if tok.kind is T.REQUIRE_KW:
            return self._parse_include(require_edges=True)
        if tok.kind is T.VARIABLE:
            return self._parse_assignment()
        if tok.kind in (T.AT, T.ATAT):
            return self._parse_resource_decl()
        if tok.kind is T.NAME:
            if self._peek(1).kind is T.LBRACE:
                return self._parse_resource_decl()
            if self._peek(1).kind is T.LPAREN:
                return self._parse_call_statement()
            raise self._error(f"unexpected bareword {tok.text!r}")
        if tok.kind is T.TYPEREF:
            return self._parse_typeref_statement()
        raise self._error(f"unexpected token {tok.text!r}")

    def _parse_define(self) -> ast.Statement:
        start = self._expect(T.DEFINE)
        name = self._expect(T.NAME, "definition name").text
        params = self._parse_param_list()
        self._expect(T.LBRACE)
        body = self.parse_statements_until(T.RBRACE)
        self._expect(T.RBRACE)
        return ast.DefineDecl(
            line=start.line, col=start.column, name=name, params=params, body=body
        )

    def _parse_class(self) -> ast.Statement:
        start = self._expect(T.CLASS)
        name = self._expect(T.NAME, "class name").text
        params = self._parse_param_list()
        parent = None
        if self._accept(T.INHERITS):
            parent = self._expect(T.NAME, "parent class name").text
        self._expect(T.LBRACE)
        body = self.parse_statements_until(T.RBRACE)
        self._expect(T.RBRACE)
        return ast.ClassDecl(
            line=start.line, col=start.column, name=name, params=params, parent=parent, body=body
        )

    def _parse_param_list(
        self,
    ) -> Tuple[Tuple[str, Optional[ast.Expr]], ...]:
        params: List[Tuple[str, Optional[ast.Expr]]] = []
        if not self._accept(T.LPAREN):
            return ()
        while not self._at(T.RPAREN):
            var = self._expect(T.VARIABLE, "parameter").text
            default = None
            if self._accept(T.ASSIGN):
                default = self.parse_expression()
            params.append((var, default))
            if not self._accept(T.COMMA):
                break
        self._expect(T.RPAREN)
        return tuple(params)

    def _parse_node(self) -> ast.Statement:
        start = self._expect(T.NODE)
        names: List[str] = []
        while True:
            tok = self._peek()
            if tok.kind in (T.STRING, T.DQSTRING, T.NAME):
                names.append(self._advance().text)
            elif tok.kind is T.DEFAULT:
                self._advance()
                names.append("default")
            else:
                raise self._error("expected node name")
            if not self._accept(T.COMMA):
                break
        self._expect(T.LBRACE)
        body = self.parse_statements_until(T.RBRACE)
        self._expect(T.RBRACE)
        return ast.NodeDecl(
            line=start.line, col=start.column, names=tuple(names), body=body
        )

    def _parse_if(self) -> ast.Statement:
        start = self._expect(T.IF)
        branches = []
        cond = self.parse_expression()
        self._expect(T.LBRACE)
        body = self.parse_statements_until(T.RBRACE)
        self._expect(T.RBRACE)
        branches.append((cond, body))
        while self._at(T.ELSIF):
            self._advance()
            cond = self.parse_expression()
            self._expect(T.LBRACE)
            body = self.parse_statements_until(T.RBRACE)
            self._expect(T.RBRACE)
            branches.append((cond, body))
        if self._accept(T.ELSE):
            self._expect(T.LBRACE)
            body = self.parse_statements_until(T.RBRACE)
            self._expect(T.RBRACE)
            branches.append((None, body))
        return ast.IfStatement(
            line=start.line, col=start.column, branches=tuple(branches)
        )

    def _parse_unless(self) -> ast.Statement:
        start = self._expect(T.UNLESS)
        cond = self.parse_expression()
        self._expect(T.LBRACE)
        body = self.parse_statements_until(T.RBRACE)
        self._expect(T.RBRACE)
        else_body: Tuple[ast.Statement, ...] = ()
        if self._accept(T.ELSE):
            self._expect(T.LBRACE)
            else_body = self.parse_statements_until(T.RBRACE)
            self._expect(T.RBRACE)
        negated = ast.UnaryOp("!", cond)
        branches = [(negated, body)]
        if else_body:
            branches.append((None, else_body))
        return ast.IfStatement(
            line=start.line, col=start.column, branches=tuple(branches)
        )

    def _parse_case(self) -> ast.Statement:
        start = self._expect(T.CASE)
        subject = self.parse_expression()
        self._expect(T.LBRACE)
        cases = []
        while not self._at(T.RBRACE):
            matches: List[Optional[ast.Expr]] = []
            while True:
                if self._accept(T.DEFAULT):
                    matches.append(None)
                else:
                    matches.append(self.parse_expression())
                if not self._accept(T.COMMA):
                    break
            self._expect(T.COLON)
            self._expect(T.LBRACE)
            body = self.parse_statements_until(T.RBRACE)
            self._expect(T.RBRACE)
            cases.append((tuple(matches), body))
        self._expect(T.RBRACE)
        return ast.CaseStatement(
            line=start.line, col=start.column, subject=subject, cases=tuple(cases)
        )

    def _parse_include(self, require_edges: bool) -> ast.Statement:
        start = self._advance()  # include / require
        names = []
        while True:
            tok = self._peek()
            if tok.kind in (T.NAME, T.STRING):
                names.append(self._advance().text)
            else:
                raise self._error("expected class name to include")
            if not self._accept(T.COMMA):
                break
        return ast.IncludeStatement(
            line=start.line, col=start.column, names=tuple(names), require_edges=require_edges
        )

    def _parse_assignment(self) -> ast.Statement:
        var = self._expect(T.VARIABLE)
        self._expect(T.ASSIGN)
        value = self.parse_expression()
        return ast.Assignment(
            line=var.line, col=var.column, name=var.text, value=value
        )

    def _parse_call_statement(self) -> ast.Statement:
        name = self._expect(T.NAME)
        self._expect(T.LPAREN)
        args = []
        while not self._at(T.RPAREN):
            args.append(self.parse_expression())
            if not self._accept(T.COMMA):
                break
        self._expect(T.RPAREN)
        return ast.ExpressionStatement(
            line=name.line,
            col=name.column,
            expr=ast.FunctionCall(name.text, tuple(args)),
        )

    def _parse_resource_decl(self) -> ast.Statement:
        virtual = False
        exported = False
        if self._accept(T.ATAT):
            exported = True
        elif self._accept(T.AT):
            virtual = True
        tok = self._peek()
        if tok.kind is T.CLASS:
            self._advance()
            rtype = "class"
        else:
            rtype = self._expect(T.NAME, "resource type").text
        self._expect(T.LBRACE)
        bodies = [self._parse_resource_body()]
        while self._accept(T.SEMI):
            if self._at(T.RBRACE):
                break
            bodies.append(self._parse_resource_body())
        self._expect(T.RBRACE)
        return ast.ResourceDecl(
            line=tok.line,
            col=tok.column,
            rtype=rtype,
            bodies=tuple(bodies),
            virtual=virtual,
            exported=exported,
        )

    def _parse_resource_body(self) -> ast.ResourceBody:
        start = self._peek()
        title = self.parse_expression()
        self._expect(T.COLON)
        attributes = self._parse_attribute_list()
        return ast.ResourceBody(
            title=title,
            attributes=attributes,
            line=start.line,
            col=start.column,
        )

    def _parse_attribute_list(self) -> Tuple[ast.AttributeDef, ...]:
        attrs: List[ast.AttributeDef] = []
        while self._at(T.NAME, T.STRING, T.UNLESS, T.IF, T.REQUIRE_KW, T.NODE):
            # Attribute names may collide with keywords (require, ...).
            name_tok = self._advance()
            add = False
            if self._accept(T.PARROW):
                add = True
            else:
                self._expect(T.FARROW, "'=>'")
            value = self.parse_expression()
            attrs.append(ast.AttributeDef(name_tok.text, value, add))
            if not self._accept(T.COMMA):
                break
        return tuple(attrs)

    def _parse_typeref_statement(self) -> ast.Statement:
        """Statements opening with a capitalized type reference:
        defaults, overrides, collectors, and chains."""
        checkpoint = self.pos
        typeref = self._expect(T.TYPEREF)
        rtype = typeref.text

        if self._at(T.LBRACE):
            # Resource default: File { ... }
            self._advance()
            attrs = self._parse_attribute_list()
            self._expect(T.RBRACE)
            return ast.ResourceDefault(
                line=typeref.line, col=typeref.column, rtype=rtype,
                attributes=attrs
            )

        # Otherwise: reference or collector, possibly chained.
        self.pos = checkpoint
        first = self._parse_chain_operand()
        if self._at(T.LBRACE) and isinstance(first, ast.ResourceRefExpr):
            # Override: File['/f'] { ... }
            self._advance()
            attrs = self._parse_attribute_list()
            self._expect(T.RBRACE)
            return ast.ResourceOverride(
                line=typeref.line, col=typeref.column, ref=first,
                attributes=attrs
            )
        operands: List[ast.ChainOperand] = [first]
        arrows: List[str] = []
        while self._at(
            T.ARROW_RIGHT, T.NOTIFY_RIGHT, T.ARROW_LEFT, T.NOTIFY_LEFT
        ):
            arrow = self._advance()
            operand = self._parse_chain_operand()
            if arrow.kind in (T.ARROW_LEFT, T.NOTIFY_LEFT):
                # A <- B means B -> A: flip in place.
                operands.insert(0, operand)
                arrows.insert(0, "->")
            else:
                operands.append(operand)
                arrows.append("->" if arrow.kind is T.ARROW_RIGHT else "~>")
        if len(operands) == 1:
            if isinstance(first, ast.Collector):
                return first
            raise self._error(
                "dangling resource reference (expected ->, ~>, or { ... })"
            )
        return ast.ChainStatement(
            line=typeref.line, col=typeref.column,
            operands=tuple(operands), arrows=tuple(arrows)
        )

    def _parse_chain_operand(self) -> ast.ChainOperand:
        tok = self._expect(T.TYPEREF)
        rtype = tok.text
        if self._at(T.LBRACK):
            self._advance()
            titles = [self.parse_expression()]
            while self._accept(T.COMMA):
                titles.append(self.parse_expression())
            self._expect(T.RBRACK)
            return ast.ResourceRefExpr(rtype, tuple(titles))
        if self._at(T.COLLECT_OPEN):
            return self._parse_collector(rtype, tok.line, tok.column)
        raise self._error("expected '[' or '<|' after type reference")

    def _parse_collector(
        self, rtype: str, line: int, col: int = 0
    ) -> ast.Collector:
        self._expect(T.COLLECT_OPEN)
        query = None
        if not self._at(T.COLLECT_CLOSE):
            query = self._parse_collector_query()
        self._expect(T.COLLECT_CLOSE)
        overrides: Tuple[ast.AttributeDef, ...] = ()
        if self._at(T.LBRACE):
            self._advance()
            overrides = self._parse_attribute_list()
            self._expect(T.RBRACE)
        return ast.Collector(
            line=line, col=col, rtype=rtype, query=query, overrides=overrides
        )

    def _parse_collector_query(self) -> ast.CollectorQuery:
        left = self._parse_collector_atom()
        while self._at(T.AND, T.OR):
            op = self._advance().text
            right = self._parse_collector_atom()
            left = ast.CollectorQuery(op=op, left=left, right=right)
        return left

    def _parse_collector_atom(self) -> ast.CollectorQuery:
        if self._accept(T.LPAREN):
            inner = self._parse_collector_query()
            self._expect(T.RPAREN)
            return inner
        attr_tok = self._peek()
        if attr_tok.kind not in (T.NAME, T.REQUIRE_KW):
            raise self._error("expected attribute name in collector query")
        self._advance()
        op_tok = self._peek()
        if op_tok.kind is T.EQ:
            op = "=="
        elif op_tok.kind is T.NEQ:
            op = "!="
        else:
            raise self._error("expected == or != in collector query")
        self._advance()
        # Restricted expression: and/or belong to the query grammar,
        # not the value.
        value = self._parse_additive()
        return ast.CollectorQuery(op=op, attr=attr_tok.text, value=value)

    # -- expressions --------------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self._parse_selector()

    def _parse_selector(self) -> ast.Expr:
        subject = self._parse_or()
        if not self._at(T.QUESTION):
            return subject
        self._advance()
        self._expect(T.LBRACE)
        cases: List[Tuple[Optional[ast.Expr], ast.Expr]] = []
        while not self._at(T.RBRACE):
            if self._accept(T.DEFAULT):
                key: Optional[ast.Expr] = None
            else:
                key = self.parse_expression()
            self._expect(T.FARROW, "'=>'")
            value = self.parse_expression()
            cases.append((key, value))
            if not self._accept(T.COMMA):
                break
        self._expect(T.RBRACE)
        return ast.Selector(subject, tuple(cases))

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._at(T.OR):
            self._advance()
            left = ast.BinaryOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_comparison()
        while self._at(T.AND):
            self._advance()
            left = ast.BinaryOp("and", left, self._parse_comparison())
        return left

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        ops = {
            T.EQ: "==",
            T.NEQ: "!=",
            T.LT: "<",
            T.GT: ">",
            T.LTEQ: "<=",
            T.GTEQ: ">=",
            T.IN: "in",
        }
        while self._peek().kind in ops:
            op = ops[self._advance().kind]
            left = ast.BinaryOp(op, left, self._parse_additive())
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self._at(T.PLUS, T.MINUS):
            op = self._advance().text
            left = ast.BinaryOp(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while self._at(T.STAR, T.SLASH, T.PERCENT):
            op = self._advance().text
            left = ast.BinaryOp(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> ast.Expr:
        if self._accept(T.MINUS):
            return ast.UnaryOp("-", self._parse_unary())
        if self._accept(T.BANG):
            # Puppet's ! binds tightest: !$x == $y is (!$x) == $y.
            return ast.UnaryOp("!", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is T.NUMBER:
            self._advance()
            value = float(tok.text) if "." in tok.text else int(tok.text)
            return ast.Literal(value)
        if tok.kind is T.STRING:
            self._advance()
            return ast.Literal(tok.text)
        if tok.kind is T.DQSTRING:
            self._advance()
            return ast.InterpolatedString(tok.text)
        if tok.kind is T.TRUE:
            self._advance()
            return ast.Literal(True)
        if tok.kind is T.FALSE:
            self._advance()
            return ast.Literal(False)
        if tok.kind is T.UNDEF:
            self._advance()
            return ast.Literal(None)
        if tok.kind is T.VARIABLE:
            self._advance()
            return ast.VariableRef(tok.text)
        if tok.kind is T.LBRACK:
            self._advance()
            items = []
            while not self._at(T.RBRACK):
                items.append(self.parse_expression())
                if not self._accept(T.COMMA):
                    break
            self._expect(T.RBRACK)
            return ast.ArrayLit(tuple(items))
        if tok.kind is T.LBRACE:
            self._advance()
            entries = []
            while not self._at(T.RBRACE):
                key = self.parse_expression()
                self._expect(T.FARROW, "'=>'")
                entries.append((key, self.parse_expression()))
                if not self._accept(T.COMMA):
                    break
            self._expect(T.RBRACE)
            return ast.HashLit(tuple(entries))
        if tok.kind is T.LPAREN:
            self._advance()
            inner = self.parse_expression()
            self._expect(T.RPAREN)
            return inner
        if tok.kind is T.TYPEREF:
            self._advance()
            self._expect(T.LBRACK, "'[' in resource reference")
            titles = [self.parse_expression()]
            while self._accept(T.COMMA):
                titles.append(self.parse_expression())
            self._expect(T.RBRACK)
            return ast.ResourceRefExpr(tok.text, tuple(titles))
        if tok.kind is T.NAME:
            if self._peek(1).kind is T.LPAREN:
                self._advance()
                self._advance()
                args = []
                while not self._at(T.RPAREN):
                    args.append(self.parse_expression())
                    if not self._accept(T.COMMA):
                        break
                self._expect(T.RPAREN)
                return ast.FunctionCall(tok.text, tuple(args))
            self._advance()
            # Bare word used as a value (present, running, installed...).
            return ast.Literal(tok.text)
        if tok.kind is T.DEFAULT:
            self._advance()
            return ast.Literal("default")
        raise self._error(f"unexpected token {tok.text!r} in expression")


def parse_manifest(source: str) -> ast.Manifest:
    return Parser(source).parse_manifest()
