"""SAT query plumbing: term → CNF → preprocessing → CDCL → named model.

Two interfaces:

* :class:`Query` — a one-shot satisfiability question.  The formula is
  Tseitin-encoded, simplified by :mod:`repro.sat.preprocess` (named
  input variables frozen so the witness model survives), solved, and
  the model reconstructed back onto the original encoding.

* :class:`IncrementalQuery` — many related questions over one shared
  solver instance.  Terms asserted with :meth:`IncrementalQuery.assert_term`
  hold in every call; terms registered with
  :meth:`IncrementalQuery.add_selector` are guarded by a fresh selector
  variable and only enforced when that selector is passed as an
  assumption to :meth:`IncrementalQuery.check`.  Clauses — including
  everything the CDCL solver *learns* — are retained across calls, and
  an UNSAT answer carries the subset of the assumptions in the unsat
  core, which the analyses use for fault localization
  (:mod:`repro.analysis.localize`).

  The clause database existing at the first ``check()`` is preprocessed
  once, with named variables and selectors frozen.  Terms encoded later
  share the persistent Tseitin cache; their clauses are simplified
  against the preprocessor's fixed assignments, and any variable the
  preprocessor eliminated is soundly re-introduced first
  (:meth:`repro.sat.preprocess.Preprocessed.restore`).
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.logic.cnf import CNF, TseitinEncoder
from repro.logic.terms import Term, TermBank
from repro.sat.preprocess import Preprocessed, preprocess
from repro.sat.solver import Solver

#: One-shot queries below this clause count skip preprocessing: the
#: pure-Python simplification passes cost more than the CDCL saves on
#: instances this size (measured on the §6 corpus; see docs/solver.md).
PREPROCESS_MIN_CLAUSES = 6000

#: Sentinel distinguishing "caller did not pass the deprecated
#: use_preprocessing= keyword" from an explicit None.
_UNSET = object()


def _resolve_preprocessing(preprocessing, use_preprocessing):
    """Fold the deprecated ``use_preprocessing=`` spelling into the
    canonical ``preprocessing=`` one (one release of compatibility)."""
    if use_preprocessing is _UNSET:
        return preprocessing
    warnings.warn(
        "the use_preprocessing= keyword is deprecated; "
        "pass preprocessing= instead",
        DeprecationWarning,
        stacklevel=3,
    )
    if preprocessing is not None:
        raise TypeError(
            "pass either preprocessing= or the deprecated "
            "use_preprocessing=, not both"
        )
    return use_preprocessing


@dataclass
class QueryResult:
    sat: bool
    named_model: Dict[str, bool] = field(default_factory=dict)
    #: On UNSAT under assumptions: the implicated assumption selector
    #: names (subset of those passed to ``check``).  Empty when the
    #: asserted formula alone is unsatisfiable.
    core: List[str] = field(default_factory=list)
    core_lits: List[int] = field(default_factory=list)
    num_vars: int = 0
    num_clauses: int = 0
    #: Instance size actually handed to the CDCL solver, after
    #: preprocessing (``num_vars``/``num_clauses`` report the raw
    #: encoding, feeding the Fig. 11 instrumentation as before).
    solved_clauses: int = 0
    eliminated_vars: int = 0
    solve_seconds: float = 0.0
    conflicts: int = 0
    decisions: int = 0


class Query:
    """A single satisfiability question over a term bank.

    ``preprocessing`` — None (default) preprocesses only instances
    with at least :data:`PREPROCESS_MIN_CLAUSES` clauses; True/False
    force it on/off.  (The old ``use_preprocessing=`` keyword still
    works for one release, with a ``DeprecationWarning``.)

    ``backend`` — a zero-argument factory producing the
    :class:`repro.sat.backend.SolverBackend` each ``check`` solves on
    (default: a fresh reference CDCL solver).
    """

    def __init__(
        self,
        bank: TermBank,
        preprocessing: Optional[bool] = None,
        backend: Optional[Callable[[], "Solver"]] = None,
        use_preprocessing=_UNSET,
        subterm_cache=None,
    ):
        self.bank = bank
        self.preprocessing = _resolve_preprocessing(
            preprocessing, use_preprocessing
        )
        self.backend = backend
        self._assertions: list[Term] = []
        #: Optional :class:`repro.logic.cnf.SubtermCache` — persisted
        #: and/or encodings rehydrate across runs (the incremental
        #: store's ``cnf`` section).  One-shot queries only; the
        #: incremental query below never uses it.
        self.subterm_cache = subterm_cache
        #: Subformula encodings served from :attr:`subterm_cache` by
        #: the last :meth:`check`.
        self.cnf_cache_hits = 0

    @property
    def use_preprocessing(self) -> Optional[bool]:
        """Deprecated alias of :attr:`preprocessing`."""
        return self.preprocessing

    def assert_term(self, term: Term) -> None:
        self._assertions.append(term)

    def check(self, max_conflicts: Optional[int] = None) -> QueryResult:
        formula = self.bank.and_(*self._assertions)
        if formula is self.bank.TRUE:
            return QueryResult(sat=True)
        if formula is self.bank.FALSE:
            return QueryResult(sat=False)
        if self.subterm_cache is not None:
            encoder = TseitinEncoder(
                subterm_cache=self.subterm_cache,
                digest_fn=self.bank.digest,
            )
        else:
            encoder = TseitinEncoder()
        cnf = encoder.cnf
        root_lit = encoder.lit(formula)
        self.cnf_cache_hits = encoder.cache_hits
        cnf.add([root_lit])
        start = time.perf_counter()
        preprocessing = self.preprocessing
        if preprocessing is None:
            preprocessing = len(cnf.clauses) >= PREPROCESS_MIN_CLAUSES
        pre: Optional[Preprocessed] = None
        clauses = cnf.clauses
        if preprocessing:
            pre = preprocess(
                cnf.clauses, cnf.num_vars, frozen=cnf.var_ids.values()
            )
            if pre.unsat:
                return QueryResult(
                    sat=False,
                    num_vars=cnf.num_vars,
                    num_clauses=len(cnf.clauses),
                    eliminated_vars=pre.stats.eliminated_vars,
                    solve_seconds=time.perf_counter() - start,
                )
            clauses = pre.clauses
        solver = self.backend() if self.backend is not None else Solver()
        for clause in clauses:
            solver.add_clause(clause)
        result = solver.solve(max_conflicts=max_conflicts)
        elapsed = time.perf_counter() - start
        named: Dict[str, bool] = {}
        if result.sat:
            model = result.assignment
            if pre is not None:
                model = pre.reconstruct(model)
            named = cnf.decode(model)
        return QueryResult(
            sat=result.sat,
            named_model=named,
            num_vars=cnf.num_vars,
            num_clauses=len(cnf.clauses),
            solved_clauses=len(clauses),
            eliminated_vars=pre.stats.eliminated_vars if pre else 0,
            solve_seconds=elapsed,
            conflicts=result.conflicts,
            decisions=result.decisions,
        )


class IncrementalQuery:
    """Assumption-based incremental solving over one shared solver.

    ``preprocessing`` — None (default) preprocesses only when the
    clause database at the first ``check`` has at least
    :data:`PREPROCESS_MIN_CLAUSES` clauses; True/False force it.  The
    cost is paid once and amortized over every later check.  (The old
    ``use_preprocessing=`` keyword still works for one release, with a
    ``DeprecationWarning``.)

    ``backend`` — a zero-argument factory producing the
    :class:`repro.sat.backend.SolverBackend` this query's lifetime of
    checks runs on (default: the reference CDCL solver).  The backend
    must be incremental: clauses and learned facts persist across
    ``check`` calls.
    """

    def __init__(
        self,
        bank: TermBank,
        preprocessing: Optional[bool] = None,
        backend: Optional[Callable[[], "Solver"]] = None,
        use_preprocessing=_UNSET,
    ):
        self.bank = bank
        self.preprocessing = _resolve_preprocessing(
            preprocessing, use_preprocessing
        )
        self.cnf = CNF()
        self._encoder = TseitinEncoder(self.cnf)
        self._solver = backend() if backend is not None else Solver()
        self._pre: Optional[Preprocessed] = None
        self._checked = False
        self._flushed = 0  # cnf.clauses already handed to the solver
        self._selectors: Dict[int, str] = {}  # var id -> name
        self.checks = 0
        self.solve_seconds = 0.0
        #: CDCL work over every ``check`` on this solver (mirrors the
        #: shared solver's lifetime totals) — wall-clock-free effort
        #: counters for profiling and regression guards; each
        #: ``QueryResult`` reports its own per-call delta, so
        #: learned-clause reuse shows up as later checks costing few
        #: conflicts.
        self.conflicts = 0
        self.decisions = 0

    @property
    def use_preprocessing(self) -> Optional[bool]:
        """Deprecated alias of :attr:`preprocessing`."""
        return self.preprocessing

    @property
    def solver(self):
        """The live :class:`repro.sat.backend.SolverBackend` instance."""
        return self._solver

    # -- building -----------------------------------------------------------

    def assert_term(self, term: Term) -> None:
        """Assert ``term`` unconditionally, for this and every later
        ``check``."""
        if term is self.bank.TRUE:
            return
        self.cnf.add([self._encoder.lit(term)])

    def add_selector(self, name: str, term: Term) -> int:
        """Register a guarded term: returns a fresh selector variable
        ``s`` with the clause ``s → term``, so passing ``s`` as an
        assumption enforces ``term`` for that call only."""
        selector = self.cnf.new_var(name)
        self._selectors[selector] = name
        self.cnf.add([-selector, self._encoder.lit(term)])
        return selector

    # -- solving ------------------------------------------------------------

    def check(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
    ) -> QueryResult:
        """Decide satisfiability of the asserted terms plus the guarded
        terms whose selectors appear in ``assumptions``."""
        start = time.perf_counter()
        self._flush()
        result = self._solver.solve(
            assumptions=assumptions, max_conflicts=max_conflicts
        )
        elapsed = time.perf_counter() - start
        self.checks += 1
        self.solve_seconds += elapsed
        # SolveResult counters are the shared solver's lifetime
        # totals, so this call's share is the delta since the last
        # check.
        call_conflicts = result.conflicts - self.conflicts
        call_decisions = result.decisions - self.decisions
        self.conflicts = result.conflicts
        self.decisions = result.decisions
        named: Dict[str, bool] = {}
        if result.sat:
            model = result.assignment
            if self._pre is not None:
                model = self._pre.reconstruct(model)
            named = self.cnf.decode(model)
        core_names = [
            self._selectors[lit]
            for lit in result.core
            if lit in self._selectors
        ]
        return QueryResult(
            sat=result.sat,
            named_model=named,
            core=core_names,
            core_lits=list(result.core),
            num_vars=self.cnf.num_vars,
            num_clauses=len(self.cnf.clauses),
            solved_clauses=len(self._pre.clauses) if self._pre else 0,
            eliminated_vars=(
                self._pre.stats.eliminated_vars if self._pre else 0
            ),
            solve_seconds=elapsed,
            conflicts=call_conflicts,
            decisions=call_decisions,
        )

    # -- internals ----------------------------------------------------------

    def _flush(self) -> None:
        if not self._checked:
            self._checked = True
            preprocessing = self.preprocessing
            if preprocessing is None:
                preprocessing = (
                    len(self.cnf.clauses) >= PREPROCESS_MIN_CLAUSES
                )
            if preprocessing:
                # Preprocess the whole database once, freezing the
                # variables later calls may mention — named inputs and
                # selectors.
                frozen = set(self.cnf.var_ids.values()) | set(
                    self._selectors
                )
                self._pre = preprocess(
                    self.cnf.clauses, self.cnf.num_vars, frozen=frozen
                )
                self._flushed = len(self.cnf.clauses)
                if self._pre.unsat:
                    self._solver.add_clause([])  # permanently UNSAT
                    return
                for clause in self._pre.clauses:
                    self._solver.add_clause(clause)
                # Forced assignments on frozen variables must reach
                # the solver as units: an assumption may contradict
                # one, and only the solver can report that (with the
                # right core).
                for var, value in self._pre.assigned.items():
                    if var in frozen:
                        self._solver.add_clause(
                            [var if value else -var]
                        )
                return
        if self._pre is None:
            # No preprocessing: hand clauses to the solver verbatim.
            while self._flushed < len(self.cnf.clauses):
                self._solver.add_clause(self.cnf.clauses[self._flushed])
                self._flushed += 1
            return
        # Later additions after preprocessing: simplify against the
        # preprocessor's fixed assignments and re-introduce any
        # variable it eliminated.
        pre = self._pre
        while self._flushed < len(self.cnf.clauses):
            clause = self.cnf.clauses[self._flushed]
            self._flushed += 1
            simplified = pre.simplify_clause(clause)
            if simplified is None:
                continue  # already satisfied
            for lit in simplified:
                for restored in pre.restore(abs(lit)):
                    self._solver.add_clause(restored)
            self._solver.add_clause(simplified)


def check_sat(
    bank: TermBank, term: Term, max_conflicts: Optional[int] = None
) -> QueryResult:
    """One-shot satisfiability check of a single term."""
    query = Query(bank)
    query.assert_term(term)
    return query.check(max_conflicts=max_conflicts)
