"""Tests for the SAT query layer, the benchmark harness functions, and
the explanation renderer."""

import pytest

from repro.logic import TermBank
from repro.smt.query import Query, check_sat


class TestQueryLayer:
    def test_trivially_true(self):
        bank = TermBank()
        result = check_sat(bank, bank.TRUE)
        assert result.sat
        assert result.num_vars == 0

    def test_trivially_false(self):
        bank = TermBank()
        assert not check_sat(bank, bank.FALSE).sat

    def test_model_decoding(self):
        bank = TermBank()
        a, b = bank.var("a"), bank.var("b")
        result = check_sat(bank, bank.and_(a, bank.not_(b)))
        assert result.sat
        assert result.named_model["a"] is True
        assert result.named_model["b"] is False

    def test_unsat_formula(self):
        bank = TermBank()
        a = bank.var("a")
        assert not check_sat(bank, bank.and_(a, bank.not_(a))).sat

    def test_multiple_assertions(self):
        bank = TermBank()
        q = Query(bank)
        q.assert_term(bank.or_(bank.var("a"), bank.var("b")))
        q.assert_term(bank.not_(bank.var("a")))
        result = q.check()
        assert result.sat
        assert result.named_model["b"] is True

    def test_stats_populated(self):
        bank = TermBank()
        vars_ = [bank.var(f"x{i}") for i in range(6)]
        result = check_sat(bank, bank.exactly_one(vars_))
        assert result.sat
        assert result.num_vars >= 6
        assert result.num_clauses > 0
        assert result.solve_seconds >= 0


class TestHarness:
    def test_timed_determinism_verdicts(self):
        from repro.bench.harness import timed_determinism

        good = timed_determinism(
            "ntp-fixed", use_commutativity=True, use_pruning=True
        )
        assert not good.timed_out
        assert good.deterministic is True
        bad = timed_determinism(
            "ntp-nondet", use_commutativity=True, use_pruning=True
        )
        assert bad.deterministic is False

    def test_synthetic_conflict_graph(self):
        from repro.bench.harness import synthetic_conflict_graph

        graph, programs = synthetic_conflict_graph(3)
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 0
        assert len(programs) == 3

    def test_fig13_rows_monotone_workload(self):
        from repro.bench.harness import fig13_rows

        rows = fig13_rows(ns=(2, 3), timeout=30)
        assert [n for n, _ in rows] == [2, 3]
        assert all(t >= 0 for _, t in rows)

    def test_render_rows(self):
        from repro.bench.harness import TIMEOUT, render_rows

        text = render_rows(
            "T", ["name", "time"], [("a", 0.5), ("b", TIMEOUT)]
        )
        assert "timeout" in text
        assert "0.500s" in text

    def test_fig11a_subset(self):
        from repro.bench.harness import fig11a_rows

        rows = fig11a_rows()
        assert len(rows) == 13
        for name, before, after in rows:
            assert after <= before


class TestExplanationRendering:
    def test_render_explanation_nondet(self):
        from repro.analysis import check_determinism
        from repro.core.pipeline import Rehearsal
        from repro.core.report import render_explanation
        from repro.corpus import load_source

        tool = Rehearsal()
        graph, programs = tool.compile(load_source("ntp-nondet"))
        result = check_determinism(graph, programs)
        text = render_explanation(result, programs)
        assert "--- order (1) ---" in text
        assert "--- order (2) ---" in text
        assert "FAILED" in text or "success" in text

    def test_render_explanation_deterministic(self):
        from repro.analysis import check_determinism
        from repro.core.pipeline import Rehearsal
        from repro.core.report import render_explanation
        from repro.corpus import load_source

        tool = Rehearsal()
        graph, programs = tool.compile(load_source("ntp-fixed"))
        result = check_determinism(graph, programs)
        assert "nothing to explain" in render_explanation(result, programs)
