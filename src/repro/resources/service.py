"""FS model for the ``service`` resource type.

A running service is modeled as a state file ``/var/run/services/<name>``
whose content records the desired state.  Enabling a service (start on
boot) is a separate link file under ``/etc/rc.d``.  Services interact
with packages through their binaries: when the catalog knows which
package provides the service, an explicit precondition on the binary
would be redundant with the dependency edges Puppet requires anyway, so
the model keeps services self-contained — bugs are still caught because
config files and packages interact through real paths.
"""

from __future__ import annotations

from repro.errors import ResourceModelError
from repro.fs import Expr, ID, Path, creat, file_with, ite, file_, rm, seq
from repro.resources.base import Resource, ensure_directory_tree

SERVICE_STATE_ROOT = Path.of("/var/run/services")
SERVICE_ENABLE_ROOT = Path.of("/etc/rc.d")


def state_path(name: str) -> Path:
    return SERVICE_STATE_ROOT.child(name)


def enable_path(name: str) -> Path:
    return SERVICE_ENABLE_ROOT.child(name)


def compile_service(resource: Resource, context) -> Expr:
    name = resource.get_str("name") or resource.title
    ensure = (resource.get_str("ensure") or "running").lower()
    if ensure in ("running", "true"):
        desired = "running"
    elif ensure in ("stopped", "false"):
        desired = "stopped"
    else:
        raise ResourceModelError(
            f"{resource.ref}: unsupported ensure => {ensure!r}"
        )
    steps = [_set_state_file(state_path(name), f"{desired}:{name}")]
    if "enable" in resource.attributes:
        if resource.get_bool("enable"):
            steps.append(
                _set_state_file(enable_path(name), f"enabled:{name}")
            )
        else:
            steps.append(_clear_state_file(enable_path(name)))
    return seq(*steps)


def _set_state_file(path: Path, content: str) -> Expr:
    """Idempotently force ``path`` to be a file with ``content``."""
    return ite(
        file_with(path, content),
        ID,
        seq(
            ensure_directory_tree([path]),
            ite(file_(path), rm(path), ID),
            creat(path, content),
        ),
    )


def _clear_state_file(path: Path) -> Expr:
    return ite(file_(path), rm(path), ID)
