# bind — authoritative DNS server (§6 benchmark "bind").
#
# Exercises facts with a case statement (the package name differs per
# OS family) and a user-defined type for DNS zones.

define bind::zone ($ztype = 'master', $contact = 'hostmaster.example.com') {
  file { "/etc/bind/zones/db.${title}":
    ensure  => file,
    content => "; ${ztype} zone file for ${title}\n\$TTL 86400\n@ IN SOA ns1.${title}. ${contact}. ( 1 3600 900 604800 86400 )\n@ IN NS ns1.${title}.\n",
    require => File['/etc/bind/zones'],
  }
}

class bind {
  case $osfamily {
    'Debian': {
      $bind_package = 'bind9'
      $bind_service = 'bind9'
    }
    'RedHat': {
      $bind_package = 'bind'
      $bind_service = 'named'
    }
    default: {
      $bind_package = 'bind9'
      $bind_service = 'bind9'
    }
  }

  package { $bind_package:
    ensure => installed,
  }

  file { '/etc/bind/named.conf.local':
    ensure  => file,
    content => "// managed by puppet on ${hostname}\nzone \"example.com\" { type master; file \"/etc/bind/zones/db.example.com\"; };\nzone \"example.net\" { type slave; file \"/etc/bind/zones/db.example.net\"; };\n",
    require => Package[$bind_package],
  }

  file { '/etc/bind/zones':
    ensure  => directory,
    require => Package[$bind_package],
  }

  bind::zone { 'example.com': }

  bind::zone { 'example.net':
    ztype => 'slave',
  }

  service { $bind_service:
    ensure    => running,
    enable    => true,
    subscribe => File['/etc/bind/named.conf.local'],
  }
}

include bind
