# amavis — mail content filter (§6 benchmark "amavis").
#
# Exercises run stages and parameterized classes: the perl prerequisite
# is pinned into a dedicated 'pre' stage that runs before everything in
# the default 'main' stage, and the filter class takes its tuning knobs
# as class parameters.

stage { 'pre': }
Stage['pre'] -> Stage['main']

class amavis::prereq {
  # amavisd-new is a perl daemon; the interpreter is staged first.
  package { 'perl':
    ensure => installed,
  }
}

class amavis ($max_servers = 2, $virus_alert = 'postmaster@example.com') {
  package { 'amavisd-new':
    ensure  => installed,
    require => Package['perl'],
  }

  file { '/etc/amavis/conf.d/50-user':
    ensure  => file,
    content => "use strict;\n\$max_servers = ${max_servers};\n\$virus_admin = \"${virus_alert}\";\n1;\n",
    require => Package['amavisd-new'],
  }

  file { '/etc/amavis/conf.d/15-content_filter_mode':
    ensure  => file,
    content => "use strict;\nmy @bypass_virus_checks_maps = (1);\n1;\n",
    require => Package['amavisd-new'],
  }

  service { 'amavis':
    ensure    => running,
    enable    => true,
    subscribe => [
      File['/etc/amavis/conf.d/50-user'],
      File['/etc/amavis/conf.d/15-content_filter_mode'],
    ],
  }
}

class { 'amavis::prereq':
  stage => 'pre',
}

class { 'amavis':
  max_servers => 4,
}
