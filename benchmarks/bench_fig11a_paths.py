"""Fig. 11a — paths per state, with and without pruning.

Benchmarks the §4.4 pruning pass itself and records the path counts
the paper plots; the reproduction claim is the *reduction* (every
benchmark's written-path count drops, typically by 2-6x).
"""

import pytest

from repro.analysis.commutativity import footprint
from repro.analysis.pruning import prune_manifest
from repro.core.pipeline import Rehearsal
from repro.corpus import BENCHMARK_NAMES, load_source


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_fig11a_pruning_pass(benchmark, name):
    tool = Rehearsal()
    _, programs = tool.compile(load_source(name))
    exprs = list(programs.values())

    pruned, report = benchmark(prune_manifest, exprs)

    written_before = set().union(*[footprint(e).writes for e in exprs])
    written_after = set().union(*[footprint(e).writes for e in pruned])
    benchmark.extra_info["written_paths_before"] = len(written_before)
    benchmark.extra_info["written_paths_after"] = len(written_after)
    benchmark.extra_info["domain_paths"] = report.paths_before
    # The paper's shape: pruning removes package-private files on
    # every benchmark.
    assert len(written_after) < len(written_before)
