"""Benchmark harness regenerating every figure of the paper's §6.

The figure-to-configuration mapping follows the paper's experimental
setup:

* **Fig. 11a** — modeled (stateful) paths per benchmark, with and
  without pruning.
* **Fig. 11b** — determinacy-analysis time with commutativity checking
  on, toggling *pruning* (the paper's Fig. 11b caption covers both
  §4.4 passes: resource elimination and file pruning — they toggle
  together here).
* **Fig. 11c** — determinacy-analysis time without the §4.4 passes,
  toggling the *commutativity* reduction; without it several
  benchmarks exceed the time budget, reproducing the paper's timeouts.
* **Fig. 12** — idempotence-check time per benchmark (fixed variants
  stand in for the non-deterministic six, per §5).
* **Fig. 13** — determinacy-analysis time against n unordered,
  mutually conflicting file writes: the commutativity check is useless
  by construction, so the order space is the full n!.  The
  reachable-state memoization collapses the walk to the subset/state
  lattice (n + n(n-1)·2^(n-2) edges — see
  ``fig13_exploration_rows``), so the curve is exponential rather
  than factorial; the paper's factorial blow-up is still reproducible
  with ``DeterminismOptions(use_memoization=False)``.

Absolute numbers differ from the paper (different machine, a pure
Python CDCL solver instead of Z3); the *shapes* are the reproduction
target.  See EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.determinism import DeterminismOptions, check_determinism
from repro.analysis.idempotence import check_idempotence
from repro.analysis.pruning import prune_manifest
from repro.core.pipeline import Rehearsal
from repro.corpus import BENCHMARK_NAMES, idempotence_subject, load_source
from repro.errors import AnalysisBudgetExceeded
from repro.fs import Path, creat, file_, ite, none_, rm, seq

DEFAULT_TIMEOUT = 60.0
DEFAULT_MAX_BRANCHES = 20_000

TIMEOUT = float("inf")
"""Sentinel time value reported when the budget is exhausted."""


@dataclass
class BenchResult:
    name: str
    seconds: float  # TIMEOUT when the budget was exhausted
    deterministic: Optional[bool] = None
    detail: Dict[str, float] = None  # type: ignore[assignment]

    @property
    def timed_out(self) -> bool:
        return self.seconds == TIMEOUT


def _compile(name: str):
    tool = Rehearsal()
    return tool.compile(load_source(name))


def timed_determinism(
    name: str,
    use_commutativity: bool,
    use_pruning: bool,
    timeout: float = DEFAULT_TIMEOUT,
    max_branches: int = DEFAULT_MAX_BRANCHES,
) -> BenchResult:
    """One determinacy run under a configuration; budget-aware."""
    graph, programs = _compile(name)
    options = DeterminismOptions(
        use_commutativity=use_commutativity,
        use_pruning=use_pruning,
        use_elimination=use_pruning,  # §4.4 passes toggle together
        timeout_seconds=timeout,
        max_branches=max_branches,
    )
    start = time.perf_counter()
    try:
        result = check_determinism(graph, programs, options)
    except AnalysisBudgetExceeded:
        return BenchResult(name, TIMEOUT)
    return BenchResult(
        name,
        time.perf_counter() - start,
        deterministic=result.deterministic,
    )


# -- Fig. 11a -----------------------------------------------------------------


def fig11a_rows() -> List[Tuple[str, int, int]]:
    """(benchmark, written paths without pruning, with pruning).

    Counts paths some resource *writes* (the paper's "files per
    state"); idempotently-ensured shared directories (the D class of
    §4.3) are excluded from both sides, since they are never prunable
    by construction."""
    from repro.analysis.commutativity import footprint

    rows = []
    for name in BENCHMARK_NAMES:
        graph, programs = _compile(name)
        exprs = list(programs.values())
        before = set().union(*[footprint(e).writes for e in exprs])
        pruned, _ = prune_manifest(exprs)
        after = set().union(*[footprint(e).writes for e in pruned])
        rows.append((name, len(before), len(after)))
    return rows


# -- Fig. 11b / 11c -----------------------------------------------------------


def fig11b_rows(
    timeout: float = DEFAULT_TIMEOUT,
    names: Sequence[str] = tuple(BENCHMARK_NAMES),
) -> List[Tuple[str, float, float]]:
    """(benchmark, seconds without pruning, seconds with pruning)."""
    rows = []
    for name in names:
        off = timed_determinism(
            name, use_commutativity=True, use_pruning=False, timeout=timeout
        )
        on = timed_determinism(
            name, use_commutativity=True, use_pruning=True, timeout=timeout
        )
        rows.append((name, off.seconds, on.seconds))
    return rows


def fig11c_rows(
    timeout: float = DEFAULT_TIMEOUT,
    names: Sequence[str] = tuple(BENCHMARK_NAMES),
) -> List[Tuple[str, float, float]]:
    """(benchmark, seconds without commutativity, with commutativity);
    both without the §4.4 passes, as in the paper's middle column."""
    rows = []
    for name in names:
        off = timed_determinism(
            name, use_commutativity=False, use_pruning=False, timeout=timeout
        )
        on = timed_determinism(
            name, use_commutativity=True, use_pruning=False, timeout=timeout
        )
        rows.append((name, off.seconds, on.seconds))
    return rows


# -- Fig. 12 -------------------------------------------------------------------


def fig12_rows() -> List[Tuple[str, float]]:
    """(benchmark, idempotence-check seconds)."""
    rows = []
    for name in BENCHMARK_NAMES:
        subject = idempotence_subject(name)
        graph, programs = _compile(subject)
        start = time.perf_counter()
        result = check_idempotence(graph, programs)
        elapsed = time.perf_counter() - start
        assert result.idempotent, f"{subject} must be idempotent"
        rows.append((name, elapsed))
    return rows


# -- Fig. 13 -------------------------------------------------------------------


def conflicting_write(path: str, content: str):
    """An overwrite-style write: last writer wins, so n of these to
    one path defeat the commutativity check and cannot be pruned."""
    p = Path.of(path)
    return ite(
        file_(p),
        seq(rm(p), creat(p, content)),
        ite(none_(p), creat(p, content), seq(rm(p), creat(p, content))),
    )


def synthetic_conflict_graph(n: int):
    """n unordered resources all writing different content to /shared
    (the paper's Fig. 13 workload, built directly in FS because Puppet
    rejects duplicate file paths)."""
    import networkx as nx

    programs = {
        f"w{i}": conflicting_write("/shared", f"content-{i}")
        for i in range(n)
    }
    graph = nx.DiGraph()
    graph.add_nodes_from(programs)
    return graph, programs


def fig13_rows(
    ns: Sequence[int] = (2, 3, 4, 5, 6),
    timeout: float = DEFAULT_TIMEOUT,
    max_branches: int = 200_000,
) -> List[Tuple[int, float]]:
    """(n, seconds) for the synthetic conflicting-writes benchmark."""
    rows = []
    for n in ns:
        graph, programs = synthetic_conflict_graph(n)
        options = DeterminismOptions(
            timeout_seconds=timeout, max_branches=max_branches
        )
        start = time.perf_counter()
        try:
            result = check_determinism(graph, programs, options)
            assert not result.deterministic
            rows.append((n, time.perf_counter() - start))
        except AnalysisBudgetExceeded:
            rows.append((n, TIMEOUT))
    return rows


def fig13_lattice_bound(n: int) -> int:
    """Edge count of the Fig. 13 subset/state lattice.

    A reachable exploration state on the n-conflicting-writers
    workload is a (subset applied, last writer) pair, so the memoized
    walk has exactly n + n(n-1)·2^(n-2) transitions — versus
    sum_k n!/(n-k)! branches for the order tree.  The single source of
    truth for every structural memoization guard (bench asserts,
    ``tools/check_branch_budget.py``, unit tests).
    """
    if n < 2:
        return n
    return n + n * (n - 1) * 2 ** (n - 2)


def fig13_exploration_rows(
    ns: Sequence[int] = (2, 3, 4, 5, 6),
    timeout: float = DEFAULT_TIMEOUT,
    max_branches: int = 500_000,
) -> List[Tuple[int, int, int, int, float]]:
    """(n, branches, memo hits, distinct finals, seconds) for the
    Fig. 13 workload — the reachable-state-DAG exploration profile.

    The order tree over n unordered conflicting writers has
    sum_k n!/(n-k)! branches; the subset/state lattice the memoized
    exploration walks has only n + n(n-1)·2^(n-2) edges (a state is a
    (subset applied, last writer) pair).  Sub-factorial branch
    growth with nonzero memo hits is the structural signature the
    bench-regression job guards (wall clock alone would also pass on a
    faster machine with broken memoization).
    """
    rows: List[Tuple[int, int, int, int, float]] = []
    for n in ns:
        graph, programs = synthetic_conflict_graph(n)
        options = DeterminismOptions(
            timeout_seconds=timeout, max_branches=max_branches
        )
        start = time.perf_counter()
        try:
            result = check_determinism(graph, programs, options)
        except AnalysisBudgetExceeded as exc:
            rows.append(
                (n, exc.branches, exc.memo_hits, -1, TIMEOUT)
            )
            continue
        stats = result.stats
        rows.append(
            (
                n,
                stats.branches_explored,
                stats.memo_hits,
                stats.distinct_finals,
                time.perf_counter() - start,
            )
        )
    return rows


def fig13_deterministic_rows(
    ns: Sequence[int] = (2, 3, 4),
    timeout: float = DEFAULT_TIMEOUT,
    max_branches: int = 200_000,
) -> List[Tuple[int, float]]:
    """The paper's harder variant: a final file resource ordered after
    all n conflicting writers makes the manifest deterministic, forcing
    a full unsatisfiability proof instead of an early model."""
    import networkx as nx

    rows = []
    for n in ns:
        graph, programs = synthetic_conflict_graph(n)
        programs["final"] = conflicting_write("/shared", "x")
        graph.add_node("final")
        for i in range(n):
            graph.add_edge(f"w{i}", "final")
        options = DeterminismOptions(
            timeout_seconds=timeout, max_branches=max_branches
        )
        start = time.perf_counter()
        try:
            result = check_determinism(graph, programs, options)
            assert result.deterministic
            rows.append((n, time.perf_counter() - start))
        except AnalysisBudgetExceeded:
            rows.append((n, TIMEOUT))
    return rows


# -- full-corpus determinacy (the bench-regression headline figure) -----------


def corpus_determinism_rows(
    names: Sequence[str] = tuple(BENCHMARK_NAMES),
) -> List[Tuple[str, float]]:
    """(benchmark, determinacy seconds) under the production
    configuration (every §4 optimization on), ending with a TOTAL row.

    This is the number the incremental-solving work optimizes: all
    order-pair queries of one manifest share a single solver instance
    with per-pair selector variables, and non-deterministic verdicts
    additionally pay for unsat-core race localization.  The
    ``bench-regression`` CI job tracks it against
    ``benchmarks/baseline.json``.
    """
    rows: List[Tuple[str, float]] = []
    total = 0.0
    for name in names:
        graph, programs = _compile(name)
        start = time.perf_counter()
        check_determinism(graph, programs, DeterminismOptions())
        elapsed = time.perf_counter() - start
        total += elapsed
        rows.append((name, elapsed))
    rows.append(("TOTAL", total))
    return rows


# -- parallel solving (beyond the paper: the repro.sat backend figure) --------


def portfolio_speedup_rows(
    names: Sequence[str],
    workers: int = 4,
    repeats: int = 9,
) -> List[Tuple[str, float, float, str]]:
    """(benchmark, sequential s, parallel s, speedup) comparing the
    classic sequential determinacy check against the cube-and-conquer
    path (``DeterminismOptions(solver_workers=N)`` — see
    docs/solver.md).

    Times the determinacy analysis alone (compile excluded — the
    backend layer only touches exploration + solving) and takes the
    best of ``repeats`` runs per configuration, the standard guard
    against scheduler noise on loaded CI machines.  The parallel win
    on non-deterministic manifests comes from the eager
    first-divergence short-circuit: exploration stops at the first
    SAT divergence instead of enumerating every final state.
    """
    rows: List[Tuple[str, float, float, str]] = []
    parallel_options = DeterminismOptions(solver_workers=workers)
    for name in names:
        graph, programs = _compile(name)
        seq_best = float("inf")
        par_best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            seq_result = check_determinism(graph, programs, DeterminismOptions())
            seq_best = min(seq_best, time.perf_counter() - start)
            start = time.perf_counter()
            par_result = check_determinism(graph, programs, parallel_options)
            par_best = min(par_best, time.perf_counter() - start)
        assert seq_result.deterministic == par_result.deterministic, name
        rows.append(
            (name, seq_best, par_best, f"{seq_best / par_best:.2f}x")
        )
    return rows


# -- batch throughput (beyond the paper: the repro.service figure) ------------


def batch_throughput_rows(
    worker_counts: Sequence[int] = (1, 2, 4),
    names: Sequence[str] = tuple(BENCHMARK_NAMES),
) -> List[Tuple[int, float, float]]:
    """(workers, wall seconds, speedup vs. 1 worker) verifying the
    corpus through :class:`repro.service.BatchVerifier`, cache off.

    The 1-worker row runs serially in-process; parallel rows pay fork +
    IPC overhead, so on a single-core machine they come out ≥ 1×
    *slower* — the figure reports whatever the hardware gives.
    """
    from repro.service import BatchVerifier

    sources = [(name, load_source(name)) for name in names]
    timings: List[Tuple[int, float]] = []
    for workers in worker_counts:
        verifier = BatchVerifier(workers=workers, cache=None)
        start = time.perf_counter()
        verifier.verify_sources(sources)
        timings.append((workers, time.perf_counter() - start))
    baseline = next(
        (seconds for workers, seconds in timings if workers == 1),
        timings[0][1],
    )
    return [
        (workers, seconds, baseline / seconds)
        for workers, seconds in timings
    ]


def batch_cache_rows(
    names: Sequence[str] = tuple(BENCHMARK_NAMES),
) -> List[Tuple[str, float, float]]:
    """(run, wall seconds, solver seconds) for a cold then warm batch
    run over the corpus — the verdict-cache effect in one table."""
    import tempfile

    from repro.service import BatchVerifier, VerdictCache

    sources = [(name, load_source(name)) for name in names]
    rows = []
    with tempfile.TemporaryDirectory(prefix="rehearsal-bench-") as directory:
        for run in ("cold", "warm"):
            verifier = BatchVerifier(cache=VerdictCache(directory))
            start = time.perf_counter()
            report = verifier.verify_sources(sources)
            rows.append(
                (run, time.perf_counter() - start, report.solver_seconds)
            )
    return rows


# -- edit latency (incremental store) ----------------------------------------


def edit_latency_catalog(resources: int = 50, edited: bool = False) -> str:
    """A deterministic ``resources``-file catalog for the edit-latency
    figure: disjoint paths (every pair commutes), so the verification
    cost is dominated by the idempotence check — exactly the workload
    the incremental store's decomposition targets.  ``edited`` changes
    one resource's content, simulating the developer loop of touching
    one resource in a large catalog."""
    blocks = []
    for i in range(resources):
        content = f"setting{i} = {i}"
        if edited and i == resources // 2:
            content = f"setting{i} = {i} # edited"
        blocks.append(
            f"file {{ '/etc/app/conf{i:03d}.cfg':\n"
            f"  ensure  => file,\n"
            f"  content => '{content}',\n"
            f"}}"
        )
    return "\n\n".join(blocks) + "\n"


def warm_reverify_rows(
    resources: int = 50,
) -> List[Tuple[str, float, str]]:
    """(run, wall seconds, verdict) for the edit-latency figure: verify
    a ``resources``-file catalog from scratch, then with a cold
    incremental store, then re-verify a one-resource edit against the
    now-hot store.  The warm row is the headline: the store already
    holds per-resource idempotence verdicts and CNF blocks for the
    untouched resources, so only the edited resource is re-solved."""
    import tempfile

    from repro.service.incremental import reset_store_registry

    base = edit_latency_catalog(resources)
    edited = edit_latency_catalog(resources, edited=True)
    rows = []
    with tempfile.TemporaryDirectory(prefix="rehearsal-bench-") as directory:
        runs = (
            ("scratch", base, DeterminismOptions(incremental=False)),
            (
                "cold-store",
                base,
                DeterminismOptions(
                    incremental=True, incremental_dir=directory
                ),
            ),
            (
                "warm-edit",
                edited,
                DeterminismOptions(
                    incremental=True, incremental_dir=directory
                ),
            ),
        )
        try:
            for run, source, options in runs:
                tool = Rehearsal(options=options)
                start = time.perf_counter()
                report = tool.verify(source, name=f"edit-latency-{run}")
                verdict = (
                    "ok"
                    if report.ok
                    else (report.error or "FAILED")
                )
                rows.append((run, time.perf_counter() - start, verdict))
        finally:
            reset_store_registry()
    return rows


def daemon_latency_rows(
    resources: int = 12, samples: int = 5
) -> List[Tuple[str, float, str]]:
    """(run, wall seconds, note) for the daemon-latency figure: the
    warm one-resource re-verify of :func:`warm_reverify_rows`, measured
    in-process and then as a full HTTP round trip through ``rehearsal
    serve``.  Both paths share one hot incremental store (the daemon
    pins its handle open for the process lifetime), so the delta is
    pure service overhead — HTTP parse, executor hop, JSON encode.
    Best-of-``samples`` on each side; each sample edits the catalog
    differently so every verify re-solves exactly one resource."""
    import json as json_mod
    import tempfile
    import urllib.request

    from repro.service.daemon import DaemonConfig, daemon_in_thread
    from repro.service.incremental import reset_store_registry

    base = edit_latency_catalog(resources)

    def variant(tag: str) -> str:
        # content for resource 0 is unique to that block, so this
        # rewrites exactly one resource per sample.
        return base.replace("setting0 = 0", f"setting0 = {tag}")

    rows = []
    with tempfile.TemporaryDirectory(prefix="rehearsal-bench-") as directory:
        options = DeterminismOptions(
            incremental=True, incremental_dir=directory
        )
        try:
            # Fill the store once; both measured paths then re-verify
            # one-resource edits against it.
            Rehearsal(options=options).verify(base, name="daemon-latency-warm")

            local_best = float("inf")
            for k in range(samples):
                tool = Rehearsal(options=options)
                source = variant(f"local{k}")
                start = time.perf_counter()
                tool.verify(source, name="daemon-latency-local")
                local_best = min(local_best, time.perf_counter() - start)
            rows.append(("in-process", local_best, "warm one-edit re-verify"))

            config = DaemonConfig(
                port=0, workers=1, use_cache=False, options=options
            )
            with daemon_in_thread(config) as daemon:
                daemon_best = float("inf")
                for k in range(samples):
                    payload = json_mod.dumps(
                        {
                            "source": variant(f"daemon{k}"),
                            "name": "daemon-latency-daemon",
                        }
                    ).encode("utf8")
                    request = urllib.request.Request(
                        daemon.base_url + "/v1/verify",
                        data=payload,
                        headers={"Content-Type": "application/json"},
                        method="POST",
                    )
                    start = time.perf_counter()
                    with urllib.request.urlopen(request, timeout=120) as rsp:
                        json_mod.load(rsp)
                    daemon_best = min(
                        daemon_best, time.perf_counter() - start
                    )
            ratio = daemon_best / local_best if local_best > 0 else 0.0
            rows.append(
                ("daemon", daemon_best, f"{ratio:.2f}x in-process")
            )
        finally:
            reset_store_registry()
    return rows


# -- §6 verdict table -----------------------------------------------------------


def verdict_rows() -> List[Tuple[str, bool, Optional[bool]]]:
    """(benchmark, deterministic?, idempotent-of-subject?)."""
    tool = Rehearsal()
    rows = []
    for name in BENCHMARK_NAMES:
        det = tool.check_determinism(load_source(name)).deterministic
        idem = tool.check_idempotence(
            load_source(idempotence_subject(name))
        ).idempotent
        rows.append((name, det, idem))
    return rows


# -- rendering -------------------------------------------------------------------


def fmt_seconds(s: float) -> str:
    return "timeout" if s == TIMEOUT else f"{s:8.3f}s"


def render_rows(
    title: str, header: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    from repro.core.report import render_table

    body = render_table(header, [[_cell(c) for c in row] for row in rows])
    return f"{title}\n{body}"


def _cell(value: object) -> str:
    if isinstance(value, float):
        return fmt_seconds(value)
    return str(value)
