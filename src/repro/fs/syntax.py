"""Abstract syntax of the FS language (paper Fig. 5).

FS is a loop-free imperative language of filesystem operations.
Expressions denote functions from filesystems to a filesystem or the
error state; predicates denote boolean functions of the filesystem.

Everything is an immutable, hashable dataclass, so expressions can be
used as dictionary keys and shared freely.  Constructors are exposed
both as classes (``Mkdir(p)``) and lowercase helpers matching the
paper's notation (``mkdir(p)``, ``seq(...)``, ``ite(a, e1, e2)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

from repro.fs.paths import Path

# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Pred:
    """Base class for FS predicates."""

    def __and__(self, other: "Pred") -> "Pred":
        return pand(self, other)

    def __or__(self, other: "Pred") -> "Pred":
        return por(self, other)

    def __invert__(self) -> "Pred":
        return pnot(self)


@dataclass(frozen=True)
class PTrue(Pred):
    pass


@dataclass(frozen=True)
class PFalse(Pred):
    pass


@dataclass(frozen=True)
class IsNone(Pred):
    """``none?(p)`` — the path does not exist."""

    path: Path


@dataclass(frozen=True)
class IsFile(Pred):
    """``file?(p)`` — the path is a regular file."""

    path: Path


@dataclass(frozen=True)
class IsDir(Pred):
    """``dir?(p)`` — the path is a directory."""

    path: Path


@dataclass(frozen=True)
class IsEmptyDir(Pred):
    """``emptydir?(p)`` — a directory with no children."""

    path: Path


@dataclass(frozen=True)
class IsFileWith(Pred):
    """``filecontains?(p, s)`` — a regular file with exactly content ``s``.

    Not in the paper's Fig. 5, but needed by resource models that only act
    when a file already holds particular content (e.g. idempotent file
    resources) and by the §5 invariant checker.  It preserves finiteness.
    """

    path: Path
    content: str


@dataclass(frozen=True)
class PNot(Pred):
    inner: Pred


@dataclass(frozen=True)
class PAnd(Pred):
    left: Pred
    right: Pred


@dataclass(frozen=True)
class POr(Pred):
    left: Pred
    right: Pred


TRUE = PTrue()
FALSE = PFalse()


def pnot(a: Pred) -> Pred:
    if isinstance(a, PTrue):
        return FALSE
    if isinstance(a, PFalse):
        return TRUE
    if isinstance(a, PNot):
        return a.inner
    return PNot(a)


def pand(*preds: Pred) -> Pred:
    acc: Pred = TRUE
    for p in preds:
        if isinstance(p, PFalse):
            return FALSE
        if isinstance(p, PTrue):
            continue
        acc = p if isinstance(acc, PTrue) else PAnd(acc, p)
    return acc


def por(*preds: Pred) -> Pred:
    acc: Pred = FALSE
    for p in preds:
        if isinstance(p, PTrue):
            return TRUE
        if isinstance(p, PFalse):
            continue
        acc = p if isinstance(acc, PFalse) else POr(acc, p)
    return acc


def none_(p: Path) -> Pred:
    return IsNone(p)


def file_(p: Path) -> Pred:
    return IsFile(p)


def dir_(p: Path) -> Pred:
    return IsDir(p)


def emptydir_(p: Path) -> Pred:
    return IsEmptyDir(p)


def file_with(p: Path, content: str) -> Pred:
    return IsFileWith(p, content)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    """Base class for FS expressions."""

    def then(self, other: "Expr") -> "Expr":
        return seq(self, other)

    def __rshift__(self, other: "Expr") -> "Expr":
        return seq(self, other)


@dataclass(frozen=True)
class Id(Expr):
    """``id`` — no-op."""


@dataclass(frozen=True)
class Err(Expr):
    """``err`` — halt with error."""


@dataclass(frozen=True)
class Mkdir(Expr):
    """``mkdir(p)`` — create a directory (parent must be a directory,
    target must not exist)."""

    path: Path


@dataclass(frozen=True)
class Creat(Expr):
    """``creat(p, str)`` — create a file with the given content."""

    path: Path
    content: str


@dataclass(frozen=True)
class Rm(Expr):
    """``rm(p)`` — remove a file or an empty directory."""

    path: Path


@dataclass(frozen=True)
class Cp(Expr):
    """``cp(src, dst)`` — copy a regular file to a fresh destination."""

    src: Path
    dst: Path


@dataclass(frozen=True)
class Seq(Expr):
    """``e1; e2``."""

    first: Expr
    second: Expr


@dataclass(frozen=True)
class If(Expr):
    """``if (a) e1 else e2``."""

    pred: Pred
    then_branch: Expr
    else_branch: Expr


ID = Id()
ERR = Err()


def mkdir(p: Union[Path, str]) -> Expr:
    return Mkdir(_as_path(p))


def creat(p: Union[Path, str], content: str) -> Expr:
    return Creat(_as_path(p), content)


def rm(p: Union[Path, str]) -> Expr:
    return Rm(_as_path(p))


def cp(src: Union[Path, str], dst: Union[Path, str]) -> Expr:
    return Cp(_as_path(src), _as_path(dst))


def seq(*exprs: Expr) -> Expr:
    """Right-nested sequencing; drops ``id`` units and stops after ``err``."""
    items = [e for e in exprs if not isinstance(e, Id)]
    if not items:
        return ID
    out = items[-1]
    for e in reversed(items[:-1]):
        if isinstance(e, Err):
            return ERR
        out = Seq(e, out)
    return out


def ite(pred: Pred, then_branch: Expr, else_branch: Expr = ID) -> Expr:
    """``if (a) e1 else e2``; the paper's shorthand defaults else to id."""
    if isinstance(pred, PTrue):
        return then_branch
    if isinstance(pred, PFalse):
        return else_branch
    if then_branch == else_branch:
        return then_branch
    return If(pred, then_branch, else_branch)


def _as_path(p: Union[Path, str]) -> Path:
    return Path.of(p) if isinstance(p, str) else p


# ---------------------------------------------------------------------------
# Traversals
# ---------------------------------------------------------------------------


def pred_paths(a: Pred) -> Iterator[Path]:
    """Paths syntactically mentioned by a predicate."""
    stack = [a]
    while stack:
        cur = stack.pop()
        if isinstance(cur, (IsNone, IsFile, IsDir, IsEmptyDir, IsFileWith)):
            yield cur.path
        elif isinstance(cur, PNot):
            stack.append(cur.inner)
        elif isinstance(cur, (PAnd, POr)):
            stack.append(cur.left)
            stack.append(cur.right)


def expr_paths(e: Expr) -> Iterator[Path]:
    """Paths syntactically mentioned by an expression."""
    stack = [e]
    while stack:
        cur = stack.pop()
        if isinstance(cur, (Mkdir, Creat, Rm)):
            yield cur.path
        elif isinstance(cur, Cp):
            yield cur.src
            yield cur.dst
        elif isinstance(cur, Seq):
            stack.append(cur.first)
            stack.append(cur.second)
        elif isinstance(cur, If):
            yield from pred_paths(cur.pred)
            stack.append(cur.then_branch)
            stack.append(cur.else_branch)


def expr_contents(e: Expr) -> Iterator[str]:
    """String literals written by an expression or tested by predicates."""
    stack = [e]
    while stack:
        cur = stack.pop()
        if isinstance(cur, Creat):
            yield cur.content
        elif isinstance(cur, Seq):
            stack.append(cur.first)
            stack.append(cur.second)
        elif isinstance(cur, If):
            yield from _pred_contents(cur.pred)
            stack.append(cur.then_branch)
            stack.append(cur.else_branch)


def _pred_contents(a: Pred) -> Iterator[str]:
    stack = [a]
    while stack:
        cur = stack.pop()
        if isinstance(cur, IsFileWith):
            yield cur.content
        elif isinstance(cur, PNot):
            stack.append(cur.inner)
        elif isinstance(cur, (PAnd, POr)):
            stack.append(cur.left)
            stack.append(cur.right)


def subexpressions(e: Expr) -> Iterator[Expr]:
    """All subexpressions, root first."""
    stack = [e]
    while stack:
        cur = stack.pop()
        yield cur
        if isinstance(cur, Seq):
            stack.append(cur.second)
            stack.append(cur.first)
        elif isinstance(cur, If):
            stack.append(cur.else_branch)
            stack.append(cur.then_branch)


def expr_size(e: Expr) -> int:
    """Number of AST nodes (predicates count as one node each)."""
    return sum(1 for _ in subexpressions(e))
