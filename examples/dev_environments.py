#!/usr/bin/env python3
"""The over-constrained modules of the paper's Fig. 3b.

Two teams write independent development-environment modules.  Both
install `make` and `m4`; each adds a *false* dependency between them
(in opposite directions) to "force determinism".  The modules work
alone but can never be composed: Puppet reports a dependency cycle.

The right fix is to drop the false dependencies.  Rehearsal then
*proves* the modules compose deterministically — the §4.3
commutativity analysis shows that packages sharing /usr-style
directory trees commute, so no ordering is needed.

Run:  python examples/dev_environments.py
"""

from repro import DependencyCycleError, Rehearsal
from repro.core.report import render_determinism

OVERCONSTRAINED = """
define cpp() {
  if !defined(Package['m4'])   { package{'m4': ensure => present } }
  if !defined(Package['make']) { package{'make': ensure => present } }
  package{'gcc': ensure => present }
  Package['m4'] -> Package['make']
  Package['make'] -> Package['gcc']
}

define ocaml() {
  if !defined(Package['make']) { package{'make': ensure => present } }
  if !defined(Package['m4'])   { package{'m4': ensure => present } }
  package{'ocaml': ensure => present }
  Package['make'] -> Package['m4']
  Package['m4'] -> Package['ocaml']
}

cpp{'dev': }
ocaml{'dev': }
"""

MINIMAL = """
define cpp() {
  if !defined(Package['m4'])   { package{'m4': ensure => present } }
  if !defined(Package['make']) { package{'make': ensure => present } }
  package{'gcc': ensure => present }
  Package['make'] -> Package['gcc']
}

define ocaml() {
  if !defined(Package['make']) { package{'make': ensure => present } }
  if !defined(Package['m4'])   { package{'m4': ensure => present } }
  package{'ocaml': ensure => present }
  Package['m4'] -> Package['ocaml']
}

cpp{'dev': }
ocaml{'dev': }
"""


def main() -> None:
    tool = Rehearsal()

    print("=== Composing the over-constrained modules (Fig. 3b) ===")
    try:
        tool.check_determinism(OVERCONSTRAINED)
        raise AssertionError("expected a dependency cycle")
    except DependencyCycleError as exc:
        print(f"rejected as expected: {exc}")

    print()
    print("=== Composing the minimal modules ===")
    result = tool.check_determinism(MINIMAL)
    print(render_determinism(result))
    assert result.deterministic
    print()
    print(
        "No false dependencies needed: the commutativity analysis proves "
        "the shared packages commute (idempotent directory creation, §4.3)."
    )


if __name__ == "__main__":
    main()
