"""Finite-domain symbolic execution of FS programs (the paper's Fig. 7
encoding) plus SAT-query plumbing and model decoding."""

from repro.smt.encoder import apply_expr, encode_pred
from repro.smt.model import decode_filesystem, describe_filesystem
from repro.smt.query import Query, check_sat
from repro.smt.state import (
    SymbolicState,
    assignment_for_fs,
    concrete_state,
    initial_constraints,
    initial_state,
    states_differ,
)
from repro.smt.values import (
    GENERIC_CONTENTS,
    OMEGA_1,
    OMEGA_2,
    DomainValue,
    PathDomains,
    SymbolicValue,
    V_DIR,
    V_DNE,
    VDir,
    VDne,
    VFile,
    initial_var_name,
)

__all__ = [
    "DomainValue",
    "GENERIC_CONTENTS",
    "OMEGA_1",
    "OMEGA_2",
    "PathDomains",
    "Query",
    "SymbolicState",
    "SymbolicValue",
    "V_DIR",
    "V_DNE",
    "VDir",
    "VDne",
    "VFile",
    "apply_expr",
    "assignment_for_fs",
    "check_sat",
    "concrete_state",
    "decode_filesystem",
    "describe_filesystem",
    "encode_pred",
    "initial_constraints",
    "initial_state",
    "initial_var_name",
    "states_differ",
]
