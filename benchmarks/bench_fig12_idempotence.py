"""Fig. 12 — idempotence-check time per benchmark.

The idempotence check runs on deterministic manifests only (§5), so
the fixed variants stand in for the six non-deterministic benchmarks,
mirroring the paper's "for each non-deterministic program, we
developed a fix and verified that Rehearsal reports that it is
deterministic and idempotent".  Expected shape: uniformly fast —
no permutation exploration is involved.
"""

import pytest

from repro.analysis.idempotence import check_idempotence
from repro.core.pipeline import Rehearsal
from repro.corpus import BENCHMARK_NAMES, idempotence_subject, load_source


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_fig12_idempotence(benchmark, name):
    subject = idempotence_subject(name)
    tool = Rehearsal()
    graph, programs = tool.compile(load_source(subject))

    result = benchmark.pedantic(
        check_idempotence, args=(graph, programs), rounds=1, iterations=1
    )
    benchmark.extra_info["subject"] = subject
    assert result.idempotent
