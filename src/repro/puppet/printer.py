"""Unparser: Puppet AST → manifest source.

Used for diagnostics (showing the resource a verdict concerns in
manifest syntax) and as the test oracle for the frontend: for every
AST, ``parse(print(ast))`` must reproduce the AST exactly — a strong
round-trip property exercised by Hypothesis in
``tests/test_puppet_printer.py``.
"""

from __future__ import annotations

from typing import List

from repro.puppet import ast_nodes as ast


def print_manifest(manifest: ast.Manifest) -> str:
    return "\n".join(print_statement(s) for s in manifest.statements)


def print_statement(stmt: ast.Statement, indent: int = 0) -> str:
    pad = "  " * indent
    if isinstance(stmt, ast.ResourceDecl):
        prefix = "@@" if stmt.exported else ("@" if stmt.virtual else "")
        bodies = ";\n".join(
            _print_body(b, indent + 1) for b in stmt.bodies
        )
        rtype = "class" if stmt.rtype == "class" else stmt.rtype
        return f"{pad}{prefix}{rtype} {{\n{bodies}\n{pad}}}"
    if isinstance(stmt, ast.ResourceDefault):
        attrs = _print_attrs(stmt.attributes, indent + 1)
        return f"{pad}{stmt.rtype} {{\n{attrs}\n{pad}}}"
    if isinstance(stmt, ast.ResourceOverride):
        ref = print_expr(stmt.ref)
        attrs = _print_attrs(stmt.attributes, indent + 1)
        return f"{pad}{ref} {{\n{attrs}\n{pad}}}"
    if isinstance(stmt, ast.DefineDecl):
        params = _print_params(stmt.params)
        body = _print_block(stmt.body, indent + 1)
        return f"{pad}define {stmt.name}{params} {{\n{body}\n{pad}}}"
    if isinstance(stmt, ast.ClassDecl):
        params = _print_params(stmt.params)
        inherits = f" inherits {stmt.parent}" if stmt.parent else ""
        body = _print_block(stmt.body, indent + 1)
        return (
            f"{pad}class {stmt.name}{params}{inherits} {{\n{body}\n{pad}}}"
        )
    if isinstance(stmt, ast.NodeDecl):
        names = ", ".join(
            n if n == "default" else _quote(n) for n in stmt.names
        )
        body = _print_block(stmt.body, indent + 1)
        return f"{pad}node {names} {{\n{body}\n{pad}}}"
    if isinstance(stmt, ast.Assignment):
        return f"{pad}${stmt.name} = {print_expr(stmt.value)}"
    if isinstance(stmt, ast.IfStatement):
        return _print_if(stmt, indent)
    if isinstance(stmt, ast.CaseStatement):
        return _print_case(stmt, indent)
    if isinstance(stmt, ast.IncludeStatement):
        keyword = "require" if stmt.require_edges else "include"
        return f"{pad}{keyword} {', '.join(stmt.names)}"
    if isinstance(stmt, ast.Collector):
        return pad + _print_collector(stmt, indent)
    if isinstance(stmt, ast.ChainStatement):
        parts: List[str] = []
        for i, operand in enumerate(stmt.operands):
            if i:
                parts.append(f" {stmt.arrows[i - 1]} ")
            if isinstance(operand, ast.Collector):
                parts.append(_print_collector(operand, indent))
            else:
                parts.append(print_expr(operand))
        return pad + "".join(parts)
    if isinstance(stmt, ast.ExpressionStatement):
        return pad + print_expr(stmt.expr)
    raise TypeError(f"cannot print statement: {stmt!r}")


def _print_body(body: ast.ResourceBody, indent: int) -> str:
    pad = "  " * indent
    attrs = _print_attrs(body.attributes, indent + 1)
    title = print_expr(body.title)
    if attrs:
        return f"{pad}{title}:\n{attrs}"
    return f"{pad}{title}:"


def _print_attrs(attrs, indent: int) -> str:
    pad = "  " * indent
    lines = []
    for attr in attrs:
        arrow = "+>" if attr.add else "=>"
        lines.append(f"{pad}{attr.name} {arrow} {print_expr(attr.value)},")
    return "\n".join(lines)


def _print_params(params) -> str:
    if not params:
        return "()"
    parts = []
    for name, default in params:
        if default is None:
            parts.append(f"${name}")
        else:
            parts.append(f"${name} = {print_expr(default)}")
    return "(" + ", ".join(parts) + ")"


def _print_block(statements, indent: int) -> str:
    if not statements:
        return "  " * indent
    return "\n".join(print_statement(s, indent) for s in statements)


def _print_if(stmt: ast.IfStatement, indent: int) -> str:
    pad = "  " * indent
    parts = []
    for i, (cond, body) in enumerate(stmt.branches):
        block = _print_block(body, indent + 1)
        if cond is None:
            parts.append(f"else {{\n{block}\n{pad}}}")
        elif i == 0:
            parts.append(f"if {print_expr(cond)} {{\n{block}\n{pad}}}")
        else:
            parts.append(f"elsif {print_expr(cond)} {{\n{block}\n{pad}}}")
    return pad + "\n".join(
        p if i == 0 else pad + p for i, p in enumerate(parts)
    )


def _print_case(stmt: ast.CaseStatement, indent: int) -> str:
    pad = "  " * indent
    inner = "  " * (indent + 1)
    lines = [f"{pad}case {print_expr(stmt.subject)} {{"]
    for matches, body in stmt.cases:
        keys = ", ".join(
            "default" if m is None else print_expr(m) for m in matches
        )
        block = _print_block(body, indent + 2)
        lines.append(f"{inner}{keys}: {{\n{block}\n{inner}}}")
    lines.append(f"{pad}}}")
    return "\n".join(lines)


def _print_collector(stmt: ast.Collector, indent: int) -> str:
    query = _print_query(stmt.query) if stmt.query else ""
    out = f"{stmt.rtype} <|{query}|>"
    if stmt.overrides:
        attrs = _print_attrs(stmt.overrides, indent + 1)
        pad = "  " * indent
        out += f" {{\n{attrs}\n{pad}}}"
    return out


def _print_query(q: ast.CollectorQuery) -> str:
    if q.op in ("and", "or"):
        return f"({_print_query(q.left)} {q.op} {_print_query(q.right)})"
    return f" {q.attr} {q.op} {print_expr(q.value)} "


def print_expr(expr: ast.Expr) -> str:
    if isinstance(expr, ast.Literal):
        return _print_literal(expr.value)
    if isinstance(expr, ast.InterpolatedString):
        escaped = expr.raw.replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(expr, ast.VariableRef):
        return f"${expr.name}"
    if isinstance(expr, ast.ArrayLit):
        return "[" + ", ".join(print_expr(i) for i in expr.items) + "]"
    if isinstance(expr, ast.HashLit):
        entries = ", ".join(
            f"{print_expr(k)} => {print_expr(v)}" for k, v in expr.entries
        )
        return "{ " + entries + " }"
    if isinstance(expr, ast.ResourceRefExpr):
        titles = ", ".join(print_expr(t) for t in expr.titles)
        return f"{expr.rtype}[{titles}]"
    if isinstance(expr, ast.UnaryOp):
        return f"{expr.op}{_atom(expr.operand)}"
    if isinstance(expr, ast.BinaryOp):
        return f"({_atom(expr.left)} {expr.op} {_atom(expr.right)})"
    if isinstance(expr, ast.Selector):
        cases = ", ".join(
            ("default" if k is None else print_expr(k))
            + f" => {print_expr(v)}"
            for k, v in expr.cases
        )
        # Selectors bind loosest: parenthesize the whole form so it
        # can appear as an operand, and the subject so selectors
        # cannot chain.
        return f"({_atom(expr.subject)} ? {{ {cases} }})"
    if isinstance(expr, ast.FunctionCall):
        args = ", ".join(print_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    raise TypeError(f"cannot print expression: {expr!r}")


def _atom(expr: ast.Expr) -> str:
    """Print an expression, parenthesized when composite, so it can
    safely appear as an operand regardless of precedence."""
    text = print_expr(expr)
    if isinstance(expr, (ast.UnaryOp, ast.BinaryOp, ast.Selector)):
        if text.startswith("("):
            return text
        return f"({text})"
    return text


def _print_literal(value) -> str:
    if value is None:
        return "undef"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, (int, float)):
        return str(value)
    return _quote(str(value))


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace("'", "\\'")
    return f"'{escaped}'"
