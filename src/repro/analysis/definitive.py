"""Detecting definitive writes (paper §4.4, Fig. 10b).

For each path a resource writes, the abstract interpretation computes
what the resource guarantees about the path's final state on success:

* ``AbsVal.BOT`` — untouched;
* ``ADir`` / ``ADne`` / ``AFile(content)`` — placed in that definite
  state (or the resource errors);
* ``AbsVal.TOP`` — indeterminate (e.g. branch-dependent values).

Branches that definitely error contribute nothing (the lemma concerns
success states).  A branch that leaves a path untouched while the other
writes it yields a *conditionally definitive* write: the profile
records every path read by the guards dominating the write (plus ``cp``
sources).  The pruning pass (:mod:`repro.analysis.pruning`) accepts
such writes only when those condition paths are private to the
resource — then the branch taken, and hence the path's final value, is
the same function of the initial state in every permutation, which is
exactly what Lemma 6 needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple, Union

from repro.fs import syntax as fx
from repro.fs.domain import fresh_child_of, pred_domain
from repro.fs.paths import Path


class _Bot:
    def __repr__(self) -> str:
        return "⊥"


class _Top:
    def __repr__(self) -> str:
        return "⊤"


BOT = _Bot()
TOP = _Top()


@dataclass(frozen=True)
class ADir:
    def __repr__(self) -> str:
        return "dir"


@dataclass(frozen=True)
class ADne:
    def __repr__(self) -> str:
        return "dne"


@dataclass(frozen=True)
class AFile:
    content: str

    def __repr__(self) -> str:
        return f"file({self.content!r})"


AbsVal = Union[_Bot, _Top, ADir, ADne, AFile]
A_DIR = ADir()
A_DNE = ADne()


def _join(a: AbsVal, b: AbsVal) -> AbsVal:
    """Branch join with BOT absorption: an untouched branch defers to
    the writing branch (the guard-privacy side condition makes this
    sound — see module docstring)."""
    if a is BOT:
        return b
    if b is BOT:
        return a
    if a == b:
        return a
    return TOP


@dataclass(frozen=True)
class WriteProfile:
    """Summary of one resource's effect on one path."""

    value: AbsVal
    condition_paths: FrozenSet[Path]

    @property
    def is_definite(self) -> bool:
        return self.value is not BOT and self.value is not TOP


@dataclass
class _AbsState:
    values: Dict[Path, AbsVal]
    conditions: Dict[Path, FrozenSet[Path]]
    errors: bool = False

    def copy(self) -> "_AbsState":
        return _AbsState(dict(self.values), dict(self.conditions), self.errors)


def analyze_definitive(e: fx.Expr) -> Dict[Path, WriteProfile]:
    """Per-path write profiles for one expression (Fig. 10b)."""
    state = _AbsState({}, {})
    out = _eval(e, state, frozenset())
    if out.errors:
        return {}
    return {
        p: WriteProfile(v, out.conditions.get(p, frozenset()))
        for p, v in out.values.items()
        if v is not BOT
    }


def _eval(
    e: fx.Expr, state: _AbsState, guards: FrozenSet[Path]
) -> _AbsState:
    if state.errors:
        return state
    if isinstance(e, fx.Id):
        return state
    if isinstance(e, fx.Err):
        state = state.copy()
        state.errors = True
        return state
    if isinstance(e, fx.Mkdir):
        return _write(state, e.path, A_DIR, guards)
    if isinstance(e, fx.Creat):
        return _write(state, e.path, AFile(e.content), guards)
    if isinstance(e, fx.Rm):
        return _write(state, e.path, A_DNE, guards)
    if isinstance(e, fx.Cp):
        # The copied value depends on the source: record it as a
        # condition so privacy checking covers value flow.
        return _write(state, e.dst, TOP, guards | {e.src})
    if isinstance(e, fx.Seq):
        return _eval(e.second, _eval(e.first, state, guards), guards)
    if isinstance(e, fx.If):
        guard_paths = _guard_paths(e.pred)
        inner = guards | guard_paths
        then_state = _eval(e.then_branch, state.copy(), inner)
        else_state = _eval(e.else_branch, state.copy(), inner)
        if then_state.errors and else_state.errors:
            out = state.copy()
            out.errors = True
            return out
        if then_state.errors:
            return else_state
        if else_state.errors:
            return then_state
        return _merge(then_state, else_state)
    raise TypeError(f"unknown expression: {e!r}")


def _write(
    state: _AbsState, path: Path, value: AbsVal, guards: FrozenSet[Path]
) -> _AbsState:
    out = state.copy()
    out.values[path] = value
    out.conditions[path] = out.conditions.get(path, frozenset()) | guards
    return out


def _merge(a: _AbsState, b: _AbsState) -> _AbsState:
    values: Dict[Path, AbsVal] = {}
    for p in set(a.values) | set(b.values):
        values[p] = _join(a.values.get(p, BOT), b.values.get(p, BOT))
    conditions: Dict[Path, FrozenSet[Path]] = {}
    for p in set(a.conditions) | set(b.conditions):
        conditions[p] = a.conditions.get(p, frozenset()) | b.conditions.get(
            p, frozenset()
        )
    return _AbsState(values, conditions, False)


def _guard_paths(pred: fx.Pred) -> FrozenSet[Path]:
    """Paths observed by a guard; emptiness tests include the fresh
    witness child so descendant writes void privacy."""
    return frozenset(pred_domain(pred))
