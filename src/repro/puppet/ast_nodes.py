"""Abstract syntax tree for the Puppet DSL subset (paper Fig. 1 plus
the §3.1 features: defines, classes, stages, collectors, virtual
resources, conditionals, chaining arrows, defaults)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    pass


@dataclass(frozen=True)
class Literal(Expr):
    """str | int | float | bool | None (undef)."""

    value: object


@dataclass(frozen=True)
class InterpolatedString(Expr):
    """Raw payload of a double-quoted string; resolved at eval time."""

    raw: str


@dataclass(frozen=True)
class VariableRef(Expr):
    name: str  # may be qualified: ::top, nginx::port


@dataclass(frozen=True)
class ArrayLit(Expr):
    items: Tuple[Expr, ...]


@dataclass(frozen=True)
class HashLit(Expr):
    entries: Tuple[Tuple[Expr, Expr], ...]


@dataclass(frozen=True)
class ResourceRefExpr(Expr):
    """``File['/etc/motd']`` — possibly multiple titles."""

    rtype: str
    titles: Tuple[Expr, ...]


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # "!" | "-"
    operand: Expr


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str  # == != < <= > >= + - * / % and or in
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Selector(Expr):
    """``expr ? { match => value, ..., default => value }``"""

    subject: Expr
    cases: Tuple[Tuple[Optional[Expr], Expr], ...]  # None key = default


@dataclass(frozen=True)
class FunctionCall(Expr):
    name: str
    args: Tuple[Expr, ...]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Statement:
    line: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)


@dataclass(frozen=True)
class AttributeDef:
    name: str
    value: Expr
    add: bool = False  # +> (append) — parsed, treated as =>


@dataclass(frozen=True)
class ResourceBody:
    title: Expr
    attributes: Tuple[AttributeDef, ...]
    line: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)


@dataclass(frozen=True)
class ResourceDecl(Statement):
    rtype: str = ""
    bodies: Tuple[ResourceBody, ...] = ()
    virtual: bool = False
    exported: bool = False


@dataclass(frozen=True)
class ResourceDefault(Statement):
    """``File { owner => root }`` — per-type attribute defaults."""

    rtype: str = ""
    attributes: Tuple[AttributeDef, ...] = ()


@dataclass(frozen=True)
class ResourceOverride(Statement):
    """``File['/f'] { mode => '0644' }`` — amend a declared resource."""

    ref: ResourceRefExpr = None  # type: ignore[assignment]
    attributes: Tuple[AttributeDef, ...] = ()


@dataclass(frozen=True)
class DefineDecl(Statement):
    name: str = ""
    params: Tuple[Tuple[str, Optional[Expr]], ...] = ()
    body: Tuple[Statement, ...] = ()


@dataclass(frozen=True)
class ClassDecl(Statement):
    name: str = ""
    params: Tuple[Tuple[str, Optional[Expr]], ...] = ()
    parent: Optional[str] = None
    body: Tuple[Statement, ...] = ()


@dataclass(frozen=True)
class NodeDecl(Statement):
    names: Tuple[str, ...] = ()  # 'default' matches anything
    body: Tuple[Statement, ...] = ()


@dataclass(frozen=True)
class Assignment(Statement):
    name: str = ""
    value: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class IfStatement(Statement):
    branches: Tuple[Tuple[Optional[Expr], Tuple[Statement, ...]], ...] = ()
    # None condition = else branch


@dataclass(frozen=True)
class CaseStatement(Statement):
    subject: Expr = None  # type: ignore[assignment]
    cases: Tuple[Tuple[Tuple[Optional[Expr], ...], Tuple[Statement, ...]], ...] = ()
    # A case option is a tuple of match expressions; (None,) = default.


@dataclass(frozen=True)
class IncludeStatement(Statement):
    names: Tuple[str, ...] = ()
    require_edges: bool = False  # the `require` function form


@dataclass(frozen=True)
class CollectorQuery:
    """``<| attr == 'v' and ... |>`` — None means match-all."""

    op: str = ""  # "==", "!=", "and", "or" or "" for match-all
    attr: str = ""
    value: Optional[Expr] = None
    left: Optional["CollectorQuery"] = None
    right: Optional["CollectorQuery"] = None


@dataclass(frozen=True)
class Collector(Statement):
    rtype: str = ""
    query: Optional[CollectorQuery] = None
    overrides: Tuple[AttributeDef, ...] = ()
    exported: bool = False


ChainOperand = Union[ResourceRefExpr, Collector, ResourceDecl]


@dataclass(frozen=True)
class ChainStatement(Statement):
    """``A -> B ~> C`` (arrows already normalized left-to-right)."""

    operands: Tuple[ChainOperand, ...] = ()
    arrows: Tuple[str, ...] = ()  # "->" or "~>" between operands


@dataclass(frozen=True)
class ExpressionStatement(Statement):
    """Bare function call: fail(...), notice(...), realize(...)."""

    expr: FunctionCall = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Manifest:
    statements: Tuple[Statement, ...]
