"""Seeded random-catalog generator for differential fuzzing.

Produces :class:`GeneratedCase` values — small random resource catalogs
over the full modeled vocabulary (``file``, ``package``, ``service``,
``user``, ``group``, ``cron``, ``ssh_authorized_key``, ``host``) — that
the differential driver (:mod:`repro.testing.differential`) runs
through both the real symbolic pipeline and the concrete interleaving
oracle (:mod:`repro.testing.oracle`).

Reproducibility is the design center: every case is a pure function of
``(master seed, case index, GeneratorConfig)``.  A nightly failure
ships as a seed + case id, and re-running the generator locally
re-creates the byte-identical manifest (the generated AST is printed
through :mod:`repro.puppet.printer`, the same unparser the shrinker
uses for reproducers).

Knobs (:class:`GeneratorConfig`):

* ``edge_density`` — probability of a dependency edge per eligible
  resource pair (drawn only forward, so catalogs are DAGs by
  construction);
* ``path_contention`` — probability that a generated file resource
  reuses an already-targeted path instead of a fresh one, the knob
  that manufactures racy shared-path writes;
* ``bug_weights`` — relative frequency of the injectable bug classes,
  which mirror the §6 corpus seeds (see :data:`BUG_CLASSES`).

Injected bug classes are *hints*, not ground truth: a "clean" case can
still race through path contention, and the oracle alone decides the
expected verdict.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.puppet import ast_nodes as ast
from repro.puppet.printer import print_manifest
from repro.resources.package_db import default_database

#: Bump whenever generated output changes for a fixed seed — recorded
#: in every regression header so a stale reproducer is detectable.
GENERATOR_VERSION = 1

#: The injectable bug classes, mirroring the corpus seeds:
#:
#: ``clean``            no injected bug (catalog may still race through
#:                      the contention knob);
#: ``shared-write``     two unordered ``file`` resources write different
#:                      content to one path (Fig. 3a shape);
#: ``absent-vs-present`` one resource creates a file another removes,
#:                      unordered (the rsyslog-nondet shape);
#: ``missing-pkg-dep``  a config file overwrites a package-owned path
#:                      with no ``require`` on the package (the
#:                      ntp/dns-nondet shape);
#: ``ssh-before-user``  an ``ssh_authorized_key`` with no dependency on
#:                      the ``user`` that creates the home directory
#:                      (the §6 ssh-keys bug: order-dependent error).
BUG_CLASSES = (
    "clean",
    "shared-write",
    "absent-vs-present",
    "missing-pkg-dep",
    "ssh-before-user",
)

_DEFAULT_BUG_WEIGHTS = {
    "clean": 4,
    "shared-write": 2,
    "absent-vs-present": 1,
    "missing-pkg-dep": 2,
    "ssh-before-user": 1,
}

#: Small curated packages keep the symbolic path domain (and the
#: oracle's state family) small; ``fuzzpkg`` exercises the synthetic
#: listing generator.
_PACKAGE_POOL = ("m4", "make", "fuzzpkg")
_USER_POOL = ("alice", "bob", "carol")
_GROUP_POOL = ("admins", "ops")
_SERVICE_POOL = ("appd", "webd", "jobd")
_HOST_POOL = ("node1", "node2")
_CRON_POOL = ("rotate", "sync")
_CONTENT_POOL = ("alpha\n", "beta\n", "gamma\n")
_SHARED_DIRS = ("/etc/fuzz", "/srv/fuzz")


@dataclass(frozen=True)
class ResourceSpec:
    """One generated resource: type, title, scalar attributes, and the
    indices (into the case's resource list) it ``require``s."""

    rtype: str
    title: str
    attributes: Tuple[Tuple[str, object], ...] = ()
    requires: Tuple[int, ...] = ()

    @property
    def ref(self) -> str:
        return f"{_ref_type(self.rtype)}[{self.title!r}]"

    def to_dict(self) -> dict:
        return {
            "rtype": self.rtype,
            "title": self.title,
            "attributes": [list(kv) for kv in self.attributes],
            "requires": list(self.requires),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ResourceSpec":
        return cls(
            rtype=data["rtype"],
            title=data["title"],
            attributes=tuple(
                (str(k), v) for k, v in data.get("attributes", [])
            ),
            requires=tuple(int(i) for i in data.get("requires", [])),
        )


@dataclass
class GeneratedCase:
    """A generated catalog plus the provenance needed to re-create it."""

    master_seed: int
    case_id: int
    case_seed: int
    bug: str
    resources: List[ResourceSpec] = field(default_factory=list)

    @property
    def name(self) -> str:
        return f"fuzz-{self.master_seed}-{self.case_id}"

    def to_manifest(self) -> ast.Manifest:
        """Build the Puppet AST (unparsed via
        :func:`repro.puppet.printer.print_manifest`)."""
        statements = []
        for spec in self.resources:
            attrs = [
                ast.AttributeDef(name=k, value=_value_expr(v))
                for k, v in spec.attributes
            ]
            for req in spec.requires:
                target = self.resources[req]
                attrs.append(
                    ast.AttributeDef(
                        name="require",
                        value=ast.ResourceRefExpr(
                            rtype=_ref_type(target.rtype),
                            titles=(ast.Literal(target.title),),
                        ),
                    )
                )
            statements.append(
                ast.ResourceDecl(
                    rtype=spec.rtype,
                    bodies=(
                        ast.ResourceBody(
                            title=ast.Literal(spec.title),
                            attributes=tuple(attrs),
                        ),
                    ),
                )
            )
        return ast.Manifest(statements=tuple(statements))

    @property
    def source(self) -> str:
        return print_manifest(self.to_manifest()) + "\n"

    def to_dict(self) -> dict:
        return {
            "master_seed": self.master_seed,
            "case_id": self.case_id,
            "case_seed": self.case_seed,
            "bug": self.bug,
            "resources": [spec.to_dict() for spec in self.resources],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GeneratedCase":
        return cls(
            master_seed=int(data["master_seed"]),
            case_id=int(data["case_id"]),
            case_seed=int(data["case_seed"]),
            bug=str(data["bug"]),
            resources=[
                ResourceSpec.from_dict(d) for d in data["resources"]
            ],
        )


@dataclass(frozen=True)
class GeneratorConfig:
    """Tunable knobs; the defaults balance racy and clean catalogs."""

    min_resources: int = 2
    #: Hard cap 7: the oracle enumerates every topological order.
    max_resources: int = 6
    edge_density: float = 0.25
    path_contention: float = 0.35
    bug_weights: Tuple[Tuple[str, int], ...] = tuple(
        sorted(_DEFAULT_BUG_WEIGHTS.items())
    )

    def __post_init__(self):
        if not 1 <= self.min_resources <= self.max_resources <= 7:
            raise ValueError(
                "need 1 <= min_resources <= max_resources <= 7 "
                "(the oracle enumerates all topological orders)"
            )
        unknown = {name for name, _ in self.bug_weights} - set(BUG_CLASSES)
        if unknown:
            raise ValueError(f"unknown bug classes: {sorted(unknown)}")


def case_seed(master_seed: int, case_id: int) -> int:
    """The per-case seed: a stable mix of master seed and case index
    (``random.Random`` would correlate adjacent integer seeds)."""
    return (master_seed * 1_000_003 + case_id * 7_919 + 17) % (2**32)


class CaseGenerator:
    """Deterministic stream of :class:`GeneratedCase` values."""

    def __init__(
        self, master_seed: int, config: Optional[GeneratorConfig] = None
    ):
        self.master_seed = master_seed
        self.config = config or GeneratorConfig()
        self._db = default_database()

    def generate(self, case_id: int) -> GeneratedCase:
        """The ``case_id``-th case of this seed's stream — pure, so any
        case is addressable without generating its predecessors."""
        seed = case_seed(self.master_seed, case_id)
        rng = random.Random(seed)
        bug = self._pick_bug(rng)
        case = GeneratedCase(
            master_seed=self.master_seed,
            case_id=case_id,
            case_seed=seed,
            bug=bug,
        )
        budget = rng.randint(
            self.config.min_resources, self.config.max_resources
        )
        builder = _CaseBuilder(rng, self.config, self._db)
        builder.build(budget, bug)
        case.resources = builder.resources
        return case

    def cases(self, count: int, start: int = 0):
        for case_id in range(start, start + count):
            yield self.generate(case_id)

    def _pick_bug(self, rng: random.Random) -> str:
        names = [name for name, _ in self.config.bug_weights]
        weights = [weight for _, weight in self.config.bug_weights]
        return rng.choices(names, weights=weights, k=1)[0]


class _CaseBuilder:
    """Accumulates ResourceSpecs for one case."""

    def __init__(self, rng, config, db):
        self.rng = rng
        self.config = config
        self.db = db
        self.resources: List[ResourceSpec] = []
        self._used_paths: List[str] = []
        self._used_titles: set = set()
        #: Pairs of resource indices that must stay unordered (the
        #: injected racing pair); random edges respect this.
        self._keep_unordered: List[Tuple[int, int]] = []

    # -- top level ---------------------------------------------------------

    def build(self, budget: int, bug: str) -> None:
        bug_spent = self._inject_bug(bug)
        for _ in range(max(0, budget - bug_spent)):
            self._add_random_resource()
        self._add_random_edges()

    # -- bug injection -----------------------------------------------------

    def _inject_bug(self, bug: str) -> int:
        """Append the bug's resource pair; returns how many resources
        it spent from the budget."""
        if bug == "shared-write":
            path = self._fresh_path()
            a = self._add_file(
                path, ensure="file", content=_CONTENT_POOL[0]
            )
            b = self._add_file(
                path, ensure="file", content=_CONTENT_POOL[1]
            )
            self._keep_unordered.append((a, b))
            return 2
        if bug == "absent-vs-present":
            path = self._fresh_path()
            a = self._add_file(
                path, ensure="file", content=_CONTENT_POOL[0]
            )
            b = self._add_file(path, ensure="absent")
            self._keep_unordered.append((a, b))
            return 2
        if bug == "missing-pkg-dep":
            pkg = self.rng.choice(_PACKAGE_POOL)
            owned = sorted(str(p) for p in self.db.lookup(pkg).file_paths())
            path = self.rng.choice(owned)
            a = self._add("package", pkg, ensure="installed")
            b = self._add_file(
                path,
                ensure="file",
                content=self.rng.choice(_CONTENT_POOL),
            )
            self._keep_unordered.append((a, b))
            return 2
        if bug == "ssh-before-user":
            user = self.rng.choice(_USER_POOL)
            a = self._add(
                "user", user, ensure="present", managehome=True
            )
            b = self._add(
                "ssh_authorized_key",
                f"{user}-key",
                user=user,
                key=f"AAAA{user}",
            )
            self._keep_unordered.append((a, b))
            return 2
        return 0  # clean

    # -- random resources --------------------------------------------------

    def _add_random_resource(self) -> None:
        kind = self.rng.choice(
            (
                "file",
                "file",  # files twice: they drive contention
                "package",
                "service",
                "user",
                "group",
                "cron",
                "ssh_authorized_key",
                "host",
            )
        )
        getattr(self, f"_random_{kind}")()

    def _random_file(self) -> None:
        contend = (
            self._used_paths
            and self.rng.random() < self.config.path_contention
        )
        path = (
            self.rng.choice(self._used_paths)
            if contend
            else self._fresh_path()
        )
        roll = self.rng.random()
        if roll < 0.15:
            self._add_file(path, ensure="absent")
        elif roll < 0.3:
            directory = self._fresh_dir()
            if ("file", directory) not in self._used_titles:
                self._add("file", directory, ensure="directory")
            else:
                self._add_file(
                    path,
                    ensure="file",
                    content=self.rng.choice(_CONTENT_POOL),
                )
        else:
            self._add_file(
                path,
                ensure="file",
                content=self.rng.choice(_CONTENT_POOL),
            )

    def _random_package(self) -> None:
        name = self.rng.choice(_PACKAGE_POOL)
        ensure = "installed" if self.rng.random() < 0.85 else "absent"
        self._add("package", name, ensure=ensure)

    def _random_service(self) -> None:
        name = self.rng.choice(_SERVICE_POOL)
        attrs = {"ensure": self.rng.choice(("running", "stopped"))}
        if self.rng.random() < 0.5:
            attrs["enable"] = self.rng.random() < 0.8
        self._add("service", name, **attrs)

    def _random_user(self) -> None:
        name = self.rng.choice(_USER_POOL)
        self._add(
            "user",
            name,
            ensure="present" if self.rng.random() < 0.85 else "absent",
            managehome=self.rng.random() < 0.5,
        )

    def _random_group(self) -> None:
        self._add(
            "group",
            self.rng.choice(_GROUP_POOL),
            ensure="present" if self.rng.random() < 0.85 else "absent",
        )

    def _random_cron(self) -> None:
        job = self.rng.choice(_CRON_POOL)
        self._add(
            "cron",
            job,
            command=f"/usr/bin/{job}",
            minute=str(self.rng.randint(0, 59)),
            user=self.rng.choice(_USER_POOL),
        )

    def _random_ssh_authorized_key(self) -> None:
        user = self.rng.choice(_USER_POOL)
        self._add(
            "ssh_authorized_key",
            f"{user}-key",
            user=user,
            key=f"AAAA{user}",
        )

    def _random_host(self) -> None:
        name = self.rng.choice(_HOST_POOL)
        self._add(
            "host", name, ip=f"192.168.0.{self.rng.randint(1, 20)}"
        )

    # -- plumbing ----------------------------------------------------------

    def _add_file(self, path: str, **attributes) -> int:
        """Append a file resource targeting ``path``.  Contending
        writers need unique titles (Puppet rejects duplicate
        declarations), so later writers get a synthetic title plus an
        explicit ``path`` attribute."""
        if ("file", path) in self._used_titles:
            suffix = 2
            while ("file", f"{path}#{suffix}") in self._used_titles:
                suffix += 1
            attributes["path"] = path
            return self._add("file", f"{path}#{suffix}", **attributes)
        return self._add("file", path, **attributes)

    def _add(self, rtype: str, title: str, **attributes) -> int:
        """Append a spec, uniquifying duplicate (type, title) pairs —
        Puppet rejects duplicate resource declarations."""
        key = (rtype, title)
        if key in self._used_titles:
            suffix = 2
            while (rtype, f"{title}-{suffix}") in self._used_titles:
                suffix += 1
            title = f"{title}-{suffix}"
            key = (rtype, title)
        self._used_titles.add(key)
        if rtype == "file" and attributes.get("ensure") != "directory":
            self._used_paths.append(attributes.get("path", title))
        attrs = tuple(sorted(attributes.items()))
        self.resources.append(
            ResourceSpec(rtype=rtype, title=title, attributes=attrs)
        )
        return len(self.resources) - 1

    def _fresh_path(self) -> str:
        base = self.rng.choice(_SHARED_DIRS)
        for _ in range(64):
            path = f"{base}/f{self.rng.randint(0, 9)}.conf"
            if path not in self._used_paths:
                return path
        return f"{base}/f{len(self._used_paths)}x.conf"

    def _fresh_dir(self) -> str:
        return self.rng.choice(_SHARED_DIRS)

    def _add_random_edges(self) -> None:
        """Forward dependency edges (j requires i for i < j) at
        ``edge_density``.  The working edge set starts from the
        catalog's *implied* file auto-require edges (a file depends on
        the resource managing its parent directory), so a random edge
        can neither close a cycle through them — not even transitively
        via intermediate resources — nor order an injected racing
        pair."""
        n = len(self.resources)
        edges = self._auto_require_edges()
        requires: Dict[int, List[int]] = {j: [] for j in range(n)}
        for j in range(1, n):
            for i in range(j):
                if self.rng.random() >= self.config.edge_density:
                    continue
                if self._reaches(edges, j, i):
                    continue  # i -> j would close a cycle
                candidate = edges + [(i, j)]
                if self._keep_unordered and self._orders_kept_pair(
                    candidate
                ):
                    continue
                requires[j].append(i)
                edges = candidate
        for j, deps in requires.items():
            if deps:
                self.resources[j] = replace(
                    self.resources[j], requires=tuple(deps)
                )

    def _auto_require_edges(self) -> List[Tuple[int, int]]:
        """The dir -> child edges the catalog will infer: for every
        file resource whose path's direct parent is managed by a file
        resource, an edge parent-manager -> child.  (For contending
        writers of one path the catalog connects only one of them;
        including all of them here merely over-restricts the random
        edges, never under.)"""

        def managed_path(spec: ResourceSpec) -> Optional[str]:
            if spec.rtype != "file":
                return None
            return str(dict(spec.attributes).get("path", spec.title))

        by_path: Dict[str, List[int]] = {}
        for index, spec in enumerate(self.resources):
            path = managed_path(spec)
            if path is not None:
                by_path.setdefault(path, []).append(index)
        edges: List[Tuple[int, int]] = []
        for path, children in by_path.items():
            parent = path.rsplit("/", 1)[0]
            for parent_index in by_path.get(parent, ()):
                for child_index in children:
                    if parent_index != child_index:
                        edges.append((parent_index, child_index))
        return edges

    @staticmethod
    def _reaches(
        edges: List[Tuple[int, int]], src: int, dst: int
    ) -> bool:
        adjacency: Dict[int, List[int]] = {}
        for a, b in edges:
            adjacency.setdefault(a, []).append(b)
        stack = [src]
        seen = set()
        while stack:
            node = stack.pop()
            if node == dst:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(adjacency.get(node, ()))
        return False

    def _orders_kept_pair(self, edges: List[Tuple[int, int]]) -> bool:
        """Would this edge set (random + implied) create a path
        between a kept-unordered (injected racing) pair?"""
        return any(
            self._reaches(edges, a, b) or self._reaches(edges, b, a)
            for a, b in self._keep_unordered
        )


def _ref_type(rtype: str) -> str:
    """``ssh_authorized_key`` → ``Ssh_authorized_key`` (Puppet
    reference casing: first letter only)."""
    return rtype[:1].upper() + rtype[1:]


def _value_expr(value: object) -> ast.Expr:
    if isinstance(value, bool) or value is None:
        return ast.Literal(value=value)
    if isinstance(value, (int, float)):
        return ast.Literal(value=value)
    return ast.Literal(value=str(value))
