#!/usr/bin/env python3
"""Automatic dependency repair — the paper's §9 "manifest repair".

The §6 evaluation found six real configurations with missing
dependencies; their authors fixed each by adding an ordering edge by
hand.  This example runs the repair synthesizer over all six buggy
benchmarks and shows that it rediscovers those fixes automatically:
a small set of edges that (a) makes the manifest deterministic and
(b) keeps it succeeding from the empty machine.

Run:  python examples/manifest_repair.py
"""

from repro import Rehearsal
from repro.analysis import check_determinism, synthesize_repair
from repro.corpus import CASES, NONDET_NAMES, load_source


def main() -> None:
    tool = Rehearsal()
    for name in NONDET_NAMES:
        case = CASES[name]
        print(f"=== {name} ===")
        print(f"bug: {case.bug}")
        graph, programs = tool.compile(load_source(name))
        before = check_determinism(graph, programs)
        assert not before.deterministic
        result = synthesize_repair(graph, programs, max_edges=4)
        if not result.success:
            print("  no repair found within budget\n")
            continue
        print(f"  proposed fix ({result.checks_performed} analysis runs):")
        for src, dst in result.added_edges:
            print(f"    {src} -> {dst}")
        repaired = graph.copy()
        repaired.add_edges_from(result.added_edges)
        verify = check_determinism(repaired, programs)
        print(f"  re-verified deterministic: {verify.deterministic}")
        print()


if __name__ == "__main__":
    main()
