"""The batch-verification service.

:class:`BatchVerifier` takes a fleet of manifests (a directory, a list
of paths, or in-memory sources), consults the content-addressed
verdict cache, fans the misses out to a ``ProcessPoolExecutor`` pool of
workers each running the full :class:`repro.Rehearsal` pipeline, and
aggregates everything into a :class:`repro.service.schema.BatchReport`.

Isolation guarantees:

* a manifest that fails to compile or analyze reports ``status:
  "error"`` for itself only;
* a worker process that dies outright (OOM kill, segfault, ``os._exit``
  in a resource model) breaks its pool, but the orchestrator retries
  every manifest the broken pool lost in a fresh single-worker pool, so
  one bad manifest costs one error row — never the batch.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro import __version__
from repro.analysis.determinism import DeterminismOptions
from repro.sat.backend import backend_label
from repro.service.cache import VerdictCache, cache_key, source_digest
from repro.service.schema import (
    BatchReport,
    CacheStats,
    ManifestResult,
)

PathLike = Union[str, os.PathLike]

#: Error prefix marking circumstantial failures (a tool bug, memory
#: pressure) as opposed to verdicts that are a pure function of the
#: manifest — these are never cached.
_INTERNAL_FAILURE = "internal failure:"


def discover_manifests(target: PathLike, pattern: str = "*.pp") -> List[Path]:
    """Every manifest under ``target``: a file is itself, a directory
    is searched recursively and sorted for a deterministic batch
    order."""
    path = Path(target)
    if path.is_dir():
        return sorted(path.rglob(pattern))
    if path.is_file():
        return [path]
    raise FileNotFoundError(f"no manifest file or directory at {path}")


@dataclass(frozen=True)
class _UnreadableSource:
    """Placeholder for a manifest whose file could not be read; turns
    into an error row instead of sinking the batch."""

    message: str


@dataclass(frozen=True)
class _Job:
    """One unit of worker input; everything here must pickle."""

    name: str
    source: str
    sha256: str
    key: str
    options: DeterminismOptions
    platform: str
    node_name: str
    synthesize_packages: bool
    package_semantics: str


def _verify_one(job: _Job) -> dict:
    """Worker body: run the full pipeline on one manifest.

    Runs in a pool process (or in-process for serial batches); always
    returns a :class:`ManifestResult` dict, converting any exception —
    the pipeline catches ``ReproError`` itself, so anything arriving
    here is an internal failure worth surfacing verbatim.
    """
    from repro.core.pipeline import Rehearsal
    from repro.resources.compiler import ModelContext
    from repro.resources.package_db import PackageDatabase

    try:
        context = ModelContext(
            package_db=PackageDatabase(synthesize=job.synthesize_packages),
            platform=job.platform,
            package_semantics=job.package_semantics,
        )
        tool = Rehearsal(
            context=context, options=job.options, node_name=job.node_name
        )
        report = tool.verify(job.source, name=job.name)
        result = ManifestResult.from_report(
            report, sha256=job.sha256, cache_key=job.key
        )
        result.solver_backend = backend_label(
            solver=job.options.solver,
            portfolio=job.options.portfolio,
            solver_workers=job.options.solver_workers,
        )
        try:
            from repro.analysis.lint import LintOptions, lint_source

            result.lint = lint_source(
                job.source,
                name=job.name,
                options=LintOptions(),
                context=context,
                node_name=job.node_name,
            ).to_dict()
        except KeyboardInterrupt:
            raise
        except BaseException:
            # Lint is advisory in a batch row: a linter crash must
            # never cost the verification verdict.
            result.lint = None
    except KeyboardInterrupt:
        raise
    except BaseException as exc:
        # BaseException on purpose: a stray sys.exit() in a resource
        # model must become an error row, not kill the worker (or, on
        # the serial path, the orchestrator itself).
        result = ManifestResult(
            name=job.name,
            status="error",
            error=f"{_INTERNAL_FAILURE} {type(exc).__name__}: {exc}",
            sha256=job.sha256,
            cache_key=job.key,
            solver_backend=backend_label(
                solver=job.options.solver,
                portfolio=job.options.portfolio,
                solver_workers=job.options.solver_workers,
            ),
        )
    return result.to_dict()


class BatchVerifier:
    """Verify a fleet of manifests, in parallel, through the cache.

    ``workers=1`` runs serially in-process (no pool overhead);
    ``workers=N`` fans out to N processes.  Pass ``cache=None`` to
    disable caching entirely.
    """

    def __init__(
        self,
        options: Optional[DeterminismOptions] = None,
        platform: str = "ubuntu",
        node_name: str = "default",
        synthesize_packages: bool = True,
        package_semantics: str = "direct",
        workers: int = 1,
        cache: Optional[VerdictCache] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.options = options or DeterminismOptions()
        self.platform = platform
        self.node_name = node_name
        self.synthesize_packages = synthesize_packages
        self.package_semantics = package_semantics
        self.workers = workers
        self.cache = cache

    # -- entry points ------------------------------------------------------

    def verify_directory(self, directory: PathLike) -> BatchReport:
        return self.verify_paths(discover_manifests(directory))

    def verify_paths(self, paths: Iterable[PathLike]) -> BatchReport:
        named = []
        for p in paths:
            try:
                source = Path(p).read_text(encoding="utf8")
            except (OSError, UnicodeDecodeError) as exc:
                source = _UnreadableSource(
                    f"cannot read manifest: {type(exc).__name__}: {exc}"
                )
            named.append((str(p), source))
        return self.verify_sources(named)

    def verify_sources(
        self, sources: Union[Mapping[str, str], Sequence[Tuple[str, str]]]
    ) -> BatchReport:
        """Verify named manifest sources; the report preserves order."""
        items = (
            list(sources.items())
            if isinstance(sources, Mapping)
            else list(sources)
        )
        start = time.perf_counter()
        counters0 = self._cache_counters()

        results: Dict[int, ManifestResult] = {}
        by_key: Dict[str, List[Tuple[int, _Job]]] = {}
        for index, (name, source) in enumerate(items):
            if isinstance(source, _UnreadableSource):
                results[index] = ManifestResult(
                    name=name, status="error", error=source.message
                )
                continue
            job = self._make_job(name, source)
            hit = self._lookup(job)
            if hit is not None:
                results[index] = hit
            else:
                by_key.setdefault(job.key, []).append((index, job))

        if by_key:
            # Content-addressed dedup within the batch too: identical
            # sources (a fleet of hosts sharing one template) are
            # verified once; duplicate rows copy the verdict.
            unique = [group[0] for group in by_key.values()]
            ran = dict(self._run_jobs(unique))
            for group in by_key.values():
                first_index, _ = group[0]
                result = ran[first_index]
                results[first_index] = result
                for dup_index, dup_job in group[1:]:
                    results[dup_index] = replace(
                        result,
                        name=dup_job.name,
                        seconds=0.0,
                        solver_seconds=0.0,
                        deduplicated=True,
                    )

        counters1 = self._cache_counters()
        deltas = {
            name: counters1[name] - counters0[name] for name in counters1
        }
        report = BatchReport(
            results=[results[i] for i in range(len(items))],
            workers=self.workers,
            total_seconds=time.perf_counter() - start,
            cache=CacheStats(
                enabled=self.cache is not None,
                directory=(
                    str(self.cache.directory) if self.cache else None
                ),
                **deltas,
            ),
            version=__version__,
            platform=self.platform,
        )
        return report

    # -- cache plumbing ----------------------------------------------------

    def _make_job(self, name: str, source: str) -> _Job:
        return _Job(
            name=name,
            source=source,
            sha256=source_digest(source),
            key=cache_key(
                source,
                options=self.options,
                platform=self.platform,
                node_name=self.node_name,
                synthesize_packages=self.synthesize_packages,
                package_semantics=self.package_semantics,
            ),
            options=self.options,
            platform=self.platform,
            node_name=self.node_name,
            synthesize_packages=self.synthesize_packages,
            package_semantics=self.package_semantics,
        )

    def _cache_counters(self) -> Dict[str, int]:
        if self.cache is None:
            return {
                "hits": 0,
                "misses": 0,
                "corrupted": 0,
                "read_errors": 0,
                "write_errors": 0,
            }
        return {
            "hits": self.cache.hits,
            "misses": self.cache.misses,
            "corrupted": self.cache.corrupted,
            "read_errors": self.cache.read_errors,
            "write_errors": self.cache.write_errors,
        }

    def _lookup(self, job: _Job) -> Optional[ManifestResult]:
        if self.cache is None:
            return None
        lookup_start = time.perf_counter()
        stored = self.cache.get(job.key)
        if stored is None:
            return None
        # The key is content-addressed, so a hit may have been computed
        # under another path name; re-label it and zero the timings —
        # this run spent a lookup, not a solve.
        return replace(
            stored,
            name=job.name,
            cached=True,
            seconds=time.perf_counter() - lookup_start,
            solver_seconds=0.0,
        )

    def _store(self, job: _Job, result: ManifestResult) -> None:
        """Persist a worker-produced verdict.  Compile errors and blown
        exploration budgets are as deterministic as real verdicts and
        cache fine; circumstantial failures — internal errors, dead
        workers, wall-clock timeouts — are not a function of the
        manifest and must be retried on the next run."""
        if self.cache is None:
            return
        if result.error_transient:
            return
        if result.error is not None and result.error.startswith(
            _INTERNAL_FAILURE
        ):
            return
        self.cache.put(job.key, result)

    # -- execution ---------------------------------------------------------

    def _run_jobs(
        self, jobs: List[Tuple[int, _Job]]
    ) -> List[Tuple[int, ManifestResult]]:
        # Serial mode runs in-process by design (no pool overhead, at
        # the documented cost of no crash isolation).  A parallel
        # verifier keeps the pool even for a single miss — a crashing
        # manifest must never take the orchestrator down with it.
        if self.workers == 1:
            out = []
            for index, job in jobs:
                result = ManifestResult.from_dict(_verify_one(job))
                self._store(job, result)
                out.append((index, result))
            return out
        return self._run_parallel(jobs)

    def _run_parallel(
        self, jobs: List[Tuple[int, _Job]]
    ) -> List[Tuple[int, ManifestResult]]:
        out, casualties = self._run_pool(jobs)
        if casualties:
            # A broken pool fails *every* outstanding future, so most
            # casualties are innocent bystanders of one crash.  Retry
            # them together in one fresh pool at full width; only the
            # second-time failures — the actual crashers — pay the
            # one-job-per-pool quarantine.
            retried, still_failing = self._run_pool(casualties)
            out.extend(retried)
            for index, job in still_failing:
                out.append((index, self._run_quarantined(job)))
        return out

    def _run_pool(
        self, jobs: List[Tuple[int, _Job]]
    ) -> Tuple[
        List[Tuple[int, ManifestResult]], List[Tuple[int, _Job]]
    ]:
        """One pool pass: (completed results, failed jobs)."""
        out: List[Tuple[int, ManifestResult]] = []
        casualties: List[Tuple[int, _Job]] = []
        max_workers = min(self.workers, len(jobs))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {}
            for index, job in jobs:
                try:
                    futures[pool.submit(_verify_one, job)] = (index, job)
                except KeyboardInterrupt:
                    raise
                except BaseException:
                    # A worker crash can break the pool while we are
                    # still submitting; every later submit then raises
                    # too.  Each unsubmitted job is just a casualty.
                    casualties.append((index, job))
            for future in as_completed(futures):
                index, job = futures[future]
                try:
                    result = ManifestResult.from_dict(future.result())
                except KeyboardInterrupt:
                    raise
                except BaseException:
                    # The worker died, or its result failed to cross
                    # the process boundary.
                    casualties.append((index, job))
                    continue
                self._store(job, result)
                out.append((index, result))
        return out, casualties

    def _run_quarantined(self, job: _Job) -> ManifestResult:
        """Re-run one manifest in a fresh single-worker pool, so a
        genuinely crashing manifest takes down only its own private
        pool and reports an error row; innocent bystanders of an
        earlier pool breakage verify normally."""
        try:
            with ProcessPoolExecutor(max_workers=1) as pool:
                result = ManifestResult.from_dict(
                    pool.submit(_verify_one, job).result()
                )
        except KeyboardInterrupt:
            raise
        except BaseException as exc:
            return ManifestResult.crashed(
                job.name,
                f"worker process died while verifying this manifest "
                f"({type(exc).__name__}: {exc})",
            )
        self._store(job, result)
        return result


def verify_batch(
    target: Union[PathLike, Iterable[PathLike]],
    workers: int = 1,
    options: Optional[DeterminismOptions] = None,
    platform: str = "ubuntu",
    node_name: str = "default",
    cache_dir: Optional[PathLike] = None,
    use_cache: bool = True,
    synthesize_packages: bool = True,
    package_semantics: str = "direct",
) -> BatchReport:
    """One-call batch verification.

    ``target`` may be a directory, a single manifest path, or an
    iterable of paths.  See :class:`BatchVerifier` for the knobs.
    """
    cache = VerdictCache(cache_dir) if use_cache else None
    verifier = BatchVerifier(
        options=options,
        platform=platform,
        node_name=node_name,
        synthesize_packages=synthesize_packages,
        package_semantics=package_semantics,
        workers=workers,
        cache=cache,
    )
    if isinstance(target, (str, os.PathLike)):
        paths = discover_manifests(target)
    else:
        paths = [Path(p) for p in target]
    return verifier.verify_paths(paths)
