"""The concrete interleaving oracle: ground truth by brute force.

The symbolic pipeline decides determinism/idempotence by encoding the
reachable-state DAG into SAT.  This module answers the same questions
*concretely*, using only the reference semantics of the FS language
(:func:`repro.fs.semantics.eval_expr` — paper Fig. 5) and plain Python
data structures: enumerate every topological order of the resource
graph over a family of concrete initial filesystems and compare final
states by value.  No term banks, no fingerprints, no solver — the
point is that a bug in the symbolic stack cannot also blind the
oracle.

Scope and limits (also in ``docs/fuzzing.md``):

* catalogs with more than :data:`MAX_ORACLE_RESOURCES` resources are
  skipped (order enumeration is factorial; the exploration deduplicates
  identical *concrete* states — dict-equality of path maps, which is
  trivially sound — but stays bounded);
* determinism is judged over a *sampled* family of well-formed initial
  filesystems derived from the catalog's own footprint, so the oracle's
  "deterministic" is one-sided: it can refute the pipeline's
  "deterministic" verdict (a concrete divergence is undeniable) but
  never prove it.  The differential driver therefore only flags
  *disagreements the oracle can witness concretely*;
* racing pairs are ground-truthed by adjacent transposition: ``(a, b)``
  races on σ iff they are unordered in the graph and swapping them in
  an order where they run back-to-back changes the outcome on σ.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.fs import syntax as fx
from repro.fs.filesystem import DIR, FileContent, FileSystem
from repro.fs.paths import Path
from repro.fs.semantics import ERROR, eval_expr

NodeId = Hashable

#: The oracle enumerates every topological order; beyond this many
#: resources it abstains instead of guessing.
MAX_ORACLE_RESOURCES = 7

#: Content a generated manifest never writes — stands in for "the path
#: already holds something else entirely" in sampled initial states.
FOREIGN_CONTENT = "~oracle-foreign~"


@dataclass
class RacingPair:
    """Ground truth for one racing resource pair on one initial state:
    swapping ``a`` and ``b`` back-to-back changes the outcome."""

    a: str
    b: str
    #: Paths whose final content differs between the two outcomes
    #: (empty when the divergence is purely an error-status change).
    paths: Tuple[str, ...] = ()
    ok_divergence: bool = False

    @property
    def key(self) -> Tuple[str, str]:
        return tuple(sorted((self.a, self.b)))


@dataclass
class OracleDivergence:
    """A concrete non-determinism witness."""

    initial: FileSystem
    order_a: List[NodeId]
    order_b: List[NodeId]
    outcome_a: object  # FileSystem or ERROR
    outcome_b: object


@dataclass
class OracleReport:
    """What the oracle established for one catalog."""

    skipped: bool = False
    skip_reason: Optional[str] = None
    #: False — a concrete divergence exists (decisive).  True — none
    #: found over the family (one-sided).  None — skipped.
    deterministic: Optional[bool] = None
    #: Same one-sidedness; None when non-deterministic or skipped.
    idempotent: Optional[bool] = None
    divergence: Optional[OracleDivergence] = None
    #: Non-idempotence witness: (initial, once, twice).
    idempotence_witness: Optional[tuple] = None
    racing: List[RacingPair] = field(default_factory=list)
    states_tried: int = 0
    evaluations: int = 0


class OracleBudgetExceeded(Exception):
    """Internal: concrete exploration blew the evaluation cap."""


def run_oracle(
    graph: "nx.DiGraph",
    programs: Dict[NodeId, fx.Expr],
    extra_states: Sequence[FileSystem] = (),
    max_states: int = 24,
    max_evaluations: int = 50_000,
    seed: int = 0,
) -> OracleReport:
    """Decide determinism/idempotence concretely; see module docstring.

    ``extra_states`` lets the caller force specific initial filesystems
    into the family — the differential driver passes the pipeline's
    SAT witness so a claimed divergence is always replayed.
    """
    report = OracleReport()
    nodes = list(graph.nodes)
    if len(nodes) > MAX_ORACLE_RESOURCES:
        report.skipped = True
        report.skip_reason = (
            f"{len(nodes)} resources exceed the oracle cap of "
            f"{MAX_ORACLE_RESOURCES}"
        )
        return report

    states = list(extra_states) + initial_state_family(
        programs.values(), max_states=max_states, seed=seed
    )
    # Deduplicate while preserving order (extra states first).
    seen: Set[FileSystem] = set()
    family: List[FileSystem] = []
    for fs in states:
        if fs not in seen:
            seen.add(fs)
            family.append(fs)

    budget = _Budget(max_evaluations)
    try:
        for initial in family:
            report.states_tried += 1
            finals = _explore(graph, programs, initial, budget)
            if len(finals) > 1:
                (out_a, order_a), (out_b, order_b) = _pick_diverging(
                    finals
                )
                report.deterministic = False
                report.divergence = OracleDivergence(
                    initial=initial,
                    order_a=order_a,
                    order_b=order_b,
                    outcome_a=out_a,
                    outcome_b=out_b,
                )
                break
        else:
            report.deterministic = True
    except OracleBudgetExceeded:
        # No divergence was found before the budget ran out: the
        # verdict is genuinely unknown.
        report.skipped = True
        report.skip_reason = (
            f"exceeded {max_evaluations} concrete evaluations"
        )
        report.evaluations = budget.spent
        return report

    if report.deterministic is False:
        # The divergence is decisive regardless of what the follow-up
        # work can afford: racing-pair attribution runs under its own
        # budget and degrades to "unattributed", never to a skip.
        try:
            report.racing = racing_pairs(
                graph,
                programs,
                report.divergence.initial,
                _Budget(max_evaluations),
            )
        except OracleBudgetExceeded:
            report.racing = []
    else:
        try:
            report.idempotent = True
            for initial in family:
                verdict = _idempotent_on(graph, programs, initial, budget)
                if verdict is not None:
                    report.idempotent = False
                    report.idempotence_witness = verdict
                    break
        except OracleBudgetExceeded:
            # Determinism stands; only the idempotence question ran
            # out of budget.
            report.idempotent = None
    report.evaluations = budget.spent
    return report


def racing_pairs(
    graph: "nx.DiGraph",
    programs: Dict[NodeId, fx.Expr],
    initial: FileSystem,
    budget: Optional["_Budget"] = None,
) -> List[RacingPair]:
    """Every unordered pair ``(a, b)`` that concretely races from
    ``initial``: at some reachable intermediate state where both are
    schedulable, ``a;b`` and ``b;a`` produce different states.

    "Reachable intermediate state" walks the same deduplicated
    concrete-state DAG as the determinism check, so a pair that only
    races after some other resource has run (e.g. by creating the
    directory both then fight over) is still found.
    """
    budget = budget or _Budget(50_000)
    predecessors = {n: frozenset(graph.predecessors(n)) for n in graph}
    found: Dict[Tuple[str, str], RacingPair] = {}
    root = frozenset(graph.nodes)
    seen: Set[Tuple[frozenset, FileSystem]] = {(root, initial)}
    stack: List[Tuple[frozenset, FileSystem]] = [(root, initial)]
    while stack:
        remaining, state, = stack.pop()
        fringe = sorted(
            (n for n in remaining if not (predecessors[n] & remaining)),
            key=str,
        )
        # One evaluation per fringe resource per state, reused for
        # every pair comparison and for the expansion below.
        after = {}
        for n in fringe:
            budget.charge()
            after[n] = eval_expr(programs[n], state)
        for i, a in enumerate(fringe):
            for b in fringe[i + 1 :]:
                key = (str(a), str(b))
                if key in found:
                    continue
                budget.charge()
                out_ab = (
                    ERROR
                    if after[a] is ERROR
                    else eval_expr(programs[b], after[a])
                )
                out_ba = (
                    ERROR
                    if after[b] is ERROR
                    else eval_expr(programs[a], after[b])
                )
                if out_ab != out_ba:
                    found[key] = RacingPair(
                        a=str(a),
                        b=str(b),
                        paths=_outcome_diff(out_ab, out_ba),
                        ok_divergence=(out_ab is ERROR)
                        != (out_ba is ERROR),
                    )
            if after[a] is not ERROR:
                nxt = (remaining - {a}, after[a])
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
    return sorted(found.values(), key=lambda r: (r.a, r.b))


# -- concrete exploration -----------------------------------------------------


class _Budget:
    __slots__ = ("spent", "limit")

    def __init__(self, limit: int):
        self.spent = 0
        self.limit = limit

    def charge(self) -> None:
        self.spent += 1
        if self.spent > self.limit:
            raise OracleBudgetExceeded()


def _explore(
    graph: "nx.DiGraph",
    programs: Dict[NodeId, fx.Expr],
    initial: FileSystem,
    budget: _Budget,
) -> Dict[object, List[NodeId]]:
    """All final outcomes reachable by topological orders from
    ``initial``, each with one witness order.

    The walk deduplicates on ``(remaining, concrete state)`` — plain
    value equality of path→content maps, which cannot merge genuinely
    different states, so the *set* of reachable finals is exact even
    though only one witness order per final survives.  The error state
    is absorbing (``seq`` short-circuits), so it finalizes immediately.
    """
    predecessors = {n: frozenset(graph.predecessors(n)) for n in graph}
    topo = list(nx.topological_sort(graph))
    finals: Dict[object, List[NodeId]] = {}
    root = frozenset(graph.nodes)
    seen: Set[Tuple[frozenset, FileSystem]] = set()
    stack: List[Tuple[frozenset, FileSystem, Tuple[NodeId, ...]]] = [
        (root, initial, ())
    ]
    while stack:
        remaining, state, order = stack.pop()
        if not remaining:
            finals.setdefault(state, list(order))
            continue
        fringe = sorted(
            (n for n in remaining if not (predecessors[n] & remaining)),
            key=str,
        )
        for n in fringe:
            budget.charge()
            nxt = eval_expr(programs[n], state)
            next_remaining = remaining - {n}
            next_order = order + (n,)
            if nxt is ERROR:
                # Absorbing: every completion of this order errors —
                # complete the witness with any valid linearization.
                finals.setdefault(
                    ERROR,
                    list(next_order)
                    + [m for m in topo if m in next_remaining],
                )
                continue
            key = (next_remaining, nxt)
            if key in seen:
                continue
            seen.add(key)
            stack.append((next_remaining, nxt, next_order))
    return finals


def _run_order(
    programs: Dict[NodeId, fx.Expr],
    order: Sequence[NodeId],
    initial: FileSystem,
    budget: _Budget,
) -> object:
    state: object = initial
    for n in order:
        budget.charge()
        state = eval_expr(programs[n], state)
        if state is ERROR:
            return ERROR
    return state


def _idempotent_on(
    graph: "nx.DiGraph",
    programs: Dict[NodeId, fx.Expr],
    initial: FileSystem,
    budget: _Budget,
) -> Optional[tuple]:
    """None when idempotent on ``initial``; else (initial, once, twice).

    Mirrors the pipeline's ``e ≡ e;e`` check at one state: an erroring
    first run is trivially idempotent (``seq`` short-circuits)."""
    order = list(nx.topological_sort(graph))
    once = _run_order(programs, order, initial, budget)
    if once is ERROR:
        return None
    twice = _run_order(programs, order, once, budget)
    if twice != once:
        return (initial, once, twice)
    return None


def _pick_diverging(finals: Dict[object, List[NodeId]]):
    """Two entries with different outcomes (any two: all entries are
    pairwise different by construction)."""
    items = [(state, order) for state, order in finals.items()]
    return items[0], items[1]


def _outcome_diff(out_a: object, out_b: object) -> Tuple[str, ...]:
    if out_a is ERROR or out_b is ERROR:
        return ()
    assert isinstance(out_a, FileSystem) and isinstance(out_b, FileSystem)
    paths = set(out_a.paths()) | set(out_b.paths())
    return tuple(
        sorted(
            str(p)
            for p in paths
            if out_a.lookup(p) != out_b.lookup(p)
        )
    )


# -- the initial-state family -------------------------------------------------


def footprint_of(programs) -> Tuple[List[Path], Dict[Path, List[str]]]:
    """All paths an expression set touches plus the file contents it
    mentions per path — collected by a self-contained syntax walk
    (deliberately not :class:`repro.smt.values.PathDomains`: the oracle
    shares no code with the symbolic stack it cross-examines)."""
    paths: Set[Path] = set()
    contents: Dict[Path, Set[str]] = {}

    def note(path: Path, content: Optional[str] = None) -> None:
        paths.add(path)
        if content is not None:
            contents.setdefault(path, set()).add(content)

    def walk_pred(pred: fx.Pred) -> None:
        if isinstance(pred, fx.IsFileWith):
            note(pred.path, pred.content)
        elif isinstance(
            pred, (fx.IsNone, fx.IsFile, fx.IsDir, fx.IsEmptyDir)
        ):
            note(pred.path)
        elif isinstance(pred, (fx.PAnd, fx.POr)):
            walk_pred(pred.left)
            walk_pred(pred.right)
        elif isinstance(pred, fx.PNot):
            walk_pred(pred.inner)

    def walk(expr: fx.Expr) -> None:
        if isinstance(expr, fx.Mkdir):
            note(expr.path)
        elif isinstance(expr, fx.Creat):
            note(expr.path, expr.content)
        elif isinstance(expr, fx.Rm):
            note(expr.path)
        elif isinstance(expr, fx.Cp):
            note(expr.src)
            note(expr.dst)
        elif isinstance(expr, fx.Seq):
            walk(expr.first)
            walk(expr.second)
        elif isinstance(expr, fx.If):
            walk_pred(expr.pred)
            walk(expr.then_branch)
            walk(expr.else_branch)

    for program in programs:
        walk(program)
    return (
        sorted(paths),
        {p: sorted(cs) for p, cs in contents.items()},
    )


def initial_state_family(
    programs,
    max_states: int = 24,
    seed: int = 0,
) -> List[FileSystem]:
    """A deterministic family of well-formed initial filesystems biased
    toward the catalog's own footprint:

    1. the empty filesystem (nothing installed);
    2. the *scaffold* — every strict ancestor of a touched path exists
       as a directory, the touched paths themselves absent (parents
       ready, work not yet done);
    3. the *converged* state — scaffold plus every touched path holding
       the first content the catalog mentions for it;
    4. *knockouts* — the scaffold with one ancestor directory (and its
       subtree) removed, one state per ancestor: the states that
       expose parent-directory races ("the key file errors unless the
       user resource created the home directory first") reliably
       instead of sample-luckily;
    5. random samples: each touched path independently absent, a
       directory, or a file with either a mentioned or a foreign
       content, then patched up to be well-formed (ancestors forced to
       directories).
    """
    paths, contents = footprint_of(programs)
    if not paths:
        return [FileSystem.empty()]
    rng = random.Random(seed)

    ancestors: Set[Path] = set()
    for p in paths:
        for anc in p.ancestors():
            if not anc.is_root and anc != p:
                ancestors.add(anc)

    def well_formed(entries: Dict[Path, object]) -> FileSystem:
        fixed = dict(entries)
        for p in list(entries):
            for anc in p.ancestors():
                if not anc.is_root and anc != p:
                    fixed[anc] = DIR
        return FileSystem(fixed)

    family: List[FileSystem] = [FileSystem.empty()]
    scaffold = {p: DIR for p in ancestors}
    family.append(FileSystem(dict(scaffold)))

    converged = dict(scaffold)
    for p in paths:
        if p in converged:
            continue
        known = contents.get(p)
        if known:
            converged[p] = FileContent(known[0])
    family.append(well_formed(converged))

    for knocked in sorted(ancestors):
        if len(family) >= max_states - 3:  # keep room for samples
            break
        family.append(
            FileSystem(
                {
                    p: DIR
                    for p in scaffold
                    if p != knocked and not knocked.is_ancestor_of(p)
                }
            )
        )

    while len(family) < max_states:
        entries: Dict[Path, object] = {}
        for p in paths:
            roll = rng.random()
            if roll < 0.45:
                continue  # absent
            if roll < 0.6:
                entries[p] = DIR
            else:
                pool = contents.get(p, []) + [FOREIGN_CONTENT]
                entries[p] = FileContent(rng.choice(pool))
        family.append(well_formed(entries))
    return family
