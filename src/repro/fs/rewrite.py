"""Semantics-preserving simplification of FS programs.

Compiled resource programs contain many statically decidable tests —
a package's guarded mkdirs re-test directories the previous step just
ensured, file resources re-test paths they wrote.  This module runs a
forward partial evaluation that threads per-path knowledge through the
program, folding decided predicates and collapsing dead branches,
while keeping every write (unlike pruning, which removes them for a
single designated path).

``simplify(e) ≡ e`` for every input filesystem — the property tests
verify this both concretely and via the SAT-backed equivalence check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from repro.fs import syntax as fx
from repro.fs.paths import Path


@dataclass(frozen=True)
class KDir:
    pass


@dataclass(frozen=True)
class KDne:
    pass


@dataclass(frozen=True)
class KFile:
    content: Optional[str]  # None = file with unknown content


@dataclass(frozen=True)
class KExists:
    """The path exists but its kind is unknown (from ``¬none?``)."""


K_DIR = KDir()
K_DNE = KDne()
K_EXISTS = KExists()
Knowledge = Union[KDir, KDne, KFile, KExists]
# Absent from the map = unknown.


def simplify(e: fx.Expr) -> fx.Expr:
    out, _ = _simp(e, {})
    return out


def _simp(
    e: fx.Expr, k: Dict[Path, Knowledge]
) -> Tuple[fx.Expr, Dict[Path, Knowledge]]:
    if isinstance(e, fx.Id):
        return e, k
    if isinstance(e, fx.Err):
        return e, k
    if isinstance(e, fx.Mkdir):
        target = k.get(e.path)
        if isinstance(target, (KDir, KFile, KExists)):
            return fx.ERR, k  # target exists: always fails
        parent = k.get(e.path.parent())
        if not e.path.parent().is_root and isinstance(
            parent, (KDne, KFile)
        ):
            return fx.ERR, k  # parent cannot be a directory
        out = dict(k)
        out[e.path] = K_DIR
        return e, out
    if isinstance(e, fx.Creat):
        target = k.get(e.path)
        if isinstance(target, (KDir, KFile, KExists)):
            return fx.ERR, k
        parent = k.get(e.path.parent())
        if not e.path.parent().is_root and isinstance(
            parent, (KDne, KFile)
        ):
            return fx.ERR, k
        out = dict(k)
        out[e.path] = KFile(e.content)
        return e, out
    if isinstance(e, fx.Rm):
        target = k.get(e.path)
        if isinstance(target, KDne):
            return fx.ERR, k
        out = dict(k)
        out[e.path] = K_DNE
        return e, out
    if isinstance(e, fx.Cp):
        src = k.get(e.src)
        if isinstance(src, (KDne, KDir)):
            return fx.ERR, k
        dst = k.get(e.dst)
        if isinstance(dst, (KDir, KFile, KExists)):
            return fx.ERR, k
        parent = k.get(e.dst.parent())
        if not e.dst.parent().is_root and isinstance(parent, (KDne, KFile)):
            return fx.ERR, k
        out = dict(k)
        if isinstance(src, KFile):
            out[e.dst] = src
        else:
            out[e.dst] = KFile(None)
        return e, out
    if isinstance(e, fx.Seq):
        first, k1 = _simp(e.first, k)
        if isinstance(first, fx.Err):
            return fx.ERR, k
        second, k2 = _simp(e.second, k1)
        if isinstance(second, fx.Err):
            # err absorbs from the right: ⟦e; err⟧σ = err for all σ.
            return fx.ERR, k
        return fx.seq(first, second), k2
    if isinstance(e, fx.If):
        pred = _fold(e.pred, k)
        if isinstance(pred, fx.PTrue):
            return _simp(e.then_branch, k)
        if isinstance(pred, fx.PFalse):
            return _simp(e.else_branch, k)
        then_e, k1 = _simp(e.then_branch, _refine(k, pred, True))
        else_e, k2 = _simp(e.else_branch, _refine(k, pred, False))
        merged = {
            p: v for p, v in k1.items() if k2.get(p) == v
        }
        # An always-erroring branch imposes no knowledge on the join.
        if isinstance(then_e, fx.Err):
            merged = k2
        elif isinstance(else_e, fx.Err):
            merged = k1
        return fx.ite(pred, then_e, else_e), merged
    raise TypeError(f"unknown expression: {e!r}")


def _fold(pred: fx.Pred, k: Dict[Path, Knowledge]) -> fx.Pred:
    if isinstance(pred, (fx.PTrue, fx.PFalse)):
        return pred
    if isinstance(pred, fx.PNot):
        return fx.pnot(_fold(pred.inner, k))
    if isinstance(pred, fx.PAnd):
        return fx.pand(_fold(pred.left, k), _fold(pred.right, k))
    if isinstance(pred, fx.POr):
        return fx.por(_fold(pred.left, k), _fold(pred.right, k))
    target = pred.path  # type: ignore[attr-defined]
    known = k.get(target)
    if isinstance(pred, fx.IsNone):
        if known is None:
            return pred
        return fx.TRUE if isinstance(known, KDne) else fx.FALSE
    if isinstance(pred, fx.IsDir):
        if target.is_root:
            return fx.TRUE
        if known is None or isinstance(known, KExists):
            return pred
        return fx.TRUE if isinstance(known, KDir) else fx.FALSE
    if isinstance(pred, fx.IsFile):
        if known is None or isinstance(known, KExists):
            return pred
        return fx.TRUE if isinstance(known, KFile) else fx.FALSE
    if isinstance(pred, fx.IsFileWith):
        if known is None or isinstance(known, KExists):
            return pred
        if isinstance(known, KFile):
            if known.content is None:
                return pred  # file, but content unknown
            return (
                fx.TRUE if known.content == pred.content else fx.FALSE
            )
        return fx.FALSE
    if isinstance(pred, fx.IsEmptyDir):
        if known is None or isinstance(known, KExists):
            return pred
        if isinstance(known, (KDne, KFile)):
            return fx.FALSE
        return pred  # known dir: emptiness still depends on children
    raise TypeError(f"unknown predicate: {pred!r}")


def _refine(
    k: Dict[Path, Knowledge], pred: fx.Pred, truth: bool
) -> Dict[Path, Knowledge]:
    """Add knowledge implied by the guard holding (or not)."""
    out = dict(k)
    _refine_into(out, pred, truth)
    return out


def _refine_into(
    k: Dict[Path, Knowledge], pred: fx.Pred, truth: bool
) -> None:
    if isinstance(pred, fx.PNot):
        _refine_into(k, pred.inner, not truth)
        return
    if isinstance(pred, fx.PAnd):
        if truth:
            _refine_into(k, pred.left, True)
            _refine_into(k, pred.right, True)
        return
    if isinstance(pred, fx.POr):
        if not truth:
            _refine_into(k, pred.left, False)
            _refine_into(k, pred.right, False)
        return
    if isinstance(pred, fx.IsNone):
        if truth:
            k[pred.path] = K_DNE
        elif pred.path not in k:
            k[pred.path] = K_EXISTS
        return
    if isinstance(pred, fx.IsDir):
        if truth:
            k[pred.path] = K_DIR
        return
    if isinstance(pred, fx.IsFile):
        if truth and not isinstance(k.get(pred.path), KFile):
            k[pred.path] = KFile(None)
        return
    if isinstance(pred, fx.IsFileWith):
        if truth:
            k[pred.path] = KFile(pred.content)
        return
    if isinstance(pred, fx.IsEmptyDir):
        if truth:
            k[pred.path] = K_DIR
        return
