"""Tests for the FS simplifier: simplify(e) ≡ e, always."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fs import (
    ERR,
    ERROR,
    ID,
    FileSystem,
    Path,
    cp,
    creat,
    dir_,
    emptydir_,
    eval_expr,
    file_,
    file_with,
    ite,
    mkdir,
    none_,
    rm,
    seq,
)
from repro.fs.filesystem import DIR, FileContent
from repro.fs.rewrite import simplify
from repro.fs.syntax import expr_size
from repro.resources import Resource, ResourceCompiler


class TestFolding:
    def test_mkdir_then_dir_check_folds(self):
        p = Path.of("/d")
        e = seq(mkdir(p), ite(dir_(p), creat("/d/f", "x"), ERR))
        out = simplify(e)
        assert out == seq(mkdir(p), creat("/d/f", "x"))

    def test_creat_then_filewith_folds(self):
        p = Path.of("/f")
        e = seq(creat(p, "x"), ite(file_with(p, "x"), ID, ERR))
        assert simplify(e) == creat(p, "x")

    def test_double_mkdir_is_error(self):
        e = seq(mkdir("/d"), mkdir("/d"))
        assert simplify(e) == ERR

    def test_rm_after_rm_is_error(self):
        e = seq(rm("/f"), rm("/f"))
        assert simplify(e) == ERR

    def test_guard_refinement_in_branch(self):
        p = Path.of("/f")
        # Inside the then-branch, file?(p) is known true.
        e = ite(file_(p), ite(file_(p), rm(p), ERR), ID)
        out = simplify(e)
        assert out == ite(file_(p), rm(p), ID)

    def test_package_style_program_shrinks(self):
        compiler = ResourceCompiler()
        e = compiler.compile(Resource("package", "apache2", {}))
        out = simplify(e)
        assert expr_size(out) <= expr_size(e)

    def test_error_branch_knowledge_skipped(self):
        p = Path.of("/f")
        e = seq(
            ite(none_(p), ERR, ID),  # survives only if p exists
            ite(none_(p), creat(p, "x"), ID),
        )
        out = simplify(e)
        # After the first guard, p is known to exist: the second
        # conditional folds to id.
        assert out == ite(none_(p), ERR, ID)


def _random_expr(rng, depth):
    paths = ["/p", "/p/c", "/q"]
    if depth == 0 or rng.random() < 0.4:
        roll = rng.randrange(6)
        p = rng.choice(paths)
        if roll == 0:
            return mkdir(p)
        if roll == 1:
            return creat(p, rng.choice("xy"))
        if roll == 2:
            return rm(p)
        if roll == 3:
            return cp(p, rng.choice(paths))
        if roll == 4:
            return ID
        return ERR
    if rng.random() < 0.5:
        return seq(_random_expr(rng, depth - 1), _random_expr(rng, depth - 1))
    p = Path.of(rng.choice(paths))
    pred = rng.choice(
        [none_(p), file_(p), dir_(p), emptydir_(p), file_with(p, "x")]
    )
    return ite(
        pred, _random_expr(rng, depth - 1), _random_expr(rng, depth - 1)
    )


def _states():
    from itertools import product

    paths = [Path.of("/p"), Path.of("/p/c"), Path.of("/q")]
    options = [None, DIR, FileContent("x"), FileContent("z")]
    for combo in product(options, repeat=3):
        entries = {p: c for p, c in zip(paths, combo) if c is not None}
        fs = FileSystem(entries)
        if fs.is_well_formed():
            yield fs


class TestSimplifyPreservesSemantics:
    @given(st.integers(min_value=0, max_value=80_000))
    @settings(max_examples=120, deadline=None)
    def test_equivalent_on_all_small_states(self, seed):
        rng = random.Random(seed)
        e = _random_expr(rng, depth=4)
        out = simplify(e)
        for fs in _states():
            assert eval_expr(e, fs) == eval_expr(out, fs), (
                f"simplify changed semantics\ne={e}\nout={out}\nfs={fs!r}"
            )

    @pytest.mark.parametrize("seed", range(8))
    def test_equivalent_by_smt(self, seed):
        """Cross-check with the complete SAT-backed equivalence."""
        from repro.analysis import check_equivalence

        rng = random.Random(seed * 7919)
        e = _random_expr(rng, depth=3)
        out = simplify(e)
        assert check_equivalence(
            e, out, well_formed_initial=False
        ).equivalent

    def test_resource_models_survive_simplify(self):
        from repro.analysis import check_equivalence

        compiler = ResourceCompiler()
        for resource in [
            Resource("file", "/etc/motd", {"content": "hi"}),
            Resource("user", "carol", {"managehome": True}),
            Resource("service", "svc", {"ensure": "running"}),
        ]:
            e = compiler.compile(resource)
            assert check_equivalence(e, simplify(e)).equivalent
