"""Fig. 11b — determinacy-analysis time, pruning off vs on.

Commutativity checking is enabled in both configurations (the paper's
Fig. 11b column); the §4.4 passes (resource elimination + file
pruning) toggle.  Expected shape: pruning never hurts much and speeds
up the solver-bound benchmarks.
"""

import pytest

from repro.bench.harness import timed_determinism
from repro.corpus import BENCHMARK_NAMES, CASES


@pytest.mark.parametrize("pruning", [False, True], ids=["noprune", "prune"])
@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_fig11b_determinism(benchmark, bench_timeout, name, pruning):
    def run():
        return timed_determinism(
            name,
            use_commutativity=True,
            use_pruning=pruning,
            timeout=bench_timeout,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["timed_out"] = result.timed_out
    assert not result.timed_out, (
        "with commutativity checking enabled every benchmark must finish "
        "within the budget"
    )
    expected = CASES[name].deterministic
    assert result.deterministic == expected
