"""SARIF 2.1.0 output: golden file, schema validation, region rules.

The golden file pins the exact bytes of a representative report (so
accidental format churn is visible in review); the schema test
validates everything lint can emit against a vendored subset of the
official SARIF 2.1.0 schema (the CI container has no network access —
see ``tests/data/sarif-2.1.0-subset.schema.json`` for what the subset
keeps).
"""

import json
from pathlib import Path

import pytest

from repro.analysis.lint import (
    LintOptions,
    lint_source,
    render_sarif,
    to_sarif,
)
from repro.corpus import BENCHMARK_NAMES, FIXED_VARIANTS, load_source
from repro.fs.paths import Path as FsPath

DATA = Path(__file__).parent / "data"
GOLDEN = DATA / "lint-golden.sarif"
SUBSET_SCHEMA = DATA / "sarif-2.1.0-subset.schema.json"

#: The manifest behind the golden file (the classic paper race).
GOLDEN_SOURCE = (
    'file {"/etc/apache2/sites-available/default.conf": content => "z" }\n'
    'package {"apache2": ensure => present }'
)


def corpus_sarif():
    """One SARIF log over the entire §6 corpus, warts and all."""
    reports = [
        lint_source(load_source(name), name=f"{name}.pp")
        for name in BENCHMARK_NAMES + sorted(FIXED_VARIANTS)
    ]
    return to_sarif(reports)


class TestGolden:
    def test_golden_file_is_current(self):
        report = lint_source(GOLDEN_SOURCE, name="golden.pp")
        rendered = render_sarif(report, tool_version="0.0.0-test")
        assert rendered == GOLDEN.read_text(encoding="utf8"), (
            "SARIF output changed; if intentional, regenerate "
            "tests/data/lint-golden.sarif (render_sarif with "
            "tool_version='0.0.0-test')"
        )

    def test_golden_headline_fields(self):
        data = json.loads(GOLDEN.read_text(encoding="utf8"))
        assert data["version"] == "2.1.0"
        assert data["$schema"].endswith("sarif-2.1.0.json")
        run = data["runs"][0]
        assert run["tool"]["driver"]["name"] == "rehearsal-lint"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == sorted(rule_ids)
        assert any(r["ruleId"] == "REH005" for r in run["results"])

    def test_rule_help_uris_point_at_the_docs(self):
        data = json.loads(GOLDEN.read_text(encoding="utf8"))
        for rule in data["runs"][0]["tool"]["driver"]["rules"]:
            assert rule["helpUri"].endswith(
                f"docs/lint.md#{rule['id'].lower()}"
            )


class TestSchema:
    def test_corpus_log_validates_against_the_subset_schema(self):
        jsonschema = pytest.importorskip("jsonschema")
        schema = json.loads(SUBSET_SCHEMA.read_text(encoding="utf8"))
        jsonschema.validate(corpus_sarif(), schema)

    def test_unparseable_and_protected_outputs_validate_too(self):
        """Edge shapes: a line-0 diagnostic (no region allowed) and a
        REH010 result with properties."""
        jsonschema = pytest.importorskip("jsonschema")
        schema = json.loads(SUBSET_SCHEMA.read_text(encoding="utf8"))
        reports = [
            lint_source(
                'file {"/etc/a.conf": content => "x" }\n'
                'file {"/etc/a.conf": content => "y" }',
                name="dup.pp",
            ),
            lint_source(
                'file {"/etc/passwd": content => "pwned" }',
                name="prot.pp",
                options=LintOptions(
                    protected=(FsPath.of("/etc/passwd"),)
                ),
            ),
        ]
        jsonschema.validate(to_sarif(reports), schema)


class TestRegions:
    def test_zero_line_results_omit_the_region(self):
        """SARIF regions are 1-based; a diagnostic without a source
        span (line 0) must drop the region rather than emit
        startLine 0 (schema violation)."""
        report = lint_source(
            'file {"/etc/a.conf": content => "x" }\n'
            'file {"/etc/a.conf": content => "y" }',
            name="dup.pp",
        )
        assert any(d.line == 0 for d in report.diagnostics)
        log = to_sarif(report)
        for result in log["runs"][0]["results"]:
            for loc in result.get("locations", []):
                phys = loc.get("physicalLocation", {})
                region = phys.get("region")
                if region is not None:
                    assert region["startLine"] >= 1

    def test_results_carry_manifest_uri(self):
        log = corpus_sarif()
        uris = {
            loc["physicalLocation"]["artifactLocation"]["uri"]
            for result in log["runs"][0]["results"]
            for loc in result["locations"]
        }
        assert "ntp-nondet.pp" in uris
