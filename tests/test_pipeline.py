"""Tests for the end-to-end pipeline, report rendering, and CLI."""

import pytest

from repro import Rehearsal
from repro.analysis import ensures_file
from repro.core.cli import main as cli_main
from repro.core.report import (
    render_determinism,
    render_idempotence,
    render_report,
)
from repro.fs import Path

FIG_3A = """
file {"/etc/apache2/sites-available/000-default.conf":
  content => "site config",
}
package {"apache2": ensure => present }
"""

FIG_3A_FIXED = FIG_3A + """
Package['apache2'] -> File['/etc/apache2/sites-available/000-default.conf']
"""


@pytest.fixture(scope="module")
def tool():
    return Rehearsal()


class TestVerify:
    def test_buggy_manifest(self, tool):
        report = tool.verify(FIG_3A, name="fig3a")
        assert report.error is None
        assert report.deterministic is False
        assert report.idempotent is None  # gated, §5
        assert not report.ok

    def test_fixed_manifest(self, tool):
        report = tool.verify(FIG_3A_FIXED, name="fig3a-fixed")
        assert report.deterministic is True
        assert report.idempotent is True
        assert report.ok

    def test_syntax_error_reported(self, tool):
        report = tool.verify("file{'/a' oops", name="broken")
        assert report.error is not None
        assert "line" in report.error

    def test_eval_error_captured(self, tool):
        report = tool.verify("include missing_class", name="bad")
        assert report.error is not None
        assert "unknown class" in report.error

    def test_cycle_captured(self, tool):
        report = tool.verify(
            """
            package{'a': } package{'b': }
            Package['a'] -> Package['b']
            Package['b'] -> Package['a']
            """,
            name="cycle",
        )
        assert report.error is not None
        assert "cycle" in report.error

    def test_exec_rejected_at_compile(self, tool):
        from repro.errors import UnsupportedResourceError

        with pytest.raises(UnsupportedResourceError):
            tool.compile("exec{'apt-get update': }")

    def test_check_invariant(self, tool):
        result = tool.check_invariant(
            "file{'/motd': content => 'hello' }",
            ensures_file(Path.of("/motd"), "hello"),
        )
        assert result.holds

    def test_facts_propagate(self):
        tool = Rehearsal(facts={"role": "web"})
        graph, _ = tool.compile(
            """
            if $role == 'web' { package{'nginx': } }
            else { package{'vim': } }
            """
        )
        assert "Package['nginx']" in graph.nodes


class TestRendering:
    def test_nondet_report_mentions_witness(self, tool):
        result = tool.check_determinism(FIG_3A)
        text = render_determinism(result)
        assert "NON-DETERMINISTIC" in text
        assert "Witness initial filesystem" in text
        assert "Diverging orders" in text

    def test_det_report(self, tool):
        result = tool.check_determinism(FIG_3A_FIXED)
        text = render_determinism(result)
        assert "DETERMINISTIC" in text

    def test_idempotence_rendering(self, tool):
        idem = tool.check_idempotence(FIG_3A_FIXED)
        assert "IDEMPOTENT" in render_idempotence(idem)

    def test_full_report_rendering(self, tool):
        report = tool.verify(FIG_3A_FIXED, name="demo")
        text = render_report(report)
        assert "demo" in text
        assert "DETERMINISTIC" in text
        assert "IDEMPOTENT" in text

    def test_error_report_rendering(self, tool):
        report = tool.verify("include nope", name="broken")
        assert "ERROR" in render_report(report)

    def test_nondet_report_notes_gated_idempotence(self, tool):
        report = tool.verify(FIG_3A, name="buggy")
        text = render_report(report)
        assert "idempotence not checked" in text


class TestCli:
    def test_cli_on_nondet_manifest(self, tmp_path, capsys):
        manifest = tmp_path / "bad.pp"
        manifest.write_text(FIG_3A)
        code = cli_main([str(manifest)])
        out = capsys.readouterr().out
        assert code == 1
        assert "NON-DETERMINISTIC" in out

    def test_cli_on_good_manifest(self, tmp_path, capsys):
        manifest = tmp_path / "good.pp"
        manifest.write_text(FIG_3A_FIXED)
        code = cli_main([str(manifest)])
        out = capsys.readouterr().out
        assert code == 0
        assert "DETERMINISTIC" in out
        assert "IDEMPOTENT" in out

    def test_cli_flags(self, tmp_path, capsys):
        manifest = tmp_path / "good.pp"
        manifest.write_text(FIG_3A_FIXED)
        code = cli_main(
            [str(manifest), "--no-pruning", "--no-commutativity", "--timeout", "60"]
        )
        assert code == 0

    def test_cli_strict_packages(self, tmp_path, capsys):
        manifest = tmp_path / "unknown.pp"
        manifest.write_text("package{'definitely-not-a-real-pkg': }")
        code = cli_main([str(manifest), "--strict-packages"])
        out = capsys.readouterr().out
        assert code == 1
        assert "not in the database" in out

    def test_cli_explain(self, tmp_path, capsys):
        manifest = tmp_path / "bad.pp"
        manifest.write_text(FIG_3A)
        code = cli_main([str(manifest), "--explain"])
        out = capsys.readouterr().out
        assert code == 1
        assert "--- order (1) ---" in out
        assert "FAILED" in out or "success" in out

    def test_cli_node_selection(self, tmp_path, capsys):
        manifest = tmp_path / "nodes.pp"
        manifest.write_text(
            """
            node 'web' { package{'nginx': } }
            node default { }
            """
        )
        code = cli_main([str(manifest), "--node", "web"])
        out = capsys.readouterr().out
        assert "1 primitive resources" in out
        assert code == 0
