# ntp — fixed variant: the configuration file declares its dependency
# on the package, so the package's copy of /etc/ntp.conf is always laid
# down first and then deterministically overwritten by ours.

class ntp {
  $servers = ['0.pool.ntp.org', '1.pool.ntp.org', '2.pool.ntp.org']

  package { 'ntp':
    ensure => installed,
  }

  # FIX: the package install must come first (Fig. 3a, repaired).
  file { '/etc/ntp.conf':
    ensure  => file,
    content => "# managed by puppet\nserver ${servers} iburst\ndriftfile /var/lib/ntp/ntp.drift\nrestrict default nomodify notrap\n",
    require => Package['ntp'],
  }

  service { 'ntp':
    ensure    => running,
    enable    => true,
    subscribe => File['/etc/ntp.conf'],
  }
}

include ntp
