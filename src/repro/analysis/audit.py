"""Static security/ownership auditing (the paper's §9: "we believe our
approach to modeling Puppet will enable several other tools, e.g. ...
security auditing").

Two kinds of checks over a compiled resource graph:

* **write-scope audit** — which resources may write inside protected
  subtrees (footprint-based, §4.3 machinery reused);
* **protected-path invariants** — SAT-backed proofs that a manifest
  never deletes or clobbers a given path on any successful run (the §5
  invariant checker specialized to audits).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.analysis.commutativity import footprint
from repro.analysis.invariants import check_invariant
from repro.fs import FileSystem
from repro.fs import syntax as fx
from repro.fs.paths import Path
from repro.logic.terms import Term, TermBank
from repro.smt.state import SymbolicState

NodeId = Hashable


@dataclass
class WriteFinding:
    resource: NodeId
    path: Path
    kind: str  # "write" | "dir-ensure" | "removes-children"


@dataclass
class AuditReport:
    findings: List[WriteFinding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def by_resource(self) -> Dict[NodeId, List[WriteFinding]]:
        out: Dict[NodeId, List[WriteFinding]] = {}
        for f in self.findings:
            out.setdefault(f.resource, []).append(f)
        return out

    def render(self) -> str:
        if self.clean:
            return "audit clean: no writes into protected subtrees"
        lines = ["protected-subtree writes:"]
        for node, findings in sorted(
            self.by_resource().items(), key=lambda kv: str(kv[0])
        ):
            for f in findings:
                lines.append(f"  {node}: {f.kind} {f.path}")
        return "\n".join(lines)


def audit_writes(
    programs: Dict[NodeId, fx.Expr],
    protected: Sequence[Path],
    allow: Sequence[NodeId] = (),
) -> AuditReport:
    """Report every resource whose footprint writes (or removes
    children) inside a protected subtree; ``allow`` lists resources
    exempted by policy."""
    allowed = set(allow)
    report = AuditReport()
    for node, expr in programs.items():
        if node in allowed:
            continue
        fp = footprint(expr)
        for path in sorted(fp.writes):
            if _under_any(path, protected):
                report.findings.append(WriteFinding(node, path, "write"))
        for path in sorted(fp.dir_ensures):
            if _under_any(path, protected) and path not in protected:
                report.findings.append(
                    WriteFinding(node, path, "dir-ensure")
                )
        for path in sorted(fp.children_reads):
            # rm of a protected dir (children observation + write).
            if path in fp.writes and _under_any(path, protected):
                continue  # already reported as a write
    return report


def _under_any(path: Path, roots: Sequence[Path]) -> bool:
    return any(r == path or r.is_ancestor_of(path) for r in roots)


def prove_never_deleted(
    graph: "nx.DiGraph",
    programs: Dict[NodeId, fx.Expr],
    path: Path,
) -> Tuple[bool, Optional[FileSystem]]:
    """SAT-backed proof: on every successful run, if ``path`` existed
    initially it still exists at the end.  Returns (holds, witness).

    Sound only on deterministic graphs (one linearization stands for
    all, §5)."""
    order = list(nx.topological_sort(graph))
    e = fx.seq(*[programs[n] for n in order])

    def prop(bank: TermBank, final: SymbolicState) -> Term:
        from repro.smt.values import initial_var_name, V_DNE

        existed = bank.not_(bank.var(initial_var_name(path, V_DNE)))
        still_there = bank.not_(final.value(path).is_dne(bank))
        return bank.implies(existed, still_there)

    result = check_invariant(e, prop, extra_paths=(path,))
    return result.holds, result.witness_fs
