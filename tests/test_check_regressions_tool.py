"""Per-field header validation and the corpus guard in tools/.

``validate_header`` is exercised directly (it is the engine); the
``tools/check_regressions.py`` guard is exercised end-to-end — green
on the shipped corpus, red on seeded corruption.
"""

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.testing.regressions import (
    KNOWN_DISAGREEMENTS,
    validate_header,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
TOOL = REPO_ROOT / "tools" / "check_regressions.py"
CORPUS = REPO_ROOT / "tests" / "regressions"

GOOD_HEADER = """\
# rehearsal-fuzz reproducer
# seed: 42
# case-id: 7
# generator-version: 1
# bug-class: shared-write
# found-by: nightly-fuzz
# disagreement: missed_nondet
# expected-deterministic: false
# expected-idempotent: none

file {"/tmp/x": content => "1" }
"""


class TestValidateHeader:
    def test_good_header_is_clean(self):
        assert validate_header(GOOD_HEADER, "good.pp") == []

    def test_every_known_disagreement_is_accepted(self):
        for kind in KNOWN_DISAGREEMENTS:
            text = GOOD_HEADER.replace("missed_nondet", kind)
            assert validate_header(text, "x.pp") == []

    @pytest.mark.parametrize(
        "mutation,expected",
        [
            (("# seed: 42", "# seed: forty-two"), "non-negative integer"),
            (("# case-id: 7\n", ""), "missing required key 'case-id'"),
            (
                ("# generator-version: 1", "# generator-version: -1"),
                "generator-version must be",
            ),
            (
                ("missed_nondet", "made_up_kind"),
                "unknown disagreement",
            ),
            (
                ("# expected-deterministic: false",
                 "# expected-deterministic: maybe"),
                "true/false/none",
            ),
            (
                ("# found-by: nightly-fuzz\n", ""),
                "found-by",
            ),
        ],
    )
    def test_each_field_gets_its_own_message(self, mutation, expected):
        old, new = mutation
        text = GOOD_HEADER.replace(old, new)
        assert text != GOOD_HEADER
        problems = validate_header(text, "bad.pp")
        assert any(expected in p for p in problems), problems

    def test_missing_marker_short_circuits(self):
        problems = validate_header("file {}\n", "bad.pp")
        assert len(problems) == 1
        assert "first line" in problems[0]

    def test_duplicate_key_is_reported(self):
        text = GOOD_HEADER.replace(
            "# seed: 42", "# seed: 42\n# seed: 43"
        )
        problems = validate_header(text, "bad.pp")
        assert any("duplicate" in p for p in problems)

    def test_empty_body_is_reported(self):
        text = GOOD_HEADER.split("\n\n")[0] + "\n"
        problems = validate_header(text, "bad.pp")
        assert any("manifest body" in p for p in problems)

    def test_all_problems_reported_at_once(self):
        text = (
            "# rehearsal-fuzz reproducer\n"
            "# seed: x\n"
            "# disagreement: bogus\n"
        )
        problems = validate_header(text, "bad.pp")
        # seed, case-id, generator-version, disagreement,
        # expected-deterministic, found-by, body: one message each.
        assert len(problems) == 7


def load_tool():
    spec = importlib.util.spec_from_file_location(
        "check_regressions_under_test", TOOL
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture
def tool_on_corpus_copy(tmp_path, monkeypatch, capsys):
    """The guard pointed at a private copy of the shipped corpus."""
    corpus = tmp_path / "regressions"
    corpus.mkdir()
    for source in CORPUS.glob("*.pp"):
        (corpus / source.name).write_text(
            source.read_text(encoding="utf8"), encoding="utf8"
        )
    (corpus / "promotions.json").write_text(
        (CORPUS / "promotions.json").read_text(encoding="utf8"),
        encoding="utf8",
    )
    module = load_tool()
    monkeypatch.setattr(module, "REGRESSION_DIR", corpus)
    monkeypatch.setattr(
        module, "QUARANTINE_DIR", corpus / "quarantine"
    )
    monkeypatch.setattr(
        module,
        "_replay_parametrization",
        lambda: set(corpus.glob("*.pp")),
    )
    return module, corpus


class TestGuard:
    def test_green_on_the_shipped_corpus(self):
        proc = subprocess.run(
            [sys.executable, str(TOOL)],
            capture_output=True,
            text=True,
            check=False,
        )
        assert proc.returncode == 0, proc.stderr
        assert "regression corpus sound" in proc.stdout

    def test_red_on_a_corrupted_header(self, tool_on_corpus_copy):
        module, corpus = tool_on_corpus_copy
        victim = sorted(corpus.glob("*.pp"))[0]
        victim.write_text(
            victim.read_text(encoding="utf8").replace(
                "# seed: 42", "# seed: nope"
            ),
            encoding="utf8",
        )
        assert module.main() == 1

    def test_red_on_unknown_disagreement(self, tool_on_corpus_copy):
        module, corpus = tool_on_corpus_copy
        victim = sorted(corpus.glob("*.pp"))[0]
        victim.write_text(
            victim.read_text(encoding="utf8").replace(
                "# disagreement: missed_nondet",
                "# disagreement: gremlins",
            ),
            encoding="utf8",
        )
        assert module.main() == 1

    def test_red_when_a_pinned_file_is_edited_after_promotion(
        self, tool_on_corpus_copy, capsys
    ):
        module, corpus = tool_on_corpus_copy
        victim = sorted(corpus.glob("*.pp"))[0]
        victim.write_text(
            victim.read_text(encoding="utf8")
            + '\nfile {"/tmp/extra": content => "1" }\n',
            encoding="utf8",
        )
        assert module.main() == 1
        assert "re-run" in capsys.readouterr().err

    def test_red_when_the_ledger_is_missing(self, tool_on_corpus_copy):
        module, corpus = tool_on_corpus_copy
        (corpus / "promotions.json").unlink()
        assert module.main() == 1

    def test_red_on_a_malformed_quarantined_candidate(
        self, tool_on_corpus_copy
    ):
        module, corpus = tool_on_corpus_copy
        quarantine = corpus / "quarantine"
        quarantine.mkdir()
        (quarantine / "candidate.pp").write_text(
            "# rehearsal-fuzz reproducer\n# seed: x\n"
        )
        assert module.main() == 1

    def test_green_with_a_wellformed_quarantined_candidate(
        self, tool_on_corpus_copy, capsys
    ):
        module, corpus = tool_on_corpus_copy
        quarantine = corpus / "quarantine"
        quarantine.mkdir()
        (quarantine / "candidate.pp").write_text(GOOD_HEADER)
        assert module.main() == 0
        assert "awaiting burn-in" in capsys.readouterr().out
