#!/usr/bin/env python3
"""Fail CI when determinacy exploration walks too many branches.

Usage:  PYTHONPATH=src python tools/check_branch_budget.py

Wall-clock regression guards (``compare_baseline.py``) conflate
machine speed with algorithmic regressions; this check is structural.
It runs the determinacy analysis over the whole §6 corpus plus the
Fig. 13 synthetic workload under the production configuration and
asserts that

* every corpus manifest stays within a fixed per-manifest branch
  budget (the corpus is small after elimination/commutativity — a
  blow-up here means a reduction broke);
* the corpus total stays within a fixed overall budget;
* the Fig. 13 workload at n = 6 stays on the subset/state lattice
  (sub-factorial branches, nonzero memo hits) — the memoization
  regression tripwire.

Budgets are deliberately loose (≈4x current numbers) so routine
modeling changes pass, while a lost reduction — which changes the
asymptotics, not the constant — still fails.

Exit codes: 0 — within budget; 1 — budget exceeded.
"""

from __future__ import annotations

import sys

from repro.analysis.determinism import DeterminismOptions, check_determinism
from repro.bench.harness import fig13_lattice_bound, synthetic_conflict_graph
from repro.core.pipeline import Rehearsal
from repro.corpus import BENCHMARK_NAMES, load_source

#: Current corpus numbers: 31 branches max (irc-nondet), 51 total.
MAX_BRANCHES_PER_MANIFEST = 150
MAX_BRANCHES_TOTAL = 250

#: Fig. 13 at n = 6: the subset/state lattice has 486 edges (see
#: :func:`repro.bench.harness.fig13_lattice_bound`); the order tree
#: has 1956 branches.  Anything above the lattice bound means
#: memoization stopped merging.
FIG13_N = 6
FIG13_MAX_BRANCHES = fig13_lattice_bound(FIG13_N)


def main() -> int:
    tool = Rehearsal()
    failures = []
    total = 0
    width = max(len(n) for n in BENCHMARK_NAMES)
    print(
        f"{'benchmark'.ljust(width)}  branches  memo hits  "
        "merged  finals"
    )
    for name in BENCHMARK_NAMES:
        graph, programs = tool.compile(load_source(name))
        stats = check_determinism(
            graph, programs, DeterminismOptions()
        ).stats
        total += stats.branches_explored
        print(
            f"{name.ljust(width)}  {stats.branches_explored:8d}  "
            f"{stats.memo_hits:9d}  {stats.states_merged:6d}  "
            f"{stats.distinct_finals:6d}"
        )
        if stats.branches_explored > MAX_BRANCHES_PER_MANIFEST:
            failures.append(
                f"{name}: {stats.branches_explored} branches exceed "
                f"the per-manifest budget of {MAX_BRANCHES_PER_MANIFEST}"
            )
    print(f"{'TOTAL'.ljust(width)}  {total:8d}")
    if total > MAX_BRANCHES_TOTAL:
        failures.append(
            f"corpus total {total} branches exceeds the budget of "
            f"{MAX_BRANCHES_TOTAL}"
        )

    graph, programs = synthetic_conflict_graph(FIG13_N)
    stats = check_determinism(
        graph,
        programs,
        DeterminismOptions(max_branches=500_000),
    ).stats
    print(
        f"fig13 n={FIG13_N}: {stats.branches_explored} branches, "
        f"{stats.memo_hits} memo hits, "
        f"{stats.distinct_finals} distinct finals "
        f"(lattice bound {FIG13_MAX_BRANCHES}, order tree 1956)"
    )
    if stats.branches_explored > FIG13_MAX_BRANCHES:
        failures.append(
            f"fig13 n={FIG13_N}: {stats.branches_explored} branches "
            f"exceed the state-lattice bound {FIG13_MAX_BRANCHES} — "
            "exploration memoization has regressed"
        )
    if stats.memo_hits == 0:
        failures.append(
            f"fig13 n={FIG13_N}: zero memo hits — interleavings no "
            "longer converge on the reachable-state DAG"
        )

    if failures:
        print("\nexploration budget exceeded:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nexploration within budget.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
