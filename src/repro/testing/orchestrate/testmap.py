"""Dependency-aware test selection: the module→test map.

A static import-graph scanner walks every ``src/`` module, every
``tests/test_*.py`` file, and every ``conftest.py``, extracts their
import statements from the AST (function-level imports included — a
deferred ``from repro.testing import FuzzSession`` inside a CLI
handler is still a real runtime dependency), resolves them against
the scanned module universe, and computes for every module the set of
test files whose transitive imports reach it.  The result is
persisted as a content-hashed JSON map (``tests/testmap.json``) that
``rehearsal testmap select --changed <paths>`` turns into the minimal
pytest file list for a change.

Soundness over cleverness — selection falls back to the **full
suite** whenever precision cannot be guaranteed:

* the committed map is *stale*: any scanned file was added, removed,
  or changed its import structure since the map was built (per-file
  fingerprints hash the canonicalized import statements, so body-only
  edits do not invalidate the map);
* a ``conftest.py`` changed (fixtures feed every test), or a changed
  module is one a conftest transitively imports;
* a changed file is CI/deployment configuration (``.github/``,
  ``Dockerfile``) — the scanner cannot model how the suite is
  *invoked*, so these run everything by policy, with a reason saying
  exactly that rather than the unmapped-file wildcard;
* a changed file is unmapped (test-support data, tools).

Two import idioms get precise treatment:

* **lazy package inits** — a package whose ``__init__`` declares the
  ``_LAZY_EXPORTS = {"Name": "defining.module"}`` table (PEP 562, as
  :mod:`repro` and :mod:`repro.testing` do) lets the scanner resolve
  ``from pkg import Name`` to the defining module instead of the whole
  package;
* **parent-package semantics** — importing ``a.b.c`` executes the
  ``a`` and ``a.b`` inits, so every module depends on its ancestor
  packages (which is exactly why the fat eager inits had to become
  lazy before selection could be better than "everything, always").

Files using dynamic imports (``importlib``/``__import__`` with a
non-constant argument) are handled conservatively: a dynamic *test*
depends on every module; a dynamic *src module* is depended on by
every test.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

#: Bump when the scanning/resolution algorithm changes meaning:
#: fingerprints embed it, so every committed map goes stale at once.
SCANNER_VERSION = 1

MAP_SCHEMA = 1

#: Default persisted location, relative to the repo root.
DEFAULT_MAP_PATH = "tests/testmap.json"

#: Test that guards the documentation link graph: any ``*.md`` edit
#: selects it (check_links.py scans the markdown tree).
DOCS_TEST = "tests/test_docs_links.py"

#: Tests exercising the committed regression corpus: any edit under
#: ``tests/regressions/`` selects them.
REGRESSION_TESTS = ("tests/test_regressions.py",)

#: Tests exercising the map itself: editing the committed map file
#: selects them (a rebuilt map cannot break anything else).
MAP_TESTS = ("tests/test_orchestrate_testmap.py",)

#: Changed paths that provably cannot affect any test.
INERT_FILES = frozenset({".gitignore"})

#: CI/deployment configuration the import scanner cannot see into:
#: workflow YAML decides *how* the suite runs and the Dockerfile ships
#: the daemon image the daemon-e2e job smokes.  Edits here run the
#: full suite **by policy** with a reason that says so — they are not
#: "unmapped files" (the wildcard fallback for paths the scanner
#: should have known about).
CI_CONFIG_PREFIXES = (".github/",)
CI_CONFIG_FILES = frozenset({"Dockerfile", ".dockerignore"})


# -- per-file scanning --------------------------------------------------------


@dataclass(frozen=True)
class FileScan:
    """Canonical import structure of one Python file."""

    path: str  # repo-relative, posix separators
    specs: Tuple[tuple, ...]
    lazy_exports: Optional[Tuple[Tuple[str, str], ...]]
    dynamic: bool
    parse_error: bool = False

    @property
    def fingerprint(self) -> str:
        payload = json.dumps(
            {
                "v": SCANNER_VERSION,
                "specs": sorted(self.specs),
                "lazy": (
                    sorted(self.lazy_exports)
                    if self.lazy_exports is not None
                    else None
                ),
                "dynamic": self.dynamic,
                "parse_error": self.parse_error,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf8")).hexdigest()


_DYNAMIC_IMPORTERS = {"__import__", "import_module"}


def scan_source(path: str, source: str) -> FileScan:
    """Extract the import structure of one file (see module docstring).

    ``specs`` entries are either ``("import", "a.b.c")`` or
    ``("from", level, "a.b", ("x", "y"))`` — names sorted, ``"*"`` for
    star imports.  Unparseable files scan as dynamic (maximally
    conservative).
    """
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return FileScan(
            path=path,
            specs=(),
            lazy_exports=None,
            dynamic=True,
            parse_error=True,
        )
    specs: List[tuple] = []
    dynamic = False
    lazy: Optional[Tuple[Tuple[str, str], ...]] = None
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                specs.append(("import", alias.name))
        elif isinstance(node, ast.ImportFrom):
            specs.append(
                (
                    "from",
                    node.level,
                    node.module or "",
                    tuple(sorted(alias.name for alias in node.names)),
                )
            )
        elif isinstance(node, ast.Call):
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name in _DYNAMIC_IMPORTERS:
                if (
                    node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                ):
                    # importlib.import_module("a.b") is just an import.
                    specs.append(("import", node.args[0].value))
                else:
                    dynamic = True
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "_LAZY_EXPORTS"
                    and isinstance(node.value, ast.Dict)
                ):
                    table = _literal_table(node.value)
                    if table is not None:
                        lazy = tuple(sorted(table.items()))
    if lazy is not None:
        # The PEP 562 idiom resolves import_module(_LAZY_EXPORTS[name])
        # — the table IS the declaration, not an open-ended dynamic
        # import.
        dynamic = False
    return FileScan(
        path=path, specs=tuple(specs), lazy_exports=lazy, dynamic=dynamic
    )


def _literal_table(node: ast.Dict) -> Optional[Dict[str, str]]:
    table = {}
    for key, value in zip(node.keys, node.values):
        if not (
            isinstance(key, ast.Constant)
            and isinstance(key.value, str)
            and isinstance(value, ast.Constant)
            and isinstance(value.value, str)
        ):
            return None
        table[key.value] = value.value
    return table


# -- repo discovery -----------------------------------------------------------


def _rel(path: Path, root: Path) -> str:
    return path.relative_to(root).as_posix()


def discover_files(root: Path) -> Dict[str, str]:
    """relpath -> kind for every file the map covers.

    Kinds: ``module`` (under ``src/``), ``test`` (tests/test_*.py),
    ``conftest`` (any conftest.py under the root, tests/ or
    benchmarks/).
    """
    root = Path(root)
    files: Dict[str, str] = {}
    src = root / "src"
    if src.is_dir():
        for path in sorted(src.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            files[_rel(path, root)] = "module"
    tests = root / "tests"
    if tests.is_dir():
        for path in sorted(tests.rglob("test_*.py")):
            if "__pycache__" in path.parts:
                continue
            files[_rel(path, root)] = "test"
    for conftest_dir in (root, root / "tests", root / "benchmarks"):
        candidate = conftest_dir / "conftest.py"
        if candidate.is_file():
            files[_rel(candidate, root)] = "conftest"
    return files


def _module_name(relpath: str) -> Optional[str]:
    """src/pkg/a/b.py -> pkg.a.b; src/pkg/a/__init__.py -> pkg.a."""
    parts = Path(relpath).parts
    if len(parts) < 2 or parts[0] != "src":
        return None
    dotted = list(parts[1:])
    if dotted[-1] == "__init__.py":
        dotted = dotted[:-1]
    else:
        dotted[-1] = dotted[-1][: -len(".py")]
    return ".".join(dotted) if dotted else None


# -- dependency resolution ----------------------------------------------------


def _ancestors(module: str) -> List[str]:
    parts = module.split(".")
    return [".".join(parts[:i]) for i in range(1, len(parts) + 1)]


def _resolve_specs(
    specs: Iterable[tuple],
    universe: Set[str],
    lazy_tables: Dict[str, Dict[str, str]],
    current_package: Optional[str],
) -> Set[str]:
    deps: Set[str] = set()

    def add(module: str) -> None:
        for prefix in _ancestors(module):
            if prefix in universe:
                deps.add(prefix)

    for spec in specs:
        if spec[0] == "import":
            add(spec[1])
            continue
        _, level, mod, names = spec
        if level:
            if current_package is None:
                continue  # relative import outside a known package
            pkg_parts = current_package.split(".")
            if level - 1 >= len(pkg_parts):
                continue
            base_parts = pkg_parts[: len(pkg_parts) - (level - 1)]
            base = ".".join(base_parts + ([mod] if mod else []))
        else:
            base = mod
        if not base:
            continue
        add(base)
        table = lazy_tables.get(base)
        for name in names:
            if name == "*":
                if table:
                    for target in table.values():
                        add(target)
                continue
            candidate = f"{base}.{name}"
            if candidate in universe:
                add(candidate)
            elif table and name in table:
                add(table[name])
    return deps


# -- the map ------------------------------------------------------------------


@dataclass
class TestMap:
    """The persisted module→test map (see module docstring)."""

    fingerprints: Dict[str, str]
    modules: Dict[str, dict]  # module -> {"path", "deps"}
    tests: Dict[str, dict]  # test relpath -> {"deps", "dynamic"}
    conftests: List[str]
    global_modules: List[str]
    module_tests: Dict[str, List[str]]
    schema: int = MAP_SCHEMA
    scanner_version: int = SCANNER_VERSION

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "scanner_version": self.scanner_version,
            "fingerprints": dict(sorted(self.fingerprints.items())),
            "modules": {
                name: {
                    "path": info["path"],
                    "deps": sorted(info["deps"]),
                }
                for name, info in sorted(self.modules.items())
            },
            "tests": {
                name: {
                    "deps": sorted(info["deps"]),
                    "dynamic": info["dynamic"],
                }
                for name, info in sorted(self.tests.items())
            },
            "conftests": sorted(self.conftests),
            "global_modules": sorted(self.global_modules),
            "module_tests": {
                module: sorted(tests)
                for module, tests in sorted(self.module_tests.items())
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, payload: dict) -> "TestMap":
        if payload.get("schema") != MAP_SCHEMA:
            raise ValueError(
                f"unsupported testmap schema {payload.get('schema')!r} "
                f"(expected {MAP_SCHEMA})"
            )
        return cls(
            fingerprints=dict(payload["fingerprints"]),
            modules={
                name: {"path": info["path"], "deps": list(info["deps"])}
                for name, info in payload["modules"].items()
            },
            tests={
                name: {
                    "deps": list(info["deps"]),
                    "dynamic": bool(info["dynamic"]),
                }
                for name, info in payload["tests"].items()
            },
            conftests=list(payload["conftests"]),
            global_modules=list(payload["global_modules"]),
            module_tests={
                module: list(tests)
                for module, tests in payload["module_tests"].items()
            },
            scanner_version=int(payload.get("scanner_version", 0)),
        )

    def save(self, path: Path) -> None:
        Path(path).write_text(self.to_json(), encoding="utf8")

    @classmethod
    def load(cls, path: Path) -> "TestMap":
        return cls.from_dict(
            json.loads(Path(path).read_text(encoding="utf8"))
        )


def scan_repo(root: Path) -> Dict[str, FileScan]:
    """Scan every covered file; relpath -> FileScan."""
    root = Path(root)
    scans = {}
    for relpath in discover_files(root):
        source = (root / relpath).read_text(encoding="utf8")
        scans[relpath] = scan_source(relpath, source)
    return scans


def current_fingerprints(root: Path) -> Dict[str, str]:
    return {
        relpath: scan.fingerprint
        for relpath, scan in scan_repo(root).items()
    }


def build_map(root: Path) -> TestMap:
    root = Path(root)
    kinds = discover_files(root)
    scans = scan_repo(root)

    universe: Dict[str, str] = {}  # module -> relpath
    for relpath, kind in kinds.items():
        if kind != "module":
            continue
        name = _module_name(relpath)
        if name is not None:
            universe[name] = relpath
    module_set = set(universe)

    lazy_tables = {}
    for name, relpath in universe.items():
        table = scans[relpath].lazy_exports
        if table is not None:
            lazy_tables[name] = dict(table)

    # Direct deps per module: resolved imports plus ancestor packages
    # (their inits execute on import).
    direct: Dict[str, Set[str]] = {}
    dynamic_modules: Set[str] = set()
    for name, relpath in universe.items():
        scan = scans[relpath]
        package = name if relpath.endswith("__init__.py") else (
            name.rsplit(".", 1)[0] if "." in name else None
        )
        deps = _resolve_specs(
            scan.specs, module_set, lazy_tables, package
        )
        deps.update(a for a in _ancestors(name)[:-1])
        deps.discard(name)
        direct[name] = {d for d in deps if d in module_set}
        if scan.dynamic:
            dynamic_modules.add(name)

    # Transitive closure per module (graphs are small; BFS each).
    closure: Dict[str, Set[str]] = {}
    for name in universe:
        seen: Set[str] = set()
        stack = [name]
        while stack:
            node = stack.pop()
            for dep in direct.get(node, ()):
                if dep not in seen:
                    seen.add(dep)
                    stack.append(dep)
        closure[name] = seen

    def file_deps(relpath: str) -> Tuple[Set[str], bool]:
        scan = scans[relpath]
        deps = _resolve_specs(scan.specs, module_set, lazy_tables, None)
        full = set()
        for dep in deps:
            full.add(dep)
            full.update(closure[dep])
        # A module anywhere in the closure that itself does dynamic
        # imports makes the reachable set unknowable — treat the file
        # as dynamic.
        dyn = scan.dynamic or bool(full & dynamic_modules)
        return full, dyn

    tests: Dict[str, dict] = {}
    module_tests: Dict[str, Set[str]] = {m: set() for m in universe}
    test_paths = sorted(
        relpath for relpath, kind in kinds.items() if kind == "test"
    )
    for relpath in test_paths:
        full, dyn = file_deps(relpath)
        direct_deps = _resolve_specs(
            scans[relpath].specs, module_set, lazy_tables, None
        )
        tests[relpath] = {
            "deps": sorted(direct_deps),
            "dynamic": dyn,
        }
        reach = module_set if dyn else full
        for module in reach:
            module_tests[module].add(relpath)

    conftests = sorted(
        relpath for relpath, kind in kinds.items() if kind == "conftest"
    )
    global_modules: Set[str] = set()
    for relpath in conftests:
        full, dyn = file_deps(relpath)
        if dyn:
            # A dynamic conftest could reach anything: every module
            # becomes a full-suite trigger.
            global_modules = set(module_set)
            break
        global_modules.update(full)

    return TestMap(
        fingerprints={
            relpath: scan.fingerprint
            for relpath, scan in scans.items()
        },
        modules={
            name: {"path": relpath, "deps": sorted(direct[name])}
            for name, relpath in universe.items()
        },
        tests=tests,
        conftests=conftests,
        global_modules=sorted(global_modules),
        module_tests={
            module: sorted(found)
            for module, found in module_tests.items()
        },
    )


# -- selection ----------------------------------------------------------------


@dataclass
class Selection:
    """The outcome of mapping a changed-file list to a test subset."""

    mode: str  # "subset" | "full"
    tests: List[str] = field(default_factory=list)
    reasons: List[str] = field(default_factory=list)
    changed: List[str] = field(default_factory=list)
    total_tests: int = 0

    @property
    def selected_fraction(self) -> float:
        if not self.total_tests:
            return 1.0
        if self.mode == "full":
            return 1.0
        return len(self.tests) / self.total_tests

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "tests": list(self.tests),
            "reasons": list(self.reasons),
            "changed": list(self.changed),
            "total_tests": self.total_tests,
            "selected_fraction": round(self.selected_fraction, 4),
        }


def _normalize_changed(
    changed: Iterable[str], root: Path
) -> List[str]:
    root = Path(root).resolve()
    normalized = []
    for raw in changed:
        path = Path(raw)
        if path.is_absolute():
            try:
                path = path.resolve().relative_to(root)
            except ValueError:
                normalized.append(Path(raw).as_posix())
                continue
        normalized.append(path.as_posix())
    return normalized


def select(
    test_map: TestMap,
    root: Path,
    changed: Iterable[str],
    map_path: str = DEFAULT_MAP_PATH,
) -> Selection:
    """Turn a changed-path list into the minimal sound test subset.

    Every fallback to the full suite carries a reason; callers surface
    them so a surprising full run is explainable.
    """
    root = Path(root)
    changed_paths = _normalize_changed(changed, root)
    selection = Selection(
        mode="subset",
        changed=changed_paths,
        total_tests=len(test_map.tests),
    )

    if test_map.scanner_version != SCANNER_VERSION:
        return _full(
            selection,
            f"map built by scanner v{test_map.scanner_version}, "
            f"current is v{SCANNER_VERSION}",
        )

    fresh = current_fingerprints(root)
    if fresh != test_map.fingerprints:
        added = sorted(set(fresh) - set(test_map.fingerprints))
        removed = sorted(set(test_map.fingerprints) - set(fresh))
        drifted = sorted(
            p
            for p in set(fresh) & set(test_map.fingerprints)
            if fresh[p] != test_map.fingerprints[p]
        )
        detail = "; ".join(
            f"{label}: {', '.join(paths[:3])}"
            f"{'…' if len(paths) > 3 else ''}"
            for label, paths in (
                ("added", added),
                ("removed", removed),
                ("imports changed", drifted),
            )
            if paths
        )
        return _full(selection, f"map is stale ({detail})")

    path_to_module = {
        info["path"]: name for name, info in test_map.modules.items()
    }
    global_modules = set(test_map.global_modules)
    selected: Set[str] = set()

    for path in changed_paths:
        if path in INERT_FILES:
            continue
        if Path(path).name == "conftest.py":
            return _full(selection, f"{path}: conftest/fixture edit")
        if (
            path in CI_CONFIG_FILES
            or path.startswith(CI_CONFIG_PREFIXES)
        ):
            return _full(
                selection,
                f"{path}: CI/deployment config — selection cannot "
                "model how the suite is invoked, full run by policy",
            )
        if path in test_map.tests:
            selected.add(path)
            continue
        if path == map_path:
            known = [t for t in MAP_TESTS if t in test_map.tests]
            if known:
                selected.update(known)
                continue
            return _full(selection, f"{path}: map edited, no map tests")
        if path.startswith("tests/regressions/"):
            known = [t for t in REGRESSION_TESTS if t in test_map.tests]
            if known:
                selected.update(known)
                continue
            return _full(
                selection, f"{path}: regression corpus edit, no "
                "replay test in map"
            )
        if path.startswith("tests/"):
            return _full(
                selection, f"{path}: unmapped test-support file"
            )
        if path.endswith(".md"):
            if DOCS_TEST in test_map.tests:
                selected.add(DOCS_TEST)
                continue
            return _full(selection, f"{path}: docs edit, no docs test")
        module = path_to_module.get(path)
        if module is None and path.startswith("src/"):
            # Package data (e.g. corpus manifests): attribute the
            # change to the deepest enclosing package.
            module = _enclosing_package(path, path_to_module)
        if module is not None:
            if module in global_modules:
                return _full(
                    selection,
                    f"{path}: module {module} is a conftest dependency",
                )
            selected.update(test_map.module_tests.get(module, ()))
            continue
        return _full(selection, f"{path}: unmapped file")

    selection.tests = sorted(selected)
    return selection


def _enclosing_package(
    path: str, path_to_module: Dict[str, str]
) -> Optional[str]:
    parent = Path(path).parent
    while parent.parts and parent.parts[0] == "src":
        init = (parent / "__init__.py").as_posix()
        if init in path_to_module:
            return path_to_module[init]
        parent = parent.parent
    return None


def _full(selection: Selection, reason: str) -> Selection:
    selection.mode = "full"
    selection.tests = []
    selection.reasons.append(reason)
    return selection


# -- drift check --------------------------------------------------------------


def check_drift(committed: TestMap, fresh: TestMap) -> List[str]:
    """Human-readable differences between the committed map and a
    fresh build (empty list == no drift)."""
    problems = []
    if committed.scanner_version != fresh.scanner_version:
        problems.append(
            f"scanner version drift: map v{committed.scanner_version}, "
            f"current v{fresh.scanner_version}"
        )
    old, new = committed.fingerprints, fresh.fingerprints
    for path in sorted(set(new) - set(old)):
        problems.append(f"not in committed map: {path}")
    for path in sorted(set(old) - set(new)):
        problems.append(f"committed map names a missing file: {path}")
    for path in sorted(set(old) & set(new)):
        if old[path] != new[path]:
            problems.append(f"import structure drifted: {path}")
    if not problems and committed.to_dict() != fresh.to_dict():
        problems.append(
            "fingerprints agree but derived tables differ (map built "
            "by an older tool?) — rebuild with 'rehearsal testmap "
            "build'"
        )
    return problems
