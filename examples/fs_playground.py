#!/usr/bin/env python3
"""Working with the FS language and the symbolic engine directly.

The analyses in this library are defined over FS — the small imperative
language of filesystem operations from the paper's §3.2 — not over
Puppet.  That makes the engine reusable for any tool that manipulates
machine state: this example builds FS programs by hand, runs them
concretely, checks equivalences the paper discusses, and inspects a
counterexample model produced by the SAT backend.

Run:  python examples/fs_playground.py
"""

from repro.analysis import (
    check_commutes_semantically,
    check_equivalence,
    check_idempotence_expr,
    exprs_commute,
)
from repro.fs import (
    ERR,
    ID,
    FileSystem,
    Path,
    creat,
    dir_,
    emptydir_,
    eval_expr,
    ite,
    mkdir,
    seq,
)
from repro.fs.pretty import expr_to_str
from repro.resources import guarded_mkdir


def main() -> None:
    # --- build and run a program concretely ------------------------------
    program = seq(
        mkdir("/srv"),
        mkdir("/srv/app"),
        creat("/srv/app/config.ini", "port=8080"),
    )
    print("Program:")
    print(expr_to_str(program))
    out = eval_expr(program, FileSystem.empty())
    print("\nFinal state from the empty filesystem:")
    print(out.pretty())

    # --- the paper's §4.2 completeness subtlety --------------------------
    p = Path.of("/a")
    e1 = ite(emptydir_(p), ID, ERR)
    e2 = ite(dir_(p), ID, ERR)
    print("\nIs `if emptydir?(/a)` equivalent to `if dir?(/a)`?")
    res = check_equivalence(e1, e2)
    print(f"equivalent: {res.equivalent}")
    print("counterexample filesystem (note the witness child inside /a):")
    print(res.witness_fs.pretty())
    # The engine found it because the logical domain includes a fresh
    # child for every emptiness observation (Fig. 8).

    # --- commutativity: syntactic vs semantic ----------------------------
    pkg_style_1 = seq(guarded_mkdir(Path.of("/usr")), creat("/usr/one", "1"))
    pkg_style_2 = seq(guarded_mkdir(Path.of("/usr")), creat("/usr/two", "2"))
    print("\nTwo package-style programs sharing /usr:")
    print(f"  syntactic commutativity check: {exprs_commute(pkg_style_1, pkg_style_2)}")
    print(
        "  semantic check agrees: "
        f"{bool(check_commutes_semantically(pkg_style_1, pkg_style_2))}"
    )
    clobber_1 = creat("/usr/one", "1")
    clobber_2 = seq(mkdir("/usr"), creat("/usr/one", "other"))
    print("Two programs fighting over /usr/one:")
    print(f"  syntactic: {exprs_commute(clobber_1, clobber_2)}")
    print(
        f"  semantic:  {bool(check_commutes_semantically(clobber_1, clobber_2))}"
    )

    # --- idempotence at the FS level --------------------------------------
    print("\nIdempotence of `mkdir(/d)` vs the guarded form:")
    print(f"  mkdir(/d):              {bool(check_idempotence_expr(mkdir('/d')))}")
    print(
        "  if (!dir?(/d)) mkdir:   "
        f"{bool(check_idempotence_expr(guarded_mkdir(Path.of('/d'))))}"
    )


if __name__ == "__main__":
    main()
