"""Catalog-stage rules: well-formedness of the declared resource set
(REH004 duplicate-path-claim, REH007 dangling-reference, REH008
dependency-cycle).  These run before graph construction so they still
fire on catalogs whose graph cannot be built."""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.analysis.lint.diagnostics import Diagnostic, Related, Severity
from repro.analysis.lint.engine import (
    LintContext,
    Rule,
    catalog_checker,
    register_rule,
)
from repro.errors import PuppetEvalError
from repro.fs.paths import Path

register_rule(
    Rule(
        id="REH004",
        name="duplicate-path-claim",
        severity=Severity.ERROR,
        summary="two file resources manage the same path",
        description=(
            "Two distinct file resources resolve to the same "
            "filesystem path. Puppet accepts this (the titles differ) "
            "but the resources overwrite each other, and the final "
            "content depends on apply order — a built-in race."
        ),
    )
)

register_rule(
    Rule(
        id="REH007",
        name="dangling-reference",
        severity=Severity.ERROR,
        summary="ordering constraint names an undeclared resource",
        description=(
            "A before/require/notify/subscribe or chain arrow refers "
            "to a resource that is never declared. The intended "
            "ordering silently does not exist, which is how the "
            "paper's benchmark bugs manifest when a typo breaks an "
            "otherwise-correct dependency."
        ),
    )
)

register_rule(
    Rule(
        id="REH008",
        name="dependency-cycle",
        severity=Severity.ERROR,
        summary="dependency graph has a cycle",
        description=(
            "The resource graph contains a dependency cycle (the "
            "Fig. 3b failure mode); no apply order satisfies it."
        ),
    )
)


@catalog_checker
def duplicate_path_claims(ctx: LintContext) -> Iterable[Diagnostic]:
    catalog = ctx.catalog
    if catalog is None:
        return
    claims: Dict[Path, List] = {}
    for entry in catalog.primitive_resources():
        resource = entry.resource
        if resource.rtype != "file":
            continue
        raw = resource.get_str("path") or resource.title
        try:
            path = Path.of(raw)
        except ValueError:
            continue
        claims.setdefault(path, []).append(entry)
    for path, entries in sorted(claims.items()):
        if len(entries) < 2:
            continue
        entries.sort(key=lambda e: (e.resource.line, e.resource.col))
        first = entries[0]
        for other in entries[1:]:
            yield ctx.diag(
                "REH004",
                f"{other.ref} manages {path}, already managed by "
                f"{first.ref}",
                line=other.resource.line,
                col=other.resource.col,
                resource=str(other.ref),
                related=(
                    Related(
                        f"{first.ref} first claims {path} here",
                        line=first.resource.line,
                        col=first.resource.col,
                    ),
                ),
                paths=(str(path),),
            )


@catalog_checker
def dangling_references(ctx: LintContext) -> Iterable[Diagnostic]:
    catalog = ctx.catalog
    if catalog is None:
        return
    seen: set[Tuple[str, int]] = set()
    for edge in catalog.edges:
        for ref in (edge.source, edge.target):
            try:
                catalog.expand_ref(ref)
            except PuppetEvalError:
                key = (str(ref), edge.line)
                if key in seen:
                    continue
                seen.add(key)
                yield ctx.diag(
                    "REH007",
                    f"ordering constraint references undeclared "
                    f"resource {ref}",
                    line=edge.line,
                    col=edge.col,
                    resource=str(ref),
                )
