"""HTML/SVG rendering of the results DB and the import DAG."""

from pathlib import Path

from repro.core.cli import main as cli_main
from repro.testing.orchestrate.report import (
    DAG_NAME,
    REPORT_NAME,
    render_dag,
    render_html,
    sparkline,
    write_report,
)
from repro.testing.orchestrate.resultsdb import ResultsDB
from repro.testing.orchestrate.resultsdb import TestResult as Result
from repro.testing.orchestrate.testmap import TestMap as Map


def tiny_map() -> Map:
    return Map(
        fingerprints={},
        modules={
            "pkg": {"path": "src/pkg/__init__.py", "deps": []},
            "pkg.core": {"path": "src/pkg/core.py", "deps": ["pkg"]},
            "pkg.extra": {
                "path": "src/pkg/extra.py",
                "deps": ["pkg", "pkg.core"],
            },
        },
        tests={
            "tests/test_core.py": {
                "deps": ["pkg.core"],
                "dynamic": False,
            },
            "tests/test_extra.py": {
                "deps": ["pkg.extra"],
                "dynamic": False,
            },
        },
        conftests=["tests/conftest.py"],
        global_modules=["pkg"],
        module_tests={
            "pkg": ["tests/test_core.py", "tests/test_extra.py"],
            "pkg.core": ["tests/test_core.py", "tests/test_extra.py"],
            "pkg.extra": ["tests/test_extra.py"],
        },
    )


def seeded_db(path) -> ResultsDB:
    db = ResultsDB(path)
    for i, run_id in enumerate(["run-a", "run-b"]):
        db.begin_run(run_id, started_at=1000.0 + i)
        db.record(
            run_id,
            Result(
                nodeid="tests/test_core.py::test_one",
                outcome="passed",
                duration=0.5 + i,
                seed="7",
            ),
        )
        db.record(
            run_id,
            Result(
                nodeid="tests/test_extra.py::test_two",
                outcome="failed" if i else "passed",
                duration=0.25,
            ),
        )
        db.finish_run(run_id, int(bool(i)), finished_at=1005.0 + i)
    return db


class TestSparkline:
    def test_empty_series_renders_a_dash(self):
        assert "svg" not in sparkline([])

    def test_series_renders_polyline_and_last_value(self):
        svg = sparkline([1.0, 2.0, 3.0])
        assert "<polyline" in svg
        assert "3.00s" in svg


class TestHtml:
    def test_report_mentions_runs_modules_and_seeds(self, tmp_path):
        with seeded_db(tmp_path / "r.sqlite") as db:
            html = render_html(db, tiny_map())
        assert "run-a" in html and "run-b" in html
        assert "tests/test_core.py" in html
        assert "<polyline" in html  # the duration trend
        assert ">7<" in html  # recorded seed of the slowest test
        assert DAG_NAME in html  # link to the DAG

    def test_empty_db_renders_without_results(self, tmp_path):
        with ResultsDB(tmp_path / "r.sqlite") as db:
            html = render_html(db)
        assert "no runs recorded" in html


class TestDag:
    def test_dag_has_every_node_and_marks_conftest_deps(self):
        svg = render_dag(tiny_map())
        assert svg.startswith("<svg")
        for label in ("pkg.core", "pkg.extra", "test_core.py"):
            assert label in svg
        # 'pkg' is a conftest dependency: outlined as full-suite
        # trigger.
        assert "stroke-width=\"1.5\"" in svg

    def test_deeper_importers_sit_above_their_deps(self):
        svg = render_dag(tiny_map())
        # Crude but effective: pkg.extra (depth 2) is drawn at a
        # smaller y than pkg (depth 0, bottom layer).
        def node_y(title):
            anchor = svg.index(f"<title>{title}</title>")
            start = svg.rindex("<rect", 0, anchor)
            return float(
                svg[start:anchor].split('y="')[1].split('"')[0]
            )

        assert node_y("pkg.extra") < node_y("pkg")
        assert node_y("tests/test_extra.py") < node_y("pkg.extra")


class TestWriteReport:
    def test_writes_index_and_dag(self, tmp_path):
        seeded_db(tmp_path / "r.sqlite").close()
        map_path = tmp_path / "map.json"
        Map.save(tiny_map(), map_path)
        written = write_report(
            tmp_path / "r.sqlite", tmp_path / "out", map_path=map_path
        )
        names = sorted(p.name for p in written)
        assert names == sorted([REPORT_NAME, DAG_NAME])
        assert (tmp_path / "out" / DAG_NAME).stat().st_size > 0

    def test_missing_map_skips_the_dag(self, tmp_path):
        seeded_db(tmp_path / "r.sqlite").close()
        written = write_report(
            tmp_path / "r.sqlite",
            tmp_path / "out",
            map_path=tmp_path / "absent.json",
        )
        assert [p.name for p in written] == [REPORT_NAME]

    def test_cli_testreport_renders_artifacts(self, tmp_path, capsys):
        seeded_db(tmp_path / "r.sqlite").close()
        map_path = tmp_path / "map.json"
        Map.save(tiny_map(), map_path)
        code = cli_main(
            [
                "testreport",
                "--db",
                str(tmp_path / "r.sqlite"),
                "--out",
                str(tmp_path / "out"),
                "--map",
                str(map_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert REPORT_NAME in out and DAG_NAME in out
        index = (tmp_path / "out" / REPORT_NAME).read_text()
        assert "rehearsal test report" in index
