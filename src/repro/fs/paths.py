"""Absolute filesystem paths for the FS language (paper Fig. 5).

Paths form the grammar ``p ::= / | p/str``.  We represent a path as a
tuple of components so that paths are hashable, totally ordered, and
cheap to compare — the analyses put them in sets and dicts constantly.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator


@dataclass(frozen=True, order=True)
class Path:
    """An absolute path; ``parts`` is empty for the root directory."""

    parts: tuple[str, ...]

    @staticmethod
    def root() -> "Path":
        return _ROOT

    @staticmethod
    def of(text: str) -> "Path":
        """Parse ``/a/b/c`` (trailing slashes and repeats tolerated)."""
        return _parse(text)

    @property
    def name(self) -> str:
        """Last component (the root has the empty name)."""
        if not self.parts:
            return ""
        return self.parts[-1]

    @property
    def is_root(self) -> bool:
        return not self.parts

    def parent(self) -> "Path":
        """Parent directory; the root is its own parent."""
        if not self.parts:
            return self
        return Path(self.parts[:-1])

    def child(self, name: str) -> "Path":
        if not name or "/" in name:
            raise ValueError(f"invalid path component: {name!r}")
        return Path(self.parts + (name,))

    def join(self, relative: str) -> "Path":
        """Append each component of a relative path string."""
        out = self
        for comp in relative.split("/"):
            if comp:
                out = out.child(comp)
        return out

    def ancestors(self) -> Iterator["Path"]:
        """Proper ancestors, nearest first, ending with the root."""
        cur = self
        while not cur.is_root:
            cur = cur.parent()
            yield cur

    def is_ancestor_of(self, other: "Path") -> bool:
        n = len(self.parts)
        return n < len(other.parts) and other.parts[:n] == self.parts

    def is_child_of(self, other: "Path") -> bool:
        return len(self.parts) == len(other.parts) + 1 and (
            self.parts[: len(other.parts)] == other.parts
        )

    def depth(self) -> int:
        return len(self.parts)

    def __str__(self) -> str:
        return "/" + "/".join(self.parts)

    def __repr__(self) -> str:
        return f"Path({str(self)!r})"


_ROOT = Path(())


@lru_cache(maxsize=4096)
def _parse(text: str) -> Path:
    if not text.startswith("/"):
        raise ValueError(f"FS paths must be absolute, got {text!r}")
    parts = tuple(comp for comp in text.split("/") if comp)
    return Path(parts)


def closure_under_parents(paths: set[Path]) -> set[Path]:
    """The set of paths together with every ancestor (excluding the root)."""
    out: set[Path] = set()
    for p in paths:
        out.add(p)
        out.update(a for a in p.ancestors() if not a.is_root)
    return out
