"""The batch-verification service: schema, cache, orchestrator."""

import json
import multiprocessing
import os

import pytest

from repro import DeterminismOptions
from repro.service import (
    BatchReport,
    BatchVerifier,
    ManifestResult,
    VerdictCache,
    cache_key,
    discover_manifests,
    source_digest,
    verify_batch,
)
from repro.service import orchestrator as orch_mod

GOOD = """
file {"/etc/app.conf": content => "x" }
"""

ALSO_GOOD = """
file {"/etc/other.conf": content => "y" }
"""

NONDET = """
file {"/etc/apache2/sites-available/default.conf": content => "z" }
package {"apache2": ensure => present }
"""

BROKEN = """
file {"/etc/app.conf" content
"""


# -- schema -------------------------------------------------------------------


class TestSchema:
    def test_manifest_result_roundtrip(self):
        result = ManifestResult(
            name="a.pp",
            status="ok",
            deterministic=True,
            idempotent=True,
            resource_count=3,
            seconds=0.5,
            solver_seconds=0.2,
            sha256="ab" * 32,
            cache_key="cd" * 32,
        )
        assert ManifestResult.from_dict(result.to_dict()) == result

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown"):
            ManifestResult.from_dict({"name": "x", "status": "ok", "zz": 1})

    def test_from_dict_rejects_bad_status(self):
        with pytest.raises(ValueError, match="status"):
            ManifestResult.from_dict({"name": "x", "status": "maybe"})

    def test_from_dict_rejects_non_dict(self):
        with pytest.raises(ValueError):
            ManifestResult.from_dict(["not", "a", "dict"])

    def test_batch_report_counts_and_json(self):
        report = BatchReport(
            results=[
                ManifestResult(name="a", status="ok"),
                ManifestResult(name="b", status="failed"),
                ManifestResult(name="c", status="error", error="boom"),
            ],
            workers=2,
        )
        assert report.ok_count == 1
        assert report.failed_count == 1
        assert report.error_count == 1
        payload = json.loads(report.to_json())
        assert payload["summary"]["manifests"] == 3
        restored = BatchReport.from_dict(payload)
        assert [r.name for r in restored.results] == ["a", "b", "c"]
        assert restored.result_for("c").error == "boom"


# -- cache keys ---------------------------------------------------------------


class TestCacheKey:
    def test_key_changes_with_source(self):
        assert cache_key(GOOD) != cache_key(ALSO_GOOD)

    def test_key_changes_with_options(self):
        assert cache_key(GOOD) != cache_key(
            GOOD, options=DeterminismOptions(use_pruning=False)
        )

    def test_key_changes_with_platform_and_node(self):
        assert cache_key(GOOD) != cache_key(GOOD, platform="centos")
        assert cache_key(GOOD) != cache_key(GOOD, node_name="web")

    def test_key_changes_with_version(self):
        assert cache_key(GOOD) != cache_key(GOOD, version="0.0.0-other")

    def test_key_changes_with_package_modeling_knobs(self):
        # --strict-packages and snapshot semantics change verdicts, so
        # they must change the key (a strict run must never be served a
        # verdict computed with package synthesis on, and vice versa).
        assert cache_key(GOOD) != cache_key(GOOD, synthesize_packages=False)
        assert cache_key(GOOD) != cache_key(
            GOOD, package_semantics="snapshot"
        )

    def test_key_is_stable(self):
        assert cache_key(GOOD) == cache_key(GOOD)

    def test_source_digest_is_plain_sha256(self):
        import hashlib

        assert source_digest("abc") == hashlib.sha256(b"abc").hexdigest()


# -- the verdict cache on disk ------------------------------------------------


class TestVerdictCache:
    def test_miss_then_hit(self, tmp_path):
        cache = VerdictCache(tmp_path)
        key = cache_key(GOOD)
        assert cache.get(key) is None
        assert cache.misses == 1
        cache.put(key, ManifestResult(name="a.pp", status="ok"))
        stored = cache.get(key)
        assert stored is not None and stored.status == "ok"
        assert cache.hits == 1
        assert len(cache) == 1

    def test_corrupted_entry_recovers_as_miss(self, tmp_path):
        cache = VerdictCache(tmp_path)
        key = cache_key(GOOD)
        cache.directory.mkdir(parents=True, exist_ok=True)
        entry = cache.directory / f"{key}.json"
        entry.write_text("{ not json at all", encoding="utf8")
        assert cache.get(key) is None
        assert cache.corrupted == 1
        assert cache.misses == 1
        assert not entry.exists(), "corrupted entry must be evicted"

    def test_entry_with_wrong_key_is_corrupted(self, tmp_path):
        cache = VerdictCache(tmp_path)
        key = cache_key(GOOD)
        cache.put(key, ManifestResult(name="a.pp", status="ok"))
        entry = cache.directory / f"{key}.json"
        payload = json.loads(entry.read_text())
        payload["key"] = "somebody-else"
        entry.write_text(json.dumps(payload), encoding="utf8")
        assert cache.get(key) is None
        assert cache.corrupted == 1

    @pytest.mark.parametrize("payload", ["[1, 2]", "null", '"a string"'])
    def test_valid_json_that_is_not_an_object_is_corrupted(
        self, tmp_path, payload
    ):
        cache = VerdictCache(tmp_path)
        key = cache_key(GOOD)
        cache.directory.mkdir(parents=True, exist_ok=True)
        (cache.directory / f"{key}.json").write_text(payload, encoding="utf8")
        assert cache.get(key) is None
        assert cache.corrupted == 1

    def test_unwritable_directory_degrades_to_cache_off(self, tmp_path):
        # The "directory" is actually a file, so every write fails;
        # put() must swallow that — a full batch must not die on it.
        blocker = tmp_path / "blocker"
        blocker.write_text("in the way")
        cache = VerdictCache(blocker / "cache")
        cache.put(cache_key(GOOD), ManifestResult(name="a", status="ok"))
        assert cache.write_errors == 1
        assert cache.get(cache_key(GOOD)) is None
        # ... and the degradation is visible in the batch report.
        report = BatchVerifier(cache=cache).verify_sources([("a.pp", GOOD)])
        assert report.cache.write_errors == 1
        assert report.results[0].ok

    def test_clear_sweeps_orphaned_temp_files(self, tmp_path):
        cache = VerdictCache(tmp_path)
        cache.put(cache_key(GOOD), ManifestResult(name="a", status="ok"))
        orphan = cache.directory / "deadbeef.tmp.12345"
        orphan.write_text("interrupted write")
        assert cache.clear() == 1
        assert not orphan.exists()

    def test_entry_with_bad_result_schema_is_corrupted(self, tmp_path):
        cache = VerdictCache(tmp_path)
        key = cache_key(GOOD)
        entry = cache.directory / f"{key}.json"
        cache.directory.mkdir(parents=True, exist_ok=True)
        entry.write_text(
            json.dumps({"key": key, "result": {"status": "nonsense"}}),
            encoding="utf8",
        )
        assert cache.get(key) is None
        assert cache.corrupted == 1

    def test_clear(self, tmp_path):
        cache = VerdictCache(tmp_path)
        cache.put(cache_key(GOOD), ManifestResult(name="a", status="ok"))
        cache.put(cache_key(ALSO_GOOD), ManifestResult(name="b", status="ok"))
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_clear_does_not_count_undeletable_entries(self, tmp_path):
        cache = VerdictCache(tmp_path)
        cache.put(cache_key(GOOD), ManifestResult(name="a", status="ok"))
        # A directory masquerading as an entry cannot be unlink()ed.
        (cache.directory / "stuck.json").mkdir()
        assert cache.clear() == 1


# -- discovery ----------------------------------------------------------------


class TestDiscovery:
    def test_directory_is_recursive_and_sorted(self, tmp_path):
        (tmp_path / "b.pp").write_text(GOOD)
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "a.pp").write_text(GOOD)
        (tmp_path / "notes.txt").write_text("not a manifest")
        found = discover_manifests(tmp_path)
        assert [p.name for p in found] == ["b.pp", "a.pp"]
        assert found == sorted(found)

    def test_single_file(self, tmp_path):
        manifest = tmp_path / "one.pp"
        manifest.write_text(GOOD)
        assert discover_manifests(manifest) == [manifest]

    def test_missing_target_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            discover_manifests(tmp_path / "nope")


# -- the orchestrator ---------------------------------------------------------


class TestBatchVerifier:
    def test_serial_batch_verdicts(self, tmp_path):
        verifier = BatchVerifier(cache=VerdictCache(tmp_path / "c"))
        report = verifier.verify_sources(
            [("good.pp", GOOD), ("nondet.pp", NONDET), ("broken.pp", BROKEN)]
        )
        assert [r.name for r in report.results] == [
            "good.pp",
            "nondet.pp",
            "broken.pp",
        ]
        assert report.result_for("good.pp").ok
        assert report.result_for("nondet.pp").status == "failed"
        assert report.result_for("nondet.pp").deterministic is False
        assert report.result_for("broken.pp").status == "error"
        assert report.ok_count == 1
        assert report.failed_count == 1
        assert report.error_count == 1
        assert report.cache.misses == 3 and report.cache.hits == 0

    def test_second_run_hits_cache_without_solving(self, tmp_path):
        cache = VerdictCache(tmp_path / "c")
        verifier = BatchVerifier(cache=cache)
        sources = [("good.pp", GOOD), ("nondet.pp", NONDET)]
        first = verifier.verify_sources(sources)
        assert first.cache.misses == 2
        second = verifier.verify_sources(sources)
        assert second.cache.hits == 2 and second.cache.misses == 0
        assert all(r.cached for r in second.results)
        assert second.solver_seconds == 0.0
        # Verdicts survive the round trip through the cache.
        assert second.result_for("good.pp").ok
        assert second.result_for("nondet.pp").status == "failed"

    def test_budget_exhaustion_is_reported_and_cached(self, tmp_path):
        # A blown analysis budget is a function of (manifest, options),
        # so it is a reportable, cacheable verdict — the most expensive
        # manifest in a fleet must not re-burn its budget every run.
        options = DeterminismOptions(max_branches=1)
        verifier = BatchVerifier(
            options=options, cache=VerdictCache(tmp_path / "c")
        )
        report = verifier.verify_sources([("nondet.pp", NONDET)])
        row = report.results[0]
        assert row.status == "error"
        assert "branches" in row.error
        assert "internal failure" not in row.error
        second = verifier.verify_sources([("nondet.pp", NONDET)])
        assert second.cache.hits == 1

    def test_wall_clock_timeouts_are_not_cached(self, tmp_path):
        # Unlike the exploration budget, a wall-clock timeout depends
        # on machine load — a momentarily slow run must not freeze into
        # a permanent cached error.
        options = DeterminismOptions(timeout_seconds=1e-9)
        cache = VerdictCache(tmp_path / "c")
        verifier = BatchVerifier(options=options, cache=cache)
        report = verifier.verify_sources([("nondet.pp", NONDET)])
        row = report.results[0]
        assert row.status == "error"
        assert "timed out" in row.error
        assert row.error_transient
        assert len(cache) == 0
        second = verifier.verify_sources([("nondet.pp", NONDET)])
        assert second.cache.hits == 0 and not second.results[0].cached

    def test_error_verdicts_are_cached_too(self, tmp_path):
        # A parse error is as much a function of the source as a real
        # verdict; re-running an unchanged broken fleet is also fast.
        verifier = BatchVerifier(cache=VerdictCache(tmp_path / "c"))
        verifier.verify_sources([("broken.pp", BROKEN)])
        second = verifier.verify_sources([("broken.pp", BROKEN)])
        assert second.cache.hits == 1
        assert second.result_for("broken.pp").status == "error"

    def test_strict_packages_run_is_not_served_a_lenient_verdict(
        self, tmp_path
    ):
        source = 'package {"no-such-pkg-xyz": ensure => present }\n'
        cache = VerdictCache(tmp_path / "c")
        lenient = BatchVerifier(cache=cache, synthesize_packages=True)
        assert lenient.verify_sources([("m.pp", source)]).results[0].ok
        strict = BatchVerifier(cache=cache, synthesize_packages=False)
        report = strict.verify_sources([("m.pp", source)])
        assert report.cache.hits == 0, "different modeling, different key"
        assert report.results[0].status == "error"

    def test_internal_failures_are_not_cached(self, tmp_path, monkeypatch):
        from repro.core import pipeline as pipeline_mod

        def explode(self, source, name="<manifest>"):
            raise RuntimeError("transient breakage")

        monkeypatch.setattr(pipeline_mod.Rehearsal, "verify", explode)
        cache = VerdictCache(tmp_path / "c")
        report = BatchVerifier(cache=cache).verify_sources([("m.pp", GOOD)])
        assert report.results[0].status == "error"
        assert "internal failure" in report.results[0].error
        assert len(cache) == 0, "circumstantial errors must be retried"

    def test_hit_is_relabeled_for_new_path(self, tmp_path):
        # Content-addressed: the same source under a different name is
        # still a hit, reported under the *new* name.
        verifier = BatchVerifier(cache=VerdictCache(tmp_path / "c"))
        verifier.verify_sources([("old-name.pp", GOOD)])
        report = verifier.verify_sources([("new-name.pp", GOOD)])
        assert report.cache.hits == 1
        assert report.results[0].name == "new-name.pp"
        assert report.results[0].cached

    def test_cache_disabled(self):
        verifier = BatchVerifier(cache=None)
        report = verifier.verify_sources([("good.pp", GOOD)] )
        assert not report.cache.enabled
        assert report.cache.hits == 0 and report.cache.misses == 0
        second = verifier.verify_sources([("good.pp", GOOD)])
        assert not second.results[0].cached

    def test_corrupted_entry_is_recomputed_and_counted(self, tmp_path):
        cache = VerdictCache(tmp_path / "c")
        verifier = BatchVerifier(cache=cache)
        verifier.verify_sources([("good.pp", GOOD)])
        key = cache_key(GOOD)
        entry = cache.directory / f"{key}.json"
        entry.write_text("garbage", encoding="utf8")
        report = verifier.verify_sources([("good.pp", GOOD)])
        assert report.cache.corrupted == 1
        assert report.cache.misses == 1
        assert report.results[0].ok and not report.results[0].cached
        # ... and the recomputed verdict was re-cached.
        third = verifier.verify_sources([("good.pp", GOOD)])
        assert third.cache.hits == 1

    def test_truncated_entry_mid_batch_pins_full_ledger(self, tmp_path):
        # A cache entry cut off mid-JSON (torn write, full disk) must
        # cost exactly one recompute — zero error rows — while the
        # rest of the batch is served from the cache.  Pin the whole
        # BatchReport ledger.
        cache = VerdictCache(tmp_path / "c")
        verifier = BatchVerifier(cache=cache)
        sources = [("good.pp", GOOD), ("also.pp", ALSO_GOOD)]
        verifier.verify_sources(sources)
        entry = cache.directory / f"{cache_key(GOOD)}.json"
        full = entry.read_text(encoding="utf8")
        entry.write_text(full[: len(full) // 2], encoding="utf8")

        report = verifier.verify_sources(sources)
        assert [r.status for r in report.results] == ["ok", "ok"]
        assert report.error_count == 0
        assert report.cache.corrupted == 1
        assert report.cache.misses == 1  # only the truncated entry
        assert report.cache.hits == 1  # the intact one still serves
        assert report.cache.read_errors == 0
        assert report.cache.write_errors == 0
        good, also = report.results
        assert not good.cached, "truncated entry must be recomputed"
        assert also.cached
        # The recomputed verdict replaced the truncated entry.
        assert verifier.verify_sources(sources).cache.hits == 2

    def test_parallel_batch_matches_serial(self, tmp_path):
        sources = [
            ("good.pp", GOOD),
            ("also.pp", ALSO_GOOD),
            ("nondet.pp", NONDET),
            ("broken.pp", BROKEN),
        ]
        serial = BatchVerifier(cache=None).verify_sources(sources)
        parallel = BatchVerifier(cache=None, workers=3).verify_sources(sources)
        assert parallel.workers == 3
        for left, right in zip(serial.results, parallel.results):
            assert (left.name, left.status, left.deterministic) == (
                right.name,
                right.status,
                right.deterministic,
            )

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            BatchVerifier(workers=0)

    def test_verify_paths_and_directory(self, tmp_path):
        (tmp_path / "a.pp").write_text(GOOD)
        (tmp_path / "b.pp").write_text(NONDET)
        report = BatchVerifier(cache=None).verify_directory(tmp_path)
        assert len(report.results) == 2
        assert report.result_for(str(tmp_path / "a.pp")).ok

    def test_unreadable_manifest_is_one_error_row(self, tmp_path):
        (tmp_path / "a.pp").write_text(GOOD)
        (tmp_path / "bad.pp").write_bytes(b"\xff\xfe not utf8 \xff")
        report = BatchVerifier(cache=None).verify_directory(tmp_path)
        assert report.result_for(str(tmp_path / "a.pp")).ok
        bad = report.result_for(str(tmp_path / "bad.pp"))
        assert bad.status == "error"
        assert "cannot read manifest" in bad.error

    def test_identical_sources_are_verified_once(self, tmp_path):
        # A fleet sharing one template: one solver run, N rows.
        calls = []
        real = orch_mod._verify_one

        def counting(job):
            calls.append(job.name)
            return real(job)

        import unittest.mock

        with unittest.mock.patch.object(orch_mod, "_verify_one", counting):
            report = BatchVerifier(cache=None).verify_sources(
                [("host1.pp", GOOD), ("host2.pp", GOOD), ("host3.pp", GOOD)]
            )
        assert len(calls) == 1
        assert [r.name for r in report.results] == [
            "host1.pp",
            "host2.pp",
            "host3.pp",
        ]
        assert all(r.ok for r in report.results)
        # Aggregate solver time is not triple-counted for duplicates,
        # and dedup copies are labeled as such, not as solver runs.
        assert report.solver_seconds == report.results[0].solver_seconds
        assert [r.deduplicated for r in report.results] == [
            False,
            True,
            True,
        ]

    def test_pool_broken_during_submission_degrades_to_error_rows(
        self, monkeypatch
    ):
        # A worker crash can break the pool while jobs are still being
        # submitted; submit() itself then raises.  Everything must
        # still come back as rows, never as an exception.
        from concurrent.futures.process import BrokenProcessPool

        class AlwaysBrokenPool:
            def __init__(self, max_workers):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc_info):
                return False

            def submit(self, fn, *args):
                raise BrokenProcessPool("pool is toast")

        monkeypatch.setattr(
            orch_mod, "ProcessPoolExecutor", AlwaysBrokenPool
        )
        report = BatchVerifier(cache=None, workers=2).verify_sources(
            [("a.pp", GOOD), ("b.pp", ALSO_GOOD)]
        )
        assert [r.status for r in report.results] == ["error", "error"]
        assert all(
            "worker process died" in r.error for r in report.results
        )

    def test_unreadable_cache_storage_is_counted(self, tmp_path):
        cache = VerdictCache(tmp_path)
        key = cache_key(GOOD)
        cache.put(key, ManifestResult(name="a", status="ok"))
        entry = cache.directory / f"{key}.json"
        entry.unlink()
        entry.mkdir()  # read_text now raises IsADirectoryError
        assert cache.get(key) is None
        assert cache.read_errors == 1 and cache.misses == 1

    def test_sys_exit_in_the_pipeline_is_an_error_row(self, monkeypatch):
        import sys

        from repro.core import pipeline as pipeline_mod

        def bail(self, source, name="<manifest>"):
            sys.exit(3)

        monkeypatch.setattr(pipeline_mod.Rehearsal, "verify", bail)
        report = BatchVerifier(cache=None).verify_sources([("m.pp", GOOD)])
        assert report.results[0].status == "error"
        assert "SystemExit" in report.results[0].error

    def test_verify_batch_convenience(self, tmp_path):
        (tmp_path / "a.pp").write_text(GOOD)
        report = verify_batch(
            tmp_path, workers=1, cache_dir=tmp_path / "cache"
        )
        assert report.ok_count == 1
        second = verify_batch(
            tmp_path, workers=1, cache_dir=tmp_path / "cache"
        )
        assert second.cache.hits == 1

    def test_verify_batch_accepts_path_list(self, tmp_path):
        a = tmp_path / "a.pp"
        a.write_text(GOOD)
        report = verify_batch([a], use_cache=False)
        assert len(report.results) == 1 and report.results[0].ok


# -- worker-crash isolation ---------------------------------------------------

_REAL_VERIFY_ONE = orch_mod._verify_one


def _crash_prone_verify_one(job):
    """Stand-in worker that hard-kills its process for marked sources —
    simulating a segfault/OOM kill that no try/except can catch."""
    if "CRASH-ME" in job.source:
        os._exit(13)
    return _REAL_VERIFY_ONE(job)


@pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="monkeypatched worker function requires fork inheritance",
)
class TestWorkerCrashIsolation:
    def test_one_dead_worker_does_not_sink_the_batch(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(orch_mod, "_verify_one", _crash_prone_verify_one)
        verifier = BatchVerifier(
            cache=VerdictCache(tmp_path / "c"), workers=2
        )
        report = verifier.verify_sources(
            [
                ("good.pp", GOOD),
                ("killer.pp", "# CRASH-ME\n" + GOOD),
                ("also.pp", ALSO_GOOD),
            ]
        )
        assert [r.name for r in report.results] == [
            "good.pp",
            "killer.pp",
            "also.pp",
        ]
        killer = report.result_for("killer.pp")
        assert killer.status == "error"
        assert "worker process died" in killer.error
        # The innocent manifests still verified.
        assert report.result_for("good.pp").ok
        assert report.result_for("also.pp").ok

    def test_crash_results_are_not_cached(self, tmp_path, monkeypatch):
        monkeypatch.setattr(orch_mod, "_verify_one", _crash_prone_verify_one)
        cache = VerdictCache(tmp_path / "c")
        verifier = BatchVerifier(cache=cache, workers=2)
        source = "# CRASH-ME\n" + GOOD
        verifier.verify_sources([("killer.pp", source), ("good.pp", GOOD)])
        # The good verdict was cached, the crash placeholder was not.
        assert len(cache) == 1
        report = verifier.verify_sources(
            [("killer.pp", source), ("good.pp", GOOD)]
        )
        assert report.result_for("good.pp").cached
        assert report.result_for("killer.pp").status == "error"

    def test_mid_batch_death_costs_exactly_one_error_row(
        self, tmp_path, monkeypatch
    ):
        # The full BatchReport ledger for a worker dying mid-batch:
        # one error row for the killer, every other manifest verified,
        # and the cache sees exactly one store per surviving verdict.
        monkeypatch.setattr(orch_mod, "_verify_one", _crash_prone_verify_one)
        cache = VerdictCache(tmp_path / "c")
        verifier = BatchVerifier(cache=cache, workers=2)
        sources = [
            ("one.pp", GOOD),
            ("killer.pp", "# CRASH-ME\n" + GOOD),
            ("two.pp", ALSO_GOOD),
            ("three.pp", NONDET),
        ]
        report = verifier.verify_sources(sources)
        assert len(report.results) == 4
        assert report.error_count == 1
        assert report.ok_count == 2
        assert report.failed_count == 1  # NONDET verified, negatively
        assert report.cache.hits == 0
        assert report.cache.misses == 4
        assert report.cache.corrupted == 0
        killer = report.result_for("killer.pp")
        assert killer.status == "error"
        assert "worker process died" in killer.error
        # The three real verdicts were cached; the crash row was not.
        assert len(cache) == 3
