"""Tests for the §5 checks: equivalence, idempotence, invariants."""

import networkx as nx
import pytest

from repro.analysis import (
    check_commutes_semantically,
    check_equivalence,
    check_idempotence,
    check_idempotence_expr,
    check_invariant,
    ensures_absent,
    ensures_directory,
    ensures_file,
    ensures_present,
)
from repro.fs import (
    ERR,
    ERROR,
    ID,
    FileSystem,
    Path,
    cp,
    creat,
    dir_,
    eval_expr,
    file_,
    file_with,
    ite,
    mkdir,
    none_,
    rm,
    seq,
)
from repro.resources import Resource, ResourceCompiler


class TestEquivalence:
    def test_id_equivalences(self):
        assert check_equivalence(ID, seq(ID, ID)).equivalent

    def test_mkdir_with_redundant_check(self):
        p = Path.of("/d")
        e1 = seq(mkdir(p), ite(dir_(p), ID, ERR))
        assert check_equivalence(e1, mkdir(p)).equivalent

    def test_creat_contents_matter(self):
        res = check_equivalence(creat("/f", "a"), creat("/f", "b"))
        assert not res.equivalent
        assert eval_expr(creat("/f", "a"), res.witness_fs) != eval_expr(
            creat("/f", "b"), res.witness_fs
        )

    def test_semantic_commute(self):
        assert check_commutes_semantically(
            creat("/f", "x"), creat("/g", "y")
        ).equivalent

    def test_semantic_non_commute(self):
        res = check_commutes_semantically(mkdir("/a"), creat("/a/f", "x"))
        assert not res.equivalent

    def test_same_definitive_write_both_orders(self):
        """Two idempotent file-sets of the same content commute even
        though the syntactic check cannot prove it (§3.3 ssh keys)."""
        def set_marker():
            p = Path.of("/m")
            return ite(
                file_with(p, "k"),
                ID,
                seq(ite(file_(p), rm(p), ID), creat(p, "k")),
            )

        assert check_commutes_semantically(set_marker(), set_marker())


class TestIdempotence:
    def test_guarded_mkdir_idempotent(self):
        from repro.resources import guarded_mkdir

        assert check_idempotence_expr(guarded_mkdir(Path.of("/d"))).idempotent

    def test_bare_mkdir_not_idempotent(self):
        res = check_idempotence_expr(mkdir("/d"))
        assert not res.idempotent
        # Witness: a state where one run succeeds but two runs error.
        w = res.witness_fs
        once = eval_expr(mkdir("/d"), w)
        twice = eval_expr(seq(mkdir("/d"), mkdir("/d")), w)
        assert once != twice

    def test_fig3d_copy_then_delete(self):
        """file{'/dst': source => '/src'} -> file{'/src': absent}:
        the second run always fails (paper Fig. 3d)."""
        compiler = ResourceCompiler()
        copy = compiler.compile(Resource("file", "/dst", {"source": "/src"}))
        delete = compiler.compile(Resource("file", "/src", {"ensure": "absent"}))
        e = seq(copy, delete)
        res = check_idempotence_expr(e)
        assert not res.idempotent

    def test_file_resource_idempotent(self):
        compiler = ResourceCompiler()
        e = compiler.compile(Resource("file", "/f", {"content": "x"}))
        assert check_idempotence_expr(e).idempotent

    def test_package_resource_idempotent(self):
        compiler = ResourceCompiler()
        e = compiler.compile(Resource("package", "m4", {}))
        assert check_idempotence_expr(e).idempotent

    def test_graph_level_idempotence(self):
        compiler = ResourceCompiler()
        programs = {
            "pkg": compiler.compile(Resource("package", "ntp", {})),
            "conf": compiler.compile(
                Resource("file", "/etc/ntp.conf", {"content": "pool x"})
            ),
        }
        g = nx.DiGraph()
        g.add_nodes_from(programs)
        g.add_edge("pkg", "conf")
        assert check_idempotence(g, programs).idempotent


class TestInvariants:
    def test_creat_ensures_file(self):
        e = creat("/f", "x")
        assert check_invariant(e, ensures_file(Path.of("/f"), "x")).holds

    def test_overwritten_invariant_fails(self):
        """A later resource clobbers the declared file (§5)."""
        e = seq(
            creat("/f", "declared"),
            rm("/f"),
            creat("/f", "clobbered"),
        )
        res = check_invariant(e, ensures_file(Path.of("/f"), "declared"))
        assert not res.holds
        assert res.witness_fs is not None

    def test_mkdir_ensures_directory(self):
        assert check_invariant(mkdir("/d"), ensures_directory(Path.of("/d"))).holds

    def test_rm_ensures_absent(self):
        assert check_invariant(rm("/f"), ensures_absent(Path.of("/f"))).holds

    def test_untouched_path_not_ensured(self):
        e = creat("/f", "x")
        res = check_invariant(
            e,
            ensures_present(Path.of("/g")),
            extra_paths=(Path.of("/g"),),
        )
        assert not res.holds

    def test_fig3c_inconsistency_via_invariant(self):
        """Deterministic fix of Fig. 3c: perl removed before go is
        installed — but installing go reinstalls perl, so the manifest
        never achieves 'perl absent'. The invariant check rejects it."""
        from repro.resources.package import marker_path

        compiler = ResourceCompiler()
        remove_perl = compiler.compile(
            Resource("package", "perl", {"ensure": "absent"})
        )
        install_go = compiler.compile(
            Resource("package", "golang-go", {"ensure": "present"})
        )
        e = seq(remove_perl, install_go)  # the Package['perl'] -> edge
        res = check_invariant(e, ensures_absent(marker_path("perl")))
        assert not res.holds
