"""Extended Puppet language feature tests: arithmetic, selectors,
functions, plusignment, hashes, and corner cases of the evaluator."""

import pytest

from repro.errors import PuppetEvalError
from repro.puppet import evaluate_manifest


class TestArithmeticAndComparison:
    def test_arithmetic(self):
        catalog = evaluate_manifest(
            """
            $x = 2 + 3 * 4
            file{"/n-${x}": content => 'x' }
            """
        )
        assert catalog.has("file", "/n-14")

    def test_division_integral(self):
        catalog = evaluate_manifest(
            '$x = 10 / 2 file{"/n-$x": content => "x" }'
        )
        assert catalog.has("file", "/n-5")

    def test_division_by_zero(self):
        with pytest.raises(PuppetEvalError, match="division"):
            evaluate_manifest("$x = 1 / 0")

    def test_modulo(self):
        catalog = evaluate_manifest(
            '$x = 7 % 3 file{"/n-$x": content => "x" }'
        )
        assert catalog.has("file", "/n-1")

    def test_comparison_drives_branch(self):
        catalog = evaluate_manifest(
            """
            if $processorcount >= 2 { package{'big': } }
            else { package{'small': } }
            """
        )
        assert catalog.has("package", "big")

    def test_unary_minus(self):
        catalog = evaluate_manifest(
            '$x = -2 + 3 file{"/n-$x": content => "x" }'
        )
        assert catalog.has("file", "/n-1")

    def test_string_numbers_coerce(self):
        catalog = evaluate_manifest(
            """
            $n = '4'
            if $n > 2 { package{'ok': } }
            """
        )
        assert catalog.has("package", "ok")


class TestInOperator:
    def test_in_array(self):
        catalog = evaluate_manifest(
            """
            $oses = ['Ubuntu', 'Debian']
            if $operatingsystem in $oses { package{'apt': } }
            """
        )
        assert catalog.has("package", "apt")

    def test_in_string(self):
        catalog = evaluate_manifest(
            "if 'bun' in 'Ubuntu' { package{'yes': } }"
        )
        assert catalog.has("package", "yes")

    def test_in_hash_keys(self):
        catalog = evaluate_manifest(
            """
            $h = { 'a' => 1 }
            if 'a' in $h { package{'yes': } }
            """
        )
        assert catalog.has("package", "yes")


class TestSelectors:
    def test_no_match_no_default_raises(self):
        with pytest.raises(PuppetEvalError, match="no match"):
            evaluate_manifest(
                "$x = 'zzz' ? { 'a' => 1 }"
            )

    def test_case_insensitive_match(self):
        catalog = evaluate_manifest(
            """
            $pkg = $osfamily ? { 'debian' => 'apt', default => 'yum' }
            package{$pkg: }
            """
        )
        assert catalog.has("package", "apt")


class TestFunctions:
    def test_split_and_join(self):
        catalog = evaluate_manifest(
            """
            $parts = split('a,b,c', ',')
            $joined = join($parts, '-')
            file{"/x-${joined}": content => 'x' }
            """
        )
        assert catalog.has("file", "/x-a-b-c")

    def test_size(self):
        catalog = evaluate_manifest(
            """
            $n = size(['a', 'b', 'c'])
            file{"/n-$n": content => 'x' }
            """
        )
        assert catalog.has("file", "/n-3")

    def test_template_rejected(self):
        with pytest.raises(PuppetEvalError, match="template"):
            evaluate_manifest("$x = template('foo.erb')")

    def test_unknown_function(self):
        with pytest.raises(PuppetEvalError, match="unknown function"):
            evaluate_manifest("$x = frobnicate(1)")

    def test_defined_with_string(self):
        catalog = evaluate_manifest(
            """
            class base { }
            if defined('base') { package{'yes': } }
            """
        )
        assert catalog.has("package", "yes")


class TestAttributesAndHashes:
    def test_hash_attribute_value(self):
        catalog = evaluate_manifest(
            """
            file{'/f': content => 'x', options => { 'a' => 1, 'b' => 2 } }
            """
        )
        opts = catalog.get("file", "/f").resource.get("options")
        assert opts == {"a": 1, "b": 2}

    def test_plusignment_parsed_as_assignment(self):
        # +> (append) is accepted syntactically; semantics collapse to
        # plain assignment in this subset.
        catalog = evaluate_manifest(
            "file{'/f': content => 'x', require +> Package['p'] }"
            " package{'p': }"
        )
        graph = catalog.build_graph()
        assert graph.has_edge("Package['p']", "File['/f']")

    def test_quoted_attribute_names(self):
        catalog = evaluate_manifest(
            "file{'/f': 'content' => 'x' }"
        )
        assert catalog.get("file", "/f").resource.get_str("content") == "x"


class TestUnlessAndRequireFunction:
    def test_unless_else(self):
        catalog = evaluate_manifest(
            """
            unless $osfamily == 'Debian' { package{'rpm-tools': } }
            else { package{'deb-tools': } }
            """
        )
        assert catalog.has("package", "deb-tools")

    def test_require_function_includes_and_orders(self):
        catalog = evaluate_manifest(
            """
            class deps { package{'lib': } }
            class app {
              require deps
              package{'app-server': }
            }
            include app
            """
        )
        graph = catalog.build_graph()
        assert graph.has_edge("Package['lib']", "Package['app-server']")


class TestMessages:
    def test_notice_warning_info(self):
        from repro.puppet import Evaluator, parse_manifest

        ev = Evaluator()
        ev.evaluate(
            parse_manifest(
                "notice('a') warning('b') info('c')"
            )
        )
        assert len(ev.messages) == 3

    def test_interpolated_notice(self):
        from repro.puppet import Evaluator, parse_manifest

        ev = Evaluator()
        ev.evaluate(parse_manifest('$x = 5 notice("value $x")'))
        assert ev.messages == ["notice: value 5"]
