"""Unit tests for runtime values, interpolation, and scoping."""

import pytest

from repro.errors import PuppetEvalError
from repro.puppet.scope import Scope, ScopeStack
from repro.puppet.values import (
    RefValue,
    interpolate,
    to_display,
    truthy,
    values_equal,
)


class TestDisplay:
    def test_undef_is_empty(self):
        assert to_display(None) == ""

    def test_booleans(self):
        assert to_display(True) == "true"
        assert to_display(False) == "false"

    def test_integral_float(self):
        assert to_display(4.0) == "4"
        assert to_display(4.5) == "4.5"

    def test_array_joined(self):
        assert to_display(["a", "b"]) == "a b"

    def test_ref(self):
        assert to_display(RefValue("file", "/x")) == "File['/x']"


class TestTruthiness:
    @pytest.mark.parametrize("value", [False, None, ""])
    def test_falsey(self, value):
        assert not truthy(value)

    @pytest.mark.parametrize("value", [True, "x", "false", 0, 0.0, [], {}])
    def test_truthy(self, value):
        # Note: Puppet treats the *string* 'false' and the number 0 as
        # truthy; only false/undef/'' are false.
        assert truthy(value)


class TestEquality:
    def test_strings_case_insensitive(self):
        assert values_equal("Debian", "debian")
        assert not values_equal("Debian", "RedHat")

    def test_numbers_cross_type(self):
        assert values_equal(4, 4.0)

    def test_bool_not_equal_to_string(self):
        assert not values_equal(True, "true")

    def test_arrays(self):
        assert values_equal([1, 2], [1, 2])


class TestInterpolation:
    def lookup(self, bindings):
        return lambda name: bindings.get(name)

    def test_simple_var(self):
        out = interpolate("hello $name!", self.lookup({"name": "world"}))
        assert out == "hello world!"

    def test_braced_var(self):
        out = interpolate("a${x}b", self.lookup({"x": "-"}))
        assert out == "a-b"

    def test_missing_var_is_empty(self):
        assert interpolate("a${nope}b", self.lookup({})) == "ab"

    def test_escaped_dollar(self):
        out = interpolate(r"cost: \$5", self.lookup({}))
        assert out == "cost: $5"

    def test_qualified_var(self):
        out = interpolate(
            "port ${nginx::port}", self.lookup({"nginx::port": 8080})
        )
        assert out == "port 8080"

    def test_adjacent_text(self):
        out = interpolate("/home/$user/.vimrc", self.lookup({"user": "carol"}))
        assert out == "/home/carol/.vimrc"

    def test_dollar_at_end(self):
        assert interpolate("100$", self.lookup({})) == "100$"

    def test_unterminated_brace(self):
        with pytest.raises(PuppetEvalError):
            interpolate("${oops", self.lookup({}))


class TestScopes:
    def test_local_lookup(self):
        s = Scope("test")
        s.define("x", 1)
        assert s.lookup("x") == 1

    def test_parent_chain(self):
        top = Scope("::")
        top.define("x", "top")
        child = Scope("child", parent=top)
        assert child.lookup("x") == "top"
        child.define("x", "local")
        assert child.lookup("x") == "local"
        assert top.lookup("x") == "top"

    def test_single_assignment(self):
        s = Scope("test")
        s.define("x", 1)
        with pytest.raises(PuppetEvalError, match="reassign"):
            s.define("x", 2)

    def test_stack_top_qualified(self):
        stack = ScopeStack()
        stack.top.define("os", "linux")
        local = Scope("cls", parent=stack.top)
        stack.current = local
        local.define("os", "override")
        assert stack.resolve("os") == "override"
        assert stack.resolve("::os") == "linux"

    def test_stack_class_qualified(self):
        stack = ScopeStack()
        cls = stack.class_scope("nginx")
        cls.define("port", 80)
        assert stack.resolve("nginx::port") == 80
        assert stack.resolve("::nginx::port") == 80

    def test_missing_resolves_to_none(self):
        stack = ScopeStack()
        assert stack.resolve("ghost") is None
        assert stack.resolve("no::such") is None
