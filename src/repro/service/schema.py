"""Machine-readable schema for batch-verification runs.

A batch run produces one :class:`ManifestResult` per manifest and one
aggregating :class:`BatchReport`.  Both are plain-data objects with a
stable dict/JSON form: workers ship ``ManifestResult`` dicts across the
process boundary, the verdict cache persists them to disk, and the CLI
writes the whole :class:`BatchReport` as the ``--json`` run report.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.core.pipeline import VerificationReport

#: Version 2: verdict rows grew the exploration statistics
#: (``branches_explored``, ``memo_hits``, ``states_merged``,
#: ``distinct_finals``).  Version 3: rows grew the per-manifest
#: ``lint`` block (the static analyzer's verdict, rule counts and
#: diagnostics — see :mod:`repro.analysis.lint`).  Version 4: rows
#: grew ``solver_backend``, the backend label the verdict was computed
#: under (``"cdcl"``, ``"portfolio:K[+cube:N]"``, ``"external:..."``
#: — see :func:`repro.sat.backend.backend_label`).  Version 5: rows
#: grew the incremental-reuse counters (``subtree_reuse_hits``,
#: ``cnf_cache_hits``, ``commute_cache_hits`` — see
#: :mod:`repro.service.incremental`); all three are zero on
#: from-scratch runs, so incremental and scratch rows stay comparable
#: field-for-field.  The version participates in the verdict cache key
#: (:func:`repro.service.cache.cache_key`), so entries written under
#: an older schema rotate out instead of deserializing incompletely.
SCHEMA_VERSION = 5

#: ``ManifestResult.status`` values.
STATUS_OK = "ok"  # verified: deterministic and idempotent
STATUS_FAILED = "failed"  # verified: at least one verdict is negative
STATUS_ERROR = "error"  # no verdict: compile error or worker crash


@dataclass
class ManifestResult:
    """The verdict for one manifest in a batch run."""

    name: str
    status: str
    deterministic: Optional[bool] = None
    idempotent: Optional[bool] = None
    resource_count: int = 0
    #: For non-deterministic manifests: the racing resource pair and
    #: contended filesystem path recovered by unsat-core localization
    #: (:mod:`repro.analysis.localize`), e.g. ``["File['/etc/ntp.conf']",
    #: "Package['ntp']"]`` racing on ``/etc/ntp.conf``.
    race_pair: Optional[List[str]] = None
    race_path: Optional[str] = None
    error: Optional[str] = None
    error_transient: bool = False  # load-dependent failure; never cached
    seconds: float = 0.0
    solver_seconds: float = 0.0
    #: Exploration statistics of the determinacy check (schema v2):
    #: how much of the order space was walked, and how much the
    #: reachable-state memoization collapsed it.
    branches_explored: int = 0
    memo_hits: int = 0
    states_merged: int = 0
    distinct_finals: int = 0
    #: The static analyzer's verdict for this manifest (schema v3):
    #: the ``LintReport.to_dict()`` shape — ``clean``, ``exit_code``,
    #: severity ``counts``, ``diagnostics`` and ``stats``.  ``None``
    #: when linting itself crashed (never blocks the verification row).
    lint: Optional[dict] = None
    #: The SAT backend the verdict was computed under (schema v4):
    #: :func:`repro.sat.backend.backend_label` of the run's options —
    #: lets mixed-backend result sets (and cached rows) say which solve
    #: path produced them.
    solver_backend: str = "cdcl"
    #: Incremental-store reuse counters (schema v5): how much of this
    #: verdict was rehydrated from the persistent store
    #: (:mod:`repro.service.incremental`).  Like the timing fields
    #: they describe the *run*, not the verdict — a from-scratch run
    #: reports zeros for the byte-identical verdict.
    subtree_reuse_hits: int = 0
    cnf_cache_hits: int = 0
    commute_cache_hits: int = 0
    sha256: str = ""
    cache_key: str = ""
    cached: bool = False
    deduplicated: bool = False  # verdict copied from an identical manifest
    # verified earlier in the same batch

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @classmethod
    def from_report(
        cls,
        report: VerificationReport,
        sha256: str = "",
        cache_key: str = "",
    ) -> "ManifestResult":
        if report.error is not None:
            status = STATUS_ERROR
        elif report.ok:
            status = STATUS_OK
        else:
            status = STATUS_FAILED
        race_pair = None
        race_path = None
        race = (
            report.determinism.race
            if report.determinism is not None
            else None
        )
        if race is not None:
            race_pair = [str(race.resource_a), str(race.resource_b)]
            race_path = str(race.path) if race.path is not None else None
        det_stats = (
            report.determinism.stats
            if report.determinism is not None
            else None
        )
        return cls(
            name=report.manifest_name,
            status=status,
            deterministic=report.deterministic,
            idempotent=report.idempotent,
            resource_count=report.resource_count,
            race_pair=race_pair,
            race_path=race_path,
            error=report.error,
            error_transient=report.error_transient,
            seconds=report.total_seconds,
            solver_seconds=report.solver_seconds,
            branches_explored=(
                det_stats.branches_explored if det_stats else 0
            ),
            memo_hits=det_stats.memo_hits if det_stats else 0,
            states_merged=det_stats.states_merged if det_stats else 0,
            distinct_finals=(
                det_stats.distinct_finals if det_stats else 0
            ),
            subtree_reuse_hits=(
                det_stats.subtree_reuse_hits if det_stats else 0
            ),
            cnf_cache_hits=det_stats.cnf_cache_hits if det_stats else 0,
            commute_cache_hits=(
                det_stats.commute_cache_hits if det_stats else 0
            ),
            sha256=sha256,
            cache_key=cache_key,
        )

    @classmethod
    def crashed(cls, name: str, message: str) -> "ManifestResult":
        """A result for a manifest whose worker died before reporting."""
        return cls(name=name, status=STATUS_ERROR, error=message)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ManifestResult":
        if not isinstance(data, dict):
            raise ValueError(f"manifest result must be a dict, got {data!r}")
        fields = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - fields
        if unknown:
            raise ValueError(f"unknown manifest-result keys: {sorted(unknown)}")
        result = cls(**data)
        if result.status not in (STATUS_OK, STATUS_FAILED, STATUS_ERROR):
            raise ValueError(f"unknown status {result.status!r}")
        return result


@dataclass
class CacheStats:
    """Cache traffic observed during one batch run."""

    enabled: bool = False
    directory: Optional[str] = None
    hits: int = 0
    misses: int = 0
    corrupted: int = 0  # entries found unreadable and recovered from
    read_errors: int = 0  # lookups that failed on storage errors
    write_errors: int = 0  # failed stores (unwritable cache directory)

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class BatchReport:
    """Aggregate of one batch-verification run."""

    results: List[ManifestResult] = field(default_factory=list)
    workers: int = 1
    total_seconds: float = 0.0
    cache: CacheStats = field(default_factory=CacheStats)
    version: str = ""
    platform: str = "ubuntu"

    # -- aggregate views ---------------------------------------------------

    @property
    def ok_count(self) -> int:
        return sum(1 for r in self.results if r.status == STATUS_OK)

    @property
    def failed_count(self) -> int:
        return sum(1 for r in self.results if r.status == STATUS_FAILED)

    @property
    def error_count(self) -> int:
        return sum(1 for r in self.results if r.status == STATUS_ERROR)

    @property
    def solver_seconds(self) -> float:
        return sum(r.solver_seconds for r in self.results)

    def result_for(self, name: str) -> ManifestResult:
        for r in self.results:
            if r.name == name:
                return r
        raise KeyError(name)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "version": self.version,
            "platform": self.platform,
            "workers": self.workers,
            "total_seconds": self.total_seconds,
            "summary": {
                "manifests": len(self.results),
                "ok": self.ok_count,
                "failed": self.failed_count,
                "errors": self.error_count,
                "solver_seconds": self.solver_seconds,
            },
            "cache": self.cache.to_dict(),
            "results": [r.to_dict() for r in self.results],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, data: dict) -> "BatchReport":
        cache = CacheStats(**data.get("cache", {}))
        return cls(
            results=[ManifestResult.from_dict(r) for r in data["results"]],
            workers=data.get("workers", 1),
            total_seconds=data.get("total_seconds", 0.0),
            cache=cache,
            version=data.get("version", ""),
            platform=data.get("platform", "ubuntu"),
        )


#: Row fields that describe the *run*, not the verdict: wall-clock
#: timings, cache/dedup provenance, and the incremental-reuse
#: counters.  Two runs of the same manifest under the same options
#: agree on everything else byte for byte — the contract
#: ``examples/serve_client.py`` and the daemon-e2e CI job assert
#: between ``rehearsal serve`` and ``rehearsal verify-batch``.
RUN_CIRCUMSTANCE_FIELDS = (
    "seconds",
    "solver_seconds",
    "cached",
    "deduplicated",
    "subtree_reuse_hits",
    "cnf_cache_hits",
    "commute_cache_hits",
)


def normalized_row(row: dict) -> dict:
    """A deep copy of a :class:`ManifestResult` dict with every
    run-circumstance field removed, so rows from different runs (or
    different front ends: batch CLI vs daemon) compare byte-identical
    exactly when the verdicts agree."""
    import copy

    out = copy.deepcopy(row)
    for field_name in RUN_CIRCUMSTANCE_FIELDS:
        out.pop(field_name, None)
    lint = out.get("lint")
    if isinstance(lint, dict):
        lint.get("stats", {}).pop("seconds", None)
    return out


def normalized_rows(rows) -> List[dict]:
    """:func:`normalized_row` over a row list (dicts or results)."""
    return [
        normalized_row(r.to_dict() if hasattr(r, "to_dict") else r)
        for r in rows
    ]


_STATUS_WORD: Dict[str, str] = {
    STATUS_OK: "ok",
    STATUS_FAILED: "FAILED",
    STATUS_ERROR: "ERROR",
}


def _verdict_cell(value: Optional[bool]) -> str:
    if value is None:
        return "-"
    return "yes" if value else "NO"


def batch_table_rows(report: BatchReport) -> List[List[str]]:
    """The summary table as rows of cells (header excluded)."""
    rows = []
    for r in report.results:
        rows.append(
            [
                r.name,
                _STATUS_WORD.get(r.status, r.status),
                _verdict_cell(r.deterministic),
                _verdict_cell(r.idempotent),
                str(r.resource_count),
                f"{r.seconds:.3f}s",
                (
                    "hit"
                    if r.cached
                    else "dup"
                    if r.deduplicated
                    else "miss"
                    if report.cache.enabled
                    else "-"
                ),
            ]
        )
    return rows
