"""Tests for multi-platform verification (§8 extension)."""

import pytest

from repro.core.platforms import (
    CENTOS,
    PLATFORMS,
    UBUNTU,
    verify_across_platforms,
)

PORTABLE = """
case $osfamily {
  'Debian': { $web = 'nginx' }
  'RedHat': { $web = 'httpd' }
  default:  { fail('unsupported') }
}
package{$web: ensure => present }
"""

DEBIAN_ONLY_FIX = """
package{'ntp': ensure => present }
if $osfamily == 'Debian' {
  file{'/etc/ntp.conf':
    content => 'server pool.example.org',
    require => Package['ntp'],
  }
} else {
  # BUG: the RedHat branch forgot the dependency.
  file{'/etc/ntp.conf': content => 'server pool.example.org' }
}
"""


class TestProfiles:
    def test_platforms_registered(self):
        assert set(PLATFORMS) == {"ubuntu", "centos"}

    def test_facts_differ(self):
        assert UBUNTU.facts["osfamily"] == "Debian"
        assert CENTOS.facts["osfamily"] == "RedHat"

    def test_centos_packages(self):
        db = CENTOS.package_db_factory()
        assert "/etc/httpd/conf/httpd.conf" in db.lookup("httpd").files

    def test_unknown_platform(self):
        with pytest.raises(KeyError):
            verify_across_platforms("package{'vim': }", platforms=["beos"])


class TestCrossPlatform:
    def test_portable_manifest_consistent(self):
        report = verify_across_platforms(PORTABLE)
        assert report.consistent
        assert report.all_ok
        assert report.divergences() == []

    def test_platform_specific_bug_detected(self):
        """Deterministic on Debian, non-deterministic on RedHat — the
        §8 scenario the paper says is worth checking."""
        report = verify_across_platforms(DEBIAN_ONLY_FIX)
        assert report.reports["ubuntu"].deterministic is True
        assert report.reports["centos"].deterministic is False
        assert not report.consistent
        assert len(report.divergences()) == 2

    def test_facts_select_different_packages(self):
        from repro.core.pipeline import Rehearsal

        ubuntu_tool = Rehearsal(
            context=UBUNTU.context(), facts=UBUNTU.facts
        )
        centos_tool = Rehearsal(
            context=CENTOS.context(), facts=CENTOS.facts
        )
        g1, _ = ubuntu_tool.compile(PORTABLE)
        g2, _ = centos_tool.compile(PORTABLE)
        assert "Package['nginx']" in g1.nodes
        assert "Package['httpd']" in g2.nodes

    def test_unsupported_platform_fail_captured(self):
        report = verify_across_platforms(
            PORTABLE, platforms=["ubuntu"]
        )
        assert report.reports["ubuntu"].error is None
