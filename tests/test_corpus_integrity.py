"""Fast corpus-integrity smoke checks (no SAT/SMT work).

The full corpus tests in test_corpus.py run the complete determinacy
and idempotence analyses — tens of slow cases.  This module fails in
well under a second when the inventory itself breaks: a manifest file
missing from the checkout (or dropped by packaging), an empty file, or
source that no longer compiles to a catalog.
"""

import pytest

from repro.corpus import (
    BENCHMARK_NAMES,
    CASES,
    FIXED_VARIANTS,
    NONDET_NAMES,
    load_source,
)
from repro.errors import CorpusManifestMissing, ReproError
from repro.puppet.evaluator import evaluate_manifest

ALL_NAMES = BENCHMARK_NAMES + sorted(FIXED_VARIANTS)


class TestManifestFiles:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_exists_and_non_empty(self, name):
        source = load_source(name)
        assert source.strip(), f"{name} manifest is empty"

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_compiles_to_catalog(self, name):
        catalog = evaluate_manifest(load_source(name))
        graph = catalog.build_graph()
        assert graph.number_of_nodes() > 0, f"{name} compiled to nothing"

    def test_missing_manifest_raises_corpus_error(self, monkeypatch):
        """A registered benchmark whose .pp file is gone must name the
        file and directory in a repro error, not leak FileNotFoundError."""
        monkeypatch.setitem(
            FIXED_VARIANTS, "ntp-fixed", "no-such-manifest.pp"
        )
        with pytest.raises(CorpusManifestMissing) as excinfo:
            load_source("ntp-fixed")
        message = str(excinfo.value)
        assert "no-such-manifest.pp" in message
        assert "manifests" in message
        assert isinstance(excinfo.value, ReproError)


class TestInventoryShape:
    def test_nondet_cases_record_their_bug(self):
        # (fixed_by wiring itself is covered by test_corpus.py.)
        for name in NONDET_NAMES:
            assert CASES[name].bug, f"{name} must record its seeded bug class"

    def test_fixed_variants_differ_from_buggy_sources(self):
        """Each fix must actually change the manifest (the added
        dependency), not just duplicate the buggy file."""
        for name in NONDET_NAMES:
            fixed = CASES[name].fixed_by
            assert load_source(name) != load_source(fixed)
