"""End-to-end verification of the benchmark corpus (§6 "Bugs found").

The paper's headline evaluation result: of the 13 third-party
configurations, six have determinism bugs and seven do not; every fix
verifies as deterministic *and* idempotent.
"""

import pytest

from repro import Rehearsal
from repro.corpus import (
    BENCHMARK_NAMES,
    CASES,
    DETERMINISTIC_NAMES,
    FIXED_VARIANTS,
    NONDET_NAMES,
    idempotence_subject,
    load_source,
)


@pytest.fixture(scope="module")
def tool():
    return Rehearsal()


class TestCorpusInventory:
    def test_thirteen_benchmarks(self):
        assert len(BENCHMARK_NAMES) == 13

    def test_six_nondet_seven_det(self):
        assert len(NONDET_NAMES) == 6
        assert len(DETERMINISTIC_NAMES) == 7

    def test_every_nondet_has_a_fix(self):
        for name in NONDET_NAMES:
            assert CASES[name].fixed_by in FIXED_VARIANTS

    def test_all_sources_load(self):
        for name in BENCHMARK_NAMES + sorted(FIXED_VARIANTS):
            assert load_source(name).strip()

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            load_source("not-a-benchmark")


class TestDeterminismVerdicts:
    @pytest.mark.parametrize("name", DETERMINISTIC_NAMES)
    def test_deterministic_benchmarks(self, tool, name):
        result = tool.check_determinism(load_source(name))
        assert result.deterministic, f"{name} should be deterministic"

    @pytest.mark.parametrize("name", NONDET_NAMES)
    def test_nondeterministic_benchmarks(self, tool, name):
        result = tool.check_determinism(load_source(name))
        assert not result.deterministic, f"{name} should be non-deterministic"
        assert result.witness_fs is not None

    @pytest.mark.parametrize("name", sorted(FIXED_VARIANTS))
    def test_fixed_variants_deterministic(self, tool, name):
        result = tool.check_determinism(load_source(name))
        assert result.deterministic, f"{name} fix should verify"


class TestIdempotenceVerdicts:
    """Fig. 12 checks idempotence on all benchmarks (fixed variants
    stand in for the non-deterministic six, per §5's soundness gate)."""

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_idempotent(self, tool, name):
        subject = idempotence_subject(name)
        result = tool.check_idempotence(load_source(subject))
        assert result.idempotent, f"{subject} should be idempotent"


class TestWitnessQuality:
    @pytest.mark.parametrize("name", NONDET_NAMES)
    def test_witness_confirmed_concretely(self, tool, name):
        """Every non-determinism verdict must come with two orders that
        demonstrably diverge on the witness state."""
        from repro.fs import eval_expr, seq

        graph, programs = tool.compile(load_source(name))
        from repro.analysis import check_determinism

        result = check_determinism(graph, programs)
        assert result.witness_orders is not None
        order1, order2 = result.witness_orders
        out1 = eval_expr(seq(*[programs[n] for n in order1]), result.witness_fs)
        out2 = eval_expr(seq(*[programs[n] for n in order2]), result.witness_fs)
        assert out1 != out2
