"""Property-based tests over the resource models.

The paper's analyses lean on structural properties of the models:
individual resources are idempotent (§2 "primitive resources are
designed to be idempotent"), compile deterministically, and their
footprints soundly overapproximate their effects.  These properties
are verified here for every supported resource type, both semantically
(via the SAT-backed equivalence checker) and concretely.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import check_idempotence_expr, footprint
from repro.fs import ERROR, FileSystem, Path, eval_expr, seq
from repro.fs.domain import expr_domain
from repro.fs.filesystem import DIR, FileContent
from repro.resources import Resource, ResourceCompiler

SAMPLE_RESOURCES = [
    Resource("file", "/etc/motd", {"content": "hello"}),
    Resource("file", "/srv", {"ensure": "directory"}),
    Resource("file", "/tmp/x", {"ensure": "absent"}),
    Resource("file", "/f", {"ensure": "file", "content": "x", "force": True}),
    Resource("package", "m4", {}),
    Resource("package", "vim", {"ensure": "absent"}),
    Resource("package", "golang-go", {}),  # has a dependency closure
    Resource("user", "carol", {"managehome": True}),
    Resource("user", "dave", {"ensure": "absent"}),
    Resource("group", "admins", {}),
    Resource("service", "nginx", {"ensure": "running", "enable": True}),
    Resource("service", "old", {"ensure": "stopped", "enable": False}),
    Resource("cron", "tidy", {"command": "/usr/bin/tidy", "hour": "4"}),
    Resource("host", "db.internal", {"ip": "10.0.0.9"}),
    Resource("notify", "hello", {}),
    Resource(
        "ssh_authorized_key", "k1", {"user": "carol", "key": "AAAA"}
    ),
]

_IDS = [f"{r.rtype}:{r.title}" for r in SAMPLE_RESOURCES]


@pytest.fixture(scope="module")
def compiler():
    return ResourceCompiler()


class TestEveryModelIsIdempotent:
    @pytest.mark.parametrize("resource", SAMPLE_RESOURCES, ids=_IDS)
    def test_idempotent(self, compiler, resource):
        """e ≡ e;e for every single-resource program — checked
        symbolically over *all* initial states."""
        e = compiler.compile(resource)
        result = check_idempotence_expr(e)
        assert result.idempotent, (
            f"{resource.ref} is not idempotent; witness:\n"
            f"{result.witness_fs.pretty() if result.witness_fs else '?'}"
        )


class TestCompilationIsDeterministic:
    @pytest.mark.parametrize("resource", SAMPLE_RESOURCES, ids=_IDS)
    def test_stable(self, compiler, resource):
        assert compiler.compile(resource) == compiler.compile(resource)


class TestFootprintSoundness:
    """If a concrete run changes a path, the footprint must have it in
    its write set (or D set for directories); if the run's outcome
    depends on a path, it must be read/guarded."""

    @pytest.mark.parametrize("resource", SAMPLE_RESOURCES, ids=_IDS)
    def test_writes_covered(self, compiler, resource):
        e = compiler.compile(resource)
        fp = footprint(e)
        may_write = set(fp.writes) | set(fp.dir_ensures)
        for fs in _sample_states(e):
            out = eval_expr(e, fs)
            if out is ERROR:
                continue
            for p in set(out.paths()) | set(fs.paths()):
                if out.lookup(p) != fs.lookup(p):
                    assert p in may_write, (
                        f"{resource.ref} changed {p} outside its "
                        f"footprint writes {sorted(map(str, may_write))}"
                    )


def _sample_states(e, samples=6):
    """A few well-formed states over the expression's domain."""
    rng = random.Random(1234)
    paths = sorted(expr_domain(e))
    yield FileSystem.empty()
    for _ in range(samples):
        entries = {}
        for p in paths:
            roll = rng.random()
            if roll < 0.5:
                continue
            parent = p.parent()
            if not parent.is_root and entries.get(parent) is not DIR:
                continue
            entries[p] = DIR if roll < 0.8 else FileContent("zzz")
        yield FileSystem(entries)


class TestComposedResources:
    def test_disjoint_pair_commutes_semantically(self, compiler):
        from repro.analysis import check_commutes_semantically

        e1 = compiler.compile(Resource("group", "a", {}))
        e2 = compiler.compile(Resource("host", "h", {"ip": "1.2.3.4"}))
        assert check_commutes_semantically(e1, e2).equivalent

    def test_package_pair_commutes_semantically(self, compiler):
        from repro.analysis import check_commutes_semantically

        e1 = compiler.compile(Resource("package", "m4", {}))
        e2 = compiler.compile(Resource("package", "make", {}))
        assert check_commutes_semantically(e1, e2).equivalent

    def test_install_remove_same_package_does_not_commute(self, compiler):
        from repro.analysis import check_commutes_semantically

        e1 = compiler.compile(Resource("package", "vim", {}))
        e2 = compiler.compile(
            Resource("package", "vim2", {"name": "vim", "ensure": "absent"})
        )
        assert not check_commutes_semantically(e1, e2).equivalent
