"""The random-catalog generator: determinism, well-formedness, knobs."""

import pytest

from repro.core.pipeline import Rehearsal
from repro.puppet.parser import parse_manifest
from repro.testing.generate import (
    BUG_CLASSES,
    CaseGenerator,
    GeneratedCase,
    GeneratorConfig,
    case_seed,
)


class TestDeterminism:
    def test_same_seed_same_cases(self):
        first = [CaseGenerator(7).generate(i).source for i in range(12)]
        second = [CaseGenerator(7).generate(i).source for i in range(12)]
        assert first == second

    def test_cases_are_pure_functions_of_their_id(self):
        # Generating case 9 alone equals generating it after 0..8 —
        # a nightly failure is reproducible from (seed, case_id) alone.
        alone = CaseGenerator(11).generate(9).source
        gen = CaseGenerator(11)
        for i in range(9):
            gen.generate(i)
        assert gen.generate(9).source == alone

    def test_different_seeds_differ(self):
        a = [CaseGenerator(1).generate(i).source for i in range(8)]
        b = [CaseGenerator(2).generate(i).source for i in range(8)]
        assert a != b

    def test_case_seed_mixes_master_and_id(self):
        assert case_seed(1, 2) != case_seed(2, 1)
        assert case_seed(5, 0) != case_seed(5, 1)


class TestWellFormedness:
    def test_every_case_parses_and_compiles(self):
        gen = CaseGenerator(42)
        tool = Rehearsal()
        for i in range(40):
            case = gen.generate(i)
            parse_manifest(case.source)
            report = tool.verify(case.source, name=case.name)
            assert report.error is None, (i, case.bug, report.error)

    def test_resource_budget_respected(self):
        config = GeneratorConfig(min_resources=2, max_resources=4)
        gen = CaseGenerator(3, config)
        tool = Rehearsal()
        for i in range(20):
            case = gen.generate(i)
            assert 2 <= len(case.resources) <= 4
            # The compiled graph can only shed resources (duplicate
            # titles are uniquified at generation time).
            graph, _ = tool.compile(case.source)
            assert graph.number_of_nodes() == len(case.resources)

    def test_bug_classes_all_appear(self):
        gen = CaseGenerator(42)
        seen = {gen.generate(i).bug for i in range(80)}
        assert seen == set(BUG_CLASSES)

    def test_injected_bugs_are_nondeterministic(self):
        # The injected racing pair stays unordered: every non-clean
        # case must actually race.
        gen = CaseGenerator(42)
        tool = Rehearsal()
        checked = 0
        for i in range(30):
            case = gen.generate(i)
            if case.bug == "clean":
                continue
            checked += 1
            report = tool.verify(case.source, name=case.name)
            assert report.deterministic is False, (i, case.bug)
        assert checked >= 5

    def test_titles_are_unique(self):
        gen = CaseGenerator(13)
        for i in range(30):
            case = gen.generate(i)
            keys = [(r.rtype, r.title) for r in case.resources]
            assert len(keys) == len(set(keys))


class TestConfigKnobs:
    def test_rejects_oversized_catalogs(self):
        with pytest.raises(ValueError):
            GeneratorConfig(max_resources=8)

    def test_rejects_unknown_bug_class(self):
        with pytest.raises(ValueError):
            GeneratorConfig(bug_weights=(("no-such-bug", 1),))

    def test_edge_density_zero_means_no_random_edges(self):
        config = GeneratorConfig(edge_density=0.0)
        gen = CaseGenerator(5, config)
        for i in range(15):
            for spec in gen.generate(i).resources:
                assert spec.requires == ()

    def test_high_edge_density_produces_edges(self):
        config = GeneratorConfig(edge_density=0.9)
        gen = CaseGenerator(5, config)
        total = sum(
            len(spec.requires)
            for i in range(15)
            for spec in gen.generate(i).resources
        )
        assert total > 0


class TestSerialization:
    def test_round_trip(self):
        case = CaseGenerator(42).generate(3)
        clone = GeneratedCase.from_dict(case.to_dict())
        assert clone.source == case.source
        assert clone.case_seed == case.case_seed
        assert clone.bug == case.bug

    def test_printed_source_reparses_to_same_catalog(self):
        # printer round-trip at the catalog level: re-parsing the
        # printed manifest yields the same resource graph.
        tool = Rehearsal()
        for i in range(10):
            case = CaseGenerator(21).generate(i)
            graph1, _ = tool.compile(case.source)
            graph2, _ = tool.compile(case.source)
            assert set(graph1.nodes) == set(graph2.nodes)
            assert set(graph1.edges) == set(graph2.edges)
