"""SQLite store for per-test results across runs.

One database file accumulates every recorded pytest run: per-test
outcome, call duration, and (for fuzz/property tests that expose one
via ``record_property("seed", ...)``) the seed that drove the test.
``rehearsal testreport`` reads it back to render duration trends per
module; CI uploads the rendered report as an artifact.

Concurrency: parallel runners (pytest-xdist workers, or plain
concurrent pytest invocations) each open their own connection and
write independently.  Safety comes from WAL journaling, a busy
timeout, ``INSERT OR REPLACE`` keyed on ``(run_id, nodeid)``, and an
explicit retry loop around commits — SQLite serializes the writers,
we just have to wait our turn instead of raising ``database is
locked``.

Schema (``SCHEMA_VERSION`` guards compatibility):

* ``runs(run_id, started_at, finished_at, exit_status, argv, meta)``
* ``results(run_id, nodeid, module, outcome, duration, seed, phase)``
  with primary key ``(run_id, nodeid)``.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_id TEXT PRIMARY KEY,
    started_at REAL NOT NULL,
    finished_at REAL,
    exit_status INTEGER,
    argv TEXT,
    meta TEXT
);
CREATE TABLE IF NOT EXISTS results (
    run_id TEXT NOT NULL,
    nodeid TEXT NOT NULL,
    module TEXT NOT NULL,
    outcome TEXT NOT NULL,
    duration REAL NOT NULL,
    seed TEXT,
    phase TEXT NOT NULL DEFAULT 'call',
    PRIMARY KEY (run_id, nodeid)
);
CREATE INDEX IF NOT EXISTS idx_results_module
    ON results (module, run_id);
"""

_LOCK_RETRIES = 40
_LOCK_SLEEP = 0.05


@dataclass
class TestResult:
    nodeid: str
    outcome: str
    duration: float
    seed: Optional[str] = None
    phase: str = "call"

    @property
    def module(self) -> str:
        return self.nodeid.split("::", 1)[0]


@dataclass
class RunSummary:
    run_id: str
    started_at: float
    finished_at: Optional[float]
    exit_status: Optional[int]
    total: int
    passed: int
    failed: int
    skipped: int
    duration: float


class ResultsDB:
    """One connection to the results database; safe to instantiate
    once per process (xdist worker, pytest invocation, reporter)."""

    def __init__(self, path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(
            str(self.path), timeout=10.0, isolation_level=None
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA busy_timeout=10000")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._execute_retry(_SCHEMA, script=True)
        self._execute_retry(
            "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
            ("schema_version", str(SCHEMA_VERSION)),
        )
        stored = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if stored and int(stored[0]) != SCHEMA_VERSION:
            raise ValueError(
                f"{self.path}: results DB schema {stored[0]} is not "
                f"the supported {SCHEMA_VERSION}"
            )

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultsDB":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- writes ------------------------------------------------------

    def begin_run(
        self,
        run_id: str,
        argv: Optional[Sequence[str]] = None,
        meta: Optional[dict] = None,
        started_at: Optional[float] = None,
    ) -> None:
        self._execute_retry(
            "INSERT OR REPLACE INTO runs "
            "(run_id, started_at, argv, meta) VALUES (?, ?, ?, ?)",
            (
                run_id,
                time.time() if started_at is None else started_at,
                json.dumps(list(argv or [])),
                json.dumps(meta or {}),
            ),
        )

    def record(self, run_id: str, result: TestResult) -> None:
        self._execute_retry(
            "INSERT OR REPLACE INTO results "
            "(run_id, nodeid, module, outcome, duration, seed, phase) "
            "VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                run_id,
                result.nodeid,
                result.module,
                result.outcome,
                result.duration,
                result.seed,
                result.phase,
            ),
        )

    def finish_run(
        self,
        run_id: str,
        exit_status: int,
        finished_at: Optional[float] = None,
    ) -> None:
        self._execute_retry(
            "UPDATE runs SET finished_at = ?, exit_status = ? "
            "WHERE run_id = ?",
            (
                time.time() if finished_at is None else finished_at,
                exit_status,
                run_id,
            ),
        )

    # -- reads -------------------------------------------------------

    def run_ids(self) -> List[str]:
        rows = self._conn.execute(
            "SELECT run_id FROM runs ORDER BY started_at"
        ).fetchall()
        return [row[0] for row in rows]

    def runs(self, limit: Optional[int] = None) -> List[RunSummary]:
        """Newest-last summaries of the most recent ``limit`` runs."""
        sql = """
            SELECT r.run_id, r.started_at, r.finished_at,
                   r.exit_status,
                   COUNT(t.nodeid),
                   SUM(t.outcome = 'passed'),
                   SUM(t.outcome = 'failed'),
                   SUM(t.outcome = 'skipped'),
                   COALESCE(SUM(t.duration), 0.0)
            FROM runs r LEFT JOIN results t ON t.run_id = r.run_id
            GROUP BY r.run_id ORDER BY r.started_at DESC
        """
        params: tuple = ()
        if limit is not None:
            sql += " LIMIT ?"
            params = (limit,)
        rows = self._conn.execute(sql, params).fetchall()
        return [
            RunSummary(
                run_id=row[0],
                started_at=row[1],
                finished_at=row[2],
                exit_status=row[3],
                total=row[4] or 0,
                passed=row[5] or 0,
                failed=row[6] or 0,
                skipped=row[7] or 0,
                duration=row[8] or 0.0,
            )
            for row in reversed(rows)
        ]

    def results_for_run(self, run_id: str) -> List[TestResult]:
        rows = self._conn.execute(
            "SELECT nodeid, outcome, duration, seed, phase "
            "FROM results WHERE run_id = ? ORDER BY nodeid",
            (run_id,),
        ).fetchall()
        return [TestResult(*row) for row in rows]

    def module_durations(
        self, limit_runs: Optional[int] = None
    ) -> Dict[str, List[float]]:
        """Per test module: total call duration per run, oldest run
        first — the series the report renders as a trend."""
        run_order = self.run_ids()
        if limit_runs is not None:
            run_order = run_order[-limit_runs:]
        index = {run_id: i for i, run_id in enumerate(run_order)}
        series: Dict[str, List[float]] = {}
        rows = self._conn.execute(
            "SELECT module, run_id, SUM(duration) FROM results "
            "GROUP BY module, run_id"
        ).fetchall()
        for module, run_id, total in rows:
            if run_id not in index:
                continue
            trend = series.setdefault(module, [0.0] * len(run_order))
            trend[index[run_id]] = total or 0.0
        return series

    def slowest_tests(
        self, run_id: str, limit: int = 15
    ) -> List[TestResult]:
        rows = self._conn.execute(
            "SELECT nodeid, outcome, duration, seed, phase "
            "FROM results WHERE run_id = ? "
            "ORDER BY duration DESC LIMIT ?",
            (run_id, limit),
        ).fetchall()
        return [TestResult(*row) for row in rows]

    # -- plumbing ----------------------------------------------------

    def _execute_retry(self, sql, params=(), script=False):
        for attempt in range(_LOCK_RETRIES):
            try:
                if script:
                    return self._conn.executescript(sql)
                return self._conn.execute(sql, params)
            except sqlite3.OperationalError as exc:
                if "locked" not in str(exc) and "busy" not in str(exc):
                    raise
                if attempt == _LOCK_RETRIES - 1:
                    raise
                time.sleep(_LOCK_SLEEP)


def default_run_id() -> str:
    """Unique-enough id: timestamp + pid (xdist workers share the
    controller's id via the environment instead of minting one)."""
    return f"{time.strftime('%Y%m%dT%H%M%S')}-{os.getpid()}"
