"""Symbolic logical states Σ = ⟨ok, fs⟩ (paper Fig. 7).

A :class:`SymbolicState` pairs an ``ok`` term (true iff no error has
occurred) with a symbolic filesystem mapping every domain path to a
:class:`~repro.smt.values.SymbolicValue`.  States are immutable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional

from repro.fs.filesystem import FileSystem
from repro.fs.paths import Path
from repro.logic.terms import Term, TermBank
from repro.smt.values import (
    DomainValue,
    PathDomains,
    SymbolicValue,
    V_DIR,
    V_DNE,
    initial_var_name,
    value_of_content,
)


@dataclass(frozen=True)
class SymbolicState:
    ok: Term
    fs: Mapping[Path, SymbolicValue]
    #: Lazily computed by :meth:`fingerprint`; excluded from equality.
    _fp: Optional[tuple] = field(default=None, compare=False, repr=False)

    def fingerprint(self) -> tuple:
        """Structural identity of the whole state: the ``ok`` term's
        uid plus every path's value fingerprint.  Terms are hash-consed
        in the bank, so fingerprint equality means every constituent
        formula is pointer-equal — two states with equal fingerprints
        are the same function of the initial filesystem, and any
        exploration continuing from them is identical.  The determinacy
        analysis keys its reachable-state memo table on this (paired
        with the set of remaining resources).

        Cost: O(paths) on first call (value fingerprints are cached on
        the shared :class:`SymbolicValue` objects), O(1) after — the
        tuple is cached on the state.
        """
        fp = self._fp
        if fp is None:
            fp = (
                self.ok.uid,
                tuple(
                    (path, value.fingerprint())
                    for path, value in self.fs.items()
                ),
            )
            object.__setattr__(self, "_fp", fp)
        return fp

    def value(self, path: Path) -> SymbolicValue:
        try:
            return self.fs[path]
        except KeyError:
            raise KeyError(
                f"path {path} is outside the logical domain; "
                "extend the domain (Fig. 8) before encoding"
            ) from None

    def with_ok(self, ok: Term) -> "SymbolicState":
        return SymbolicState(ok, self.fs)

    def update(self, path: Path, value: SymbolicValue) -> "SymbolicState":
        fs = dict(self.fs)
        fs[path] = value
        return SymbolicState(self.ok, fs)

    def update_many(
        self, entries: Dict[Path, SymbolicValue]
    ) -> "SymbolicState":
        fs = dict(self.fs)
        fs.update(entries)
        return SymbolicState(self.ok, fs)


def initial_state(bank: TermBank, domains: PathDomains) -> SymbolicState:
    """Fully symbolic initial state: one boolean variable per
    (path, domain value) pair."""
    fs: Dict[Path, SymbolicValue] = {}
    for path in domains.paths:
        indicators = {
            value: bank.var(initial_var_name(path, value))
            for value in domains.values(path)
        }
        fs[path] = SymbolicValue(indicators)
    return SymbolicState(bank.TRUE, fs)


def initial_constraints(
    bank: TermBank,
    domains: PathDomains,
    well_formed: bool = True,
) -> Term:
    """Exactly-one per path; optionally filesystem well-formedness
    (a non-root path that exists has a directory parent)."""
    parts = []
    for path in domains.paths:
        vars_ = [
            bank.var(initial_var_name(path, value))
            for value in domains.values(path)
        ]
        parts.append(bank.exactly_one(vars_))
    if well_formed:
        domain_set = set(domains.paths)
        for path in domains.paths:
            parent = path.parent()
            if parent.is_root or parent not in domain_set:
                continue
            exists = bank.not_(bank.var(initial_var_name(path, V_DNE)))
            parent_dir = bank.var(initial_var_name(parent, V_DIR))
            parts.append(bank.implies(exists, parent_dir))
    return bank.and_(*parts)


def concrete_state(
    bank: TermBank, domains: PathDomains, fs: FileSystem
) -> SymbolicState:
    """Lift a concrete filesystem into a (constant) symbolic state.
    Used by tests to validate the encoder against the evaluator."""
    out: Dict[Path, SymbolicValue] = {}
    for path in domains.paths:
        value = value_of_content(fs.lookup(path))
        out[path] = SymbolicValue.const(bank, value)
    return SymbolicState(bank.TRUE, out)


def assignment_for_fs(
    domains: PathDomains, fs: FileSystem
) -> Dict[str, bool]:
    """The variable assignment describing a concrete initial filesystem
    (for evaluating encoded formulas concretely in tests)."""
    out: Dict[str, bool] = {}
    for path in domains.paths:
        actual = value_of_content(fs.lookup(path))
        for value in domains.values(path):
            out[initial_var_name(path, value)] = value == actual
    return out


def states_differ(
    bank: TermBank,
    s1: SymbolicState,
    s2: SymbolicState,
    paths: Iterable[Path],
) -> Term:
    """Σ1 ≠ Σ2: error-status mismatch, or both ok and some path's final
    value differs.  Path values are only compared under both-ok, so
    garbage tracked past an error never produces spurious differences."""
    ok_mismatch = bank.xor(s1.ok, s2.ok)
    diffs = []
    for path in paths:
        v1 = s1.value(path)
        v2 = s2.value(path)
        if v1 is v2:
            continue
        diffs.append(bank.not_(v1.equals(bank, v2)))
    fs_mismatch = bank.and_(s1.ok, s2.ok, bank.or_(*diffs))
    return bank.or_(ok_mismatch, fs_mismatch)
