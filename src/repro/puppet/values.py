"""Runtime values and string interpolation for the Puppet evaluator.

Values are plain Python objects: ``str``, ``int``, ``float``, ``bool``,
``None`` (undef), ``list``, ``dict``, and :class:`RefValue` for
resource references.  Interpolation of double-quoted strings happens
here, at evaluation time, because it needs variable scopes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Union

from repro.errors import PuppetEvalError


@dataclass(frozen=True)
class RefValue:
    """A resource reference value: ``File['/etc/motd']``."""

    rtype: str
    title: str

    def __str__(self) -> str:
        return f"{self.rtype.capitalize()}[{self.title!r}]"


Value = Union[str, int, float, bool, None, list, dict, RefValue]


def to_display(value: Value) -> str:
    """Render a value the way Puppet interpolates it into strings."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    if isinstance(value, list):
        return " ".join(to_display(v) for v in value)
    return str(value)


def truthy(value: Value) -> bool:
    """Puppet truthiness: only false, undef, and '' are false.

    (Puppet 4 makes '' truthy; we follow Puppet 3, which the paper's
    corpus targets, where the empty string is false.)"""
    if value is None or value is False:
        return False
    if value == "":
        return False
    return True


def values_equal(a: Value, b: Value) -> bool:
    """Puppet ``==``: case-insensitive for strings."""
    if isinstance(a, str) and isinstance(b, str):
        return a.lower() == b.lower()
    if isinstance(a, bool) or isinstance(b, bool):
        return a is b
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return float(a) == float(b)
    return a == b


def interpolate(raw: str, lookup: Callable[[str], Value]) -> str:
    """Resolve ``$var`` and ``${var}`` inside a double-quoted string.

    ``lookup`` resolves a (possibly qualified) variable name; unknown
    variables interpolate as the empty string, matching Puppet's
    (warning-laden) behaviour.  The lexer encodes a literal dollar as
    ``\\$``.
    """
    out: List[str] = []
    i = 0
    n = len(raw)
    while i < n:
        ch = raw[i]
        if ch == "\\" and i + 1 < n and raw[i + 1] == "$":
            out.append("$")
            i += 2
            continue
        if ch != "$":
            out.append(ch)
            i += 1
            continue
        # Interpolation start.
        i += 1
        if i < n and raw[i] == "{":
            end = raw.find("}", i)
            if end < 0:
                raise PuppetEvalError(
                    f"unterminated ${{...}} interpolation in {raw!r}"
                )
            name = raw[i + 1 : end].strip()
            i = end + 1
        else:
            start = i
            if i < n and raw[i : i + 2] == "::":
                i += 2
            while i < n and (raw[i].isalnum() or raw[i] == "_"):
                i += 1
                if raw[i : i + 2] == "::" and i + 2 < n and raw[i + 2].isalnum():
                    i += 2
            name = raw[start:i]
        if not name:
            out.append("$")
            continue
        out.append(to_display(lookup(name)))
    return "".join(out)
