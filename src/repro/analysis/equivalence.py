"""Semantic equivalence of FS expressions: ``e1 ≡ e2`` decided by SAT
(the essence of non-determinism checking, §4.2).

Complete thanks to the Fig. 8 domain bounding: both expressions are
encoded over the union of their domains, including fresh witness
children for emptiness observations."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.fs import FileSystem
from repro.fs import syntax as fx
from repro.logic.terms import TermBank
from repro.smt.encoder import apply_expr
from repro.smt.model import decode_filesystem
from repro.smt.query import Query
from repro.smt.state import initial_constraints, initial_state, states_differ
from repro.smt.values import PathDomains


@dataclass
class EquivalenceResult:
    equivalent: bool
    witness_fs: Optional[FileSystem] = None
    modeled_paths: int = 0
    sat_vars: int = 0
    sat_clauses: int = 0
    total_seconds: float = 0.0
    #: Subformula encodings rehydrated from a persistent CNF cache
    #: (0 without ``cnf_cache`` — see :mod:`repro.service.incremental`).
    cnf_cache_hits: int = 0

    def __bool__(self) -> bool:
        return self.equivalent


def check_equivalence(
    e1: fx.Expr,
    e2: fx.Expr,
    well_formed_initial: bool = True,
    max_conflicts: Optional[int] = None,
    cnf_cache=None,
) -> EquivalenceResult:
    """Decide ``∀σ. ⟦e1⟧σ = ⟦e2⟧σ``; a witness σ is decoded when not.

    ``cnf_cache`` — an optional :class:`repro.logic.cnf.SubtermCache`;
    encoded subformulas persist across runs and rehydrate here (the
    verdict is unaffected — the encoding is equisatisfiable either
    way).
    """
    start = time.perf_counter()
    bank = TermBank()
    domains = PathDomains.for_exprs([e1, e2])
    init = initial_state(bank, domains)
    s1 = apply_expr(bank, init, e1)
    s2 = apply_expr(bank, init, e2)
    goal = bank.and_(
        initial_constraints(bank, domains, well_formed=well_formed_initial),
        states_differ(bank, s1, s2, domains.paths),
    )
    query = Query(bank, subterm_cache=cnf_cache)
    query.assert_term(goal)
    result = query.check(max_conflicts=max_conflicts)
    elapsed = time.perf_counter() - start
    if not result.sat:
        return EquivalenceResult(
            True,
            modeled_paths=len(domains),
            sat_vars=result.num_vars,
            sat_clauses=result.num_clauses,
            total_seconds=elapsed,
            cnf_cache_hits=query.cnf_cache_hits,
        )
    witness = decode_filesystem(domains, result.named_model)
    return EquivalenceResult(
        False,
        witness_fs=witness,
        modeled_paths=len(domains),
        sat_vars=result.num_vars,
        sat_clauses=result.num_clauses,
        total_seconds=elapsed,
        cnf_cache_hits=query.cnf_cache_hits,
    )


def check_commutes_semantically(
    e1: fx.Expr, e2: fx.Expr, well_formed_initial: bool = True
) -> EquivalenceResult:
    """Decide ``e1; e2 ≡ e2; e1`` exactly (used when the syntactic
    footprint check of §4.3 cannot prove commutativity)."""
    return check_equivalence(
        fx.seq(e1, e2), fx.seq(e2, e1), well_formed_initial
    )
