"""Tests for the determinacy analysis (§4) and its optimizations.

Includes the paper's running examples at the resource level and the
key meta-property: every combination of optimizations (elimination,
pruning, commutativity) yields the same verdict.
"""

import itertools
import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    DeterminismOptions,
    check_determinism,
)
from repro.errors import AnalysisBudgetExceeded
from repro.fs import (
    ERR,
    ERROR,
    ID,
    FileSystem,
    Path,
    creat,
    eval_expr,
    file_,
    ite,
    mkdir,
    rm,
    seq,
)
from repro.resources import Resource, ResourceCompiler


def build_graph(programs, edges=()):
    """programs: dict name -> expr; edges: (prerequisite, dependent)."""
    g = nx.DiGraph()
    g.add_nodes_from(programs)
    g.add_edges_from(edges)
    return g, programs


def compile_all(resources, edges=()):
    compiler = ResourceCompiler()
    programs = {
        str(r.ref): compiler.compile(r) for r in resources
    }
    return build_graph(programs, edges)


def set_file(path, content):
    """Overwrite-style write (like a file resource): the last writer
    wins, so two of these to one path are genuinely non-deterministic
    (a bare creat pair just errors in both orders)."""
    p = Path.of(path)
    return ite(
        file_(p),
        seq(rm(p), creat(p, content)),
        ite(IsNone_pred(p), creat(p, content), ERR),
    )


def IsNone_pred(p):
    from repro.fs import none_

    return none_(p)


class TestBasicVerdicts:
    def test_empty_graph_deterministic(self):
        g, p = build_graph({})
        assert check_determinism(g, p).deterministic

    def test_single_resource_deterministic(self):
        g, p = build_graph({"a": creat("/f", "x")})
        assert check_determinism(g, p).deterministic

    def test_two_conflicting_writes_nondeterministic(self):
        g, p = build_graph(
            {"a": set_file("/f", "x"), "b": set_file("/f", "y")}
        )
        result = check_determinism(g, p)
        assert not result.deterministic
        assert result.witness_fs is not None
        assert result.witness_orders is not None

    def test_two_bare_creats_always_error_deterministically(self):
        """creat has a strict not-exists precondition, so a pair of
        bare creats errors in both orders — deterministic."""
        g, p = build_graph(
            {"a": creat("/f", "x"), "b": creat("/f", "y")}
        )
        assert check_determinism(g, p).deterministic

    def test_ordering_edge_restores_determinism(self):
        g, p = build_graph(
            {"a": creat("/f", "x"), "b": seq(rm("/f"), creat("/f", "y"))},
            edges=[("a", "b")],
        )
        assert check_determinism(g, p).deterministic

    def test_disjoint_resources_deterministic(self):
        g, p = build_graph(
            {"a": creat("/f", "x"), "b": creat("/g", "y"), "c": mkdir("/d")}
        )
        assert check_determinism(g, p).deterministic

    def test_error_order_dependence_detected(self):
        """One order errors, the other succeeds: non-deterministic."""
        g, p = build_graph(
            {"dir": mkdir("/a"), "file": creat("/a/f", "x")}
        )
        result = check_determinism(g, p)
        assert not result.deterministic

    def test_witness_is_confirmed_concretely(self):
        g, p = build_graph(
            {"a": set_file("/f", "x"), "b": set_file("/f", "y")}
        )
        result = check_determinism(g, p)
        order1, order2 = result.witness_orders
        e1 = seq(*[p[n] for n in order1])
        e2 = seq(*[p[n] for n in order2])
        assert eval_expr(e1, result.witness_fs) != eval_expr(
            e2, result.witness_fs
        )

    def test_always_error_is_deterministic(self):
        """Determinism permits predictable failure (Definition 1)."""
        g, p = build_graph({"a": ERR, "b": ERR})
        assert check_determinism(g, p).deterministic


class TestPaperExamples:
    def test_fig3a_package_file_missing_dep(self):
        """Apache package + site config without an edge: error depends
        on the order (package creates the parent directory)."""
        g, p = compile_all(
            [
                Resource("package", "apache2", {}),
                Resource(
                    "file",
                    "/etc/apache2/sites-available/000-default.conf",
                    {"content": "my site"},
                ),
            ]
        )
        result = check_determinism(g, p)
        assert not result.deterministic

    def test_fig3a_fixed_with_dependency(self):
        g, p = compile_all(
            [
                Resource("package", "apache2", {}),
                Resource(
                    "file",
                    "/etc/apache2/sites-available/000-default.conf",
                    {"content": "my site"},
                ),
            ],
            edges=[
                (
                    "Package['apache2']",
                    "File['/etc/apache2/sites-available/000-default.conf']",
                )
            ],
        )
        assert check_determinism(g, p).deterministic

    def test_independent_packages_deterministic(self):
        """cpp/ocaml-style toolchains without false dependencies."""
        g, p = compile_all(
            [
                Resource("package", "m4", {}),
                Resource("package", "make", {}),
                Resource("package", "gcc", {}),
                Resource("package", "ocaml", {}),
            ]
        )
        result = check_determinism(g, p)
        assert result.deterministic
        # Commutativity + elimination keep exploration trivial.
        assert result.stats.branches_explored <= 4

    def test_fig3c_silent_failure_detected(self):
        """remove-perl + install-go: two distinct success states."""
        g, p = compile_all(
            [
                Resource("package", "perl", {"ensure": "absent"}),
                Resource("package", "golang-go", {"ensure": "present"}),
            ]
        )
        result = check_determinism(g, p)
        assert not result.deterministic
        # The silent-failure aspect: from the empty machine both orders
        # *succeed* yet reach different states.
        remove_perl = p["Package['perl']"]
        install_go = p["Package['golang-go']"]
        empty = FileSystem.empty()
        out1 = eval_expr(seq(remove_perl, install_go), empty)
        out2 = eval_expr(seq(install_go, remove_perl), empty)
        assert out1 is not ERROR and out2 is not ERROR
        assert out1 != out2

    def test_user_sshkey_missing_dep(self):
        """The §6 benchmark bug class: ssh key without user edge."""
        g, p = compile_all(
            [
                Resource("user", "carol", {"managehome": True}),
                Resource(
                    "ssh_authorized_key",
                    "carol@laptop",
                    {"user": "carol", "key": "AAAA"},
                ),
            ]
        )
        assert not check_determinism(g, p).deterministic

    def test_user_sshkey_with_dep(self):
        g, p = compile_all(
            [
                Resource("user", "carol", {"managehome": True}),
                Resource(
                    "ssh_authorized_key",
                    "carol@laptop",
                    {"user": "carol", "key": "AAAA"},
                ),
            ],
            edges=[("User['carol']", "Ssh_authorized_key['carol@laptop']")],
        )
        assert check_determinism(g, p).deterministic


class TestOptimizationConsistency:
    """The §4.5 claim: each technique preserves (in-)equivalences, so
    verdicts must be identical with any subset of optimizations."""

    CONFIGS = [
        DeterminismOptions(
            use_commutativity=c,
            use_pruning=p,
            use_elimination=e,
            use_simplification=s,
        )
        for c, p, e, s in itertools.product([False, True], repeat=4)
    ]

    def _verdicts(self, g, programs):
        out = set()
        for options in self.CONFIGS:
            result = check_determinism(g, programs, options)
            out.add(result.deterministic)
        return out

    def test_fig3a_consistent(self):
        g, p = compile_all(
            [
                Resource("package", "nginx", {}),
                Resource(
                    "file",
                    "/etc/nginx/nginx.conf",
                    {"content": "worker_processes 4;"},
                ),
            ]
        )
        assert self._verdicts(g, p) == {False}

    def test_disjoint_consistent(self):
        g, p = build_graph(
            {"a": creat("/f", "x"), "b": creat("/g", "y")}
        )
        assert self._verdicts(g, p) == {True}

    @given(st.integers(min_value=0, max_value=20_000))
    @settings(max_examples=25, deadline=None)
    def test_random_small_graphs_consistent(self, seed):
        rng = random.Random(seed)
        paths = ["/a", "/a/f", "/b"]
        n = rng.randint(2, 4)
        programs = {}
        for i in range(n):
            kind = rng.randrange(4)
            target = rng.choice(paths)
            if kind == 0:
                programs[f"r{i}"] = creat(target, rng.choice("xy"))
            elif kind == 1:
                programs[f"r{i}"] = ite(
                    file_(Path.of(target)), ID, mkdir(target)
                )
            elif kind == 2:
                programs[f"r{i}"] = ite(
                    file_(Path.of(target)), rm(target), ID
                )
            else:
                programs[f"r{i}"] = ID
        edges = []
        names = list(programs)
        for i in range(len(names)):
            for j in range(i + 1, len(names)):
                if rng.random() < 0.3:
                    edges.append((names[i], names[j]))
        g, p = build_graph(programs, edges)
        verdicts = self._verdicts(g, p)
        assert len(verdicts) == 1, f"inconsistent verdicts for {programs}"


class TestBudget:
    def test_branch_budget_raises(self):
        programs = {
            f"r{i}": creat("/f", str(i)) for i in range(6)
        }
        g, p = build_graph(programs)
        options = DeterminismOptions(
            max_branches=10, use_commutativity=True, use_pruning=False,
            use_elimination=False,
        )
        with pytest.raises(AnalysisBudgetExceeded):
            check_determinism(g, p, options)

    def test_stats_populated(self):
        g, p = compile_all(
            [
                Resource("package", "ntp", {}),
                Resource("file", "/etc/ntp.conf", {"content": "servers"}),
            ],
            edges=[("Package['ntp']", "File['/etc/ntp.conf']")],
        )
        result = check_determinism(g, p)
        assert result.stats.resources_total == 2
        assert result.stats.total_seconds > 0
