#!/usr/bin/env python3
"""Client for the `rehearsal serve` verification daemon.

Two modes:

* **Self-hosted demo** (no arguments): starts a daemon on an ephemeral
  port inside this process, walks the whole API — health check, a
  POST /v1/verify round-trip, a verdict re-fetched by digest from the
  tiered cache, the Prometheus metrics — and asserts the daemon's
  verdict rows are byte-identical (after normalization) to an
  in-process `BatchVerifier` run over the same manifests.

      python examples/serve_client.py

* **Live-daemon gauntlet** (`--url`): runs against an already-running
  daemon.  With `--corpus` it POSTs every §6 corpus manifest and
  checks the rows against either a `rehearsal verify-batch --json`
  report (`--expect-json batch.json`, the daemon-e2e CI job's mode) or
  a fresh in-process run.  Any mismatch exits 1 with a diff.

      rehearsal serve --port 8421 &
      rehearsal verify-batch src/repro/corpus/manifests --no-cache --json batch.json
      python examples/serve_client.py --url http://127.0.0.1:8421 \\
          --corpus --expect-json batch.json

Rows naturally differ in run circumstances (timings, cache hits); the
comparison strips exactly the `RUN_CIRCUMSTANCE_FIELDS` documented in
`repro.service.schema` — everything else, verdict through race
localization to lint diagnostics, must match byte for byte.
"""

import argparse
import json
import sys
import tempfile
import urllib.request
from pathlib import Path

from repro.service import (
    BatchVerifier,
    discover_manifests,
    normalized_row,
)
from repro.corpus import manifest_dir


def http_json(url: str, payload=None, timeout: float = 120.0) -> dict:
    """One JSON-over-HTTP round trip (POST when a payload is given)."""
    if payload is not None:
        request = urllib.request.Request(
            url,
            data=json.dumps(payload).encode("utf8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
    else:
        request = urllib.request.Request(url)
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.load(response)


def daemon_rows(base_url: str, paths) -> list:
    """POST every manifest and collect its verdict row."""
    rows = []
    for path in paths:
        source = Path(path).read_text(encoding="utf8")
        reply = http_json(
            base_url + "/v1/verify",
            {"source": source, "name": str(path)},
        )
        rows.append(reply["row"])
    return rows


def reference_rows(paths, expect_json=None) -> list:
    """The rows the daemon must match: a committed verify-batch --json
    report, or a fresh in-process run over the same manifests."""
    if expect_json is not None:
        report = json.loads(Path(expect_json).read_text(encoding="utf8"))
        return report["results"]
    batch = BatchVerifier(cache=None).verify_paths(paths)
    return [r.to_dict() for r in batch.results]


def compare_rows(daemon, reference) -> int:
    """Print a verdict-by-verdict comparison; return mismatch count."""
    mismatches = 0
    for got, want in zip(daemon, reference):
        got_n, want_n = normalized_row(got), normalized_row(want)
        name = want.get("name", "<?>")
        if got_n == want_n:
            print(f"  {name}: {got['status']} (rows identical)")
        else:
            mismatches += 1
            diff = {
                key
                for key in set(got_n) | set(want_n)
                if got_n.get(key) != want_n.get(key)
            }
            print(f"  {name}: MISMATCH in {sorted(diff)}")
            for key in sorted(diff):
                print(f"    daemon: {key}={got_n.get(key)!r}")
                print(f"    batch:  {key}={want_n.get(key)!r}")
    if len(daemon) != len(reference):
        mismatches += 1
        print(
            f"  row count differs: daemon {len(daemon)}, "
            f"reference {len(reference)}"
        )
    return mismatches


def run_against(base_url: str, corpus: bool, expect_json) -> int:
    health = http_json(base_url + "/healthz")
    print(
        f"daemon at {base_url}: {health['status']}, "
        f"version {health['version']}, uptime {health['uptime_seconds']}s"
    )

    paths = discover_manifests(str(manifest_dir()))
    if not corpus:
        paths = paths[:4]  # the demo keeps the self-hosted run short
    print(f"verifying {len(paths)} corpus manifest(s) through the daemon")
    rows = daemon_rows(base_url, paths)

    # Re-fetch one verdict by digest: the tiered-cache read path.
    digest = rows[0]["cache_key"]
    if digest:
        fetched = http_json(f"{base_url}/v1/verdicts/{digest}")
        assert normalized_row(fetched["row"]) == normalized_row(rows[0])
        print(f"verdict re-fetched by digest {digest[:12]}… from the cache")

    print("comparing against verify-batch rows:")
    mismatches = compare_rows(rows, reference_rows(paths, expect_json))
    if mismatches:
        print(f"{mismatches} row(s) differ", file=sys.stderr)
        return 1

    metrics = urllib.request.urlopen(
        base_url + "/metrics", timeout=30
    ).read().decode("utf8")
    for line in metrics.splitlines():
        if line.startswith("rehearsal_daemon_cache_lookups_total{"):
            print(f"metrics: {line}")
    print("all rows byte-identical after normalization.")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--url",
        default=None,
        help="base URL of a running daemon (default: self-host one)",
    )
    parser.add_argument(
        "--corpus",
        action="store_true",
        help="verify all 19 corpus manifests (default with --url "
        "left unset: a 4-manifest demo subset)",
    )
    parser.add_argument(
        "--expect-json",
        metavar="PATH",
        default=None,
        help="compare against this 'rehearsal verify-batch --json' "
        "report instead of a fresh in-process run",
    )
    args = parser.parse_args()

    if args.url is not None:
        return run_against(args.url.rstrip("/"), args.corpus, args.expect_json)

    # Self-hosted mode: daemon on an ephemeral port, scratch cache.
    from repro.service.daemon import DaemonConfig, daemon_in_thread

    with tempfile.TemporaryDirectory(prefix="rehearsal-serve-") as cache_dir:
        config = DaemonConfig(port=0, cache_dir=cache_dir)
        with daemon_in_thread(config) as daemon:
            return run_against(
                daemon.base_url, args.corpus, args.expect_json
            )


if __name__ == "__main__":
    sys.exit(main())
