"""The determinacy analysis (paper §4, Theorem 1).

``check_determinism`` decides whether a resource graph maps every
initial filesystem to at most one outcome:

1. optionally *eliminate* resources that cannot affect the verdict
   (§4.4) and *prune* paths private to single resources (§4.4);
2. symbolically execute the graph (Fig. 7's Φ_G) over the
   *reachable-state DAG* rather than the order tree: the worklist is
   keyed on ``(frozenset(remaining), state_fingerprint)``, so when two
   interleavings converge on the same symbolic state the subtree is
   explored once (states are hash-consed term DAGs — fingerprint
   equality is uid comparison, see
   :meth:`repro.smt.state.SymbolicState.fingerprint`).  The
   commutativity reduction (Fig. 9a) still applies first: when a
   fringe resource commutes with every other remaining resource that
   could be scheduled before or after it, explore only that resource
   next instead of branching;
3. assert that some explored final state differs from the first one —
   state equality is transitive at a fixed initial state, so comparing
   every branch against branch 0 is equivalent to comparing all pairs.
   Final states are already deduplicated by fingerprint (one witness
   order kept per state), so the solver only ever sees genuinely
   different finals;
4. hand the formula to the SAT backend.  SAT ⇒ non-deterministic, with
   a decoded witness initial filesystem and two diverging orders.

The memoization changes the Fig. 13 asymptotics: n unordered,
mutually-conflicting writers induce n! orders but only O(n·2^n)
distinct (remaining, state) pairs, so exploration collapses from the
factorial order tree to the subset/state lattice.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.analysis.commutativity import (
    Footprint,
    commutativity_matrix,
    footprint,
)
from repro.analysis.elimination import EliminationReport, eliminate_resources
from repro.analysis.localize import RaceReport, localize_race
from repro.analysis.pruning import PruneReport, prune_manifest
from repro.errors import AnalysisBudgetExceeded
from repro.fs import FileSystem, eval_expr, seq
from repro.fs import syntax as fx
from repro.logic.terms import TermBank
from repro.sat.backend import parse_backend_spec
from repro.sat.cube import schedule, split_frontier
from repro.smt.encoder import apply_expr
from repro.smt.model import decode_filesystem
from repro.smt.query import IncrementalQuery
from repro.smt.state import (
    SymbolicState,
    initial_constraints,
    initial_state,
    states_differ,
)
from repro.smt.values import PathDomains

NodeId = Hashable


def _incremental_default() -> bool:
    """``REHEARSAL_INCREMENTAL=1`` forces the incremental store on for
    every analysis in the process (the CI matrix cell that re-runs the
    tier-1 suite with persistence enabled)."""
    return os.environ.get("REHEARSAL_INCREMENTAL", "") not in ("", "0")


@dataclass
class DeterminismOptions:
    """Switches for the three scaling techniques of §4 — the Fig. 11
    experiments toggle these."""

    use_commutativity: bool = True
    use_pruning: bool = True
    use_elimination: bool = True
    use_simplification: bool = True
    #: Key the exploration worklist on (remaining, state fingerprint)
    #: so converging interleavings share one subtree.  Off, the
    #: exploration degenerates to the order tree — the naive
    #: order-enumerating oracle the property tests compare against.
    use_memoization: bool = True
    well_formed_initial: bool = True
    #: The lint fast path: before building any symbolic state, check
    #: whether every *unordered* pair of resources commutes (Lemma 4,
    #: the same footprint matrix the lint race rule uses).  If so the
    #: graph is deterministic — any two linearizations are related by
    #: adjacent transpositions of unordered pairs — and the check
    #: returns with zero SAT queries.  Sound (Lemma 4 is a sufficient
    #: condition); on fall-through the full analysis runs unchanged.
    lint_prefilter: bool = False
    max_branches: int = 5000
    timeout_seconds: Optional[float] = None
    max_conflicts: Optional[int] = None
    #: SAT backend spec consumed by
    #: :func:`repro.sat.backend.parse_backend_spec`: ``"cdcl"`` (the
    #: pure-Python reference), ``"portfolio[:K]"`` (race K solver
    #: configurations per query), or ``"external:auto|<name-or-path>"``
    #: (a SAT-competition binary on PATH).  A plain string so options
    #: stay picklable and hash into the verdict-cache key.
    solver: str = "cdcl"
    #: Portfolio size: with a value K > 1 (and ``solver="cdcl"``),
    #: every SAT query races K diversified CDCL configurations with
    #: deterministic first-answer-wins (lowest member index in the
    #: earliest budget round) — see :mod:`repro.sat.portfolio`.
    portfolio: int = 1
    #: Cube-and-conquer width: with a value N > 1 the reachable-state
    #: exploration runs in cube mode — finals race against the
    #: canonical base order *as they are discovered*, stopping at the
    #: first divergence, and graphs with a frontier above the
    #: :data:`CUBE_POOL_GRAIN` threshold split the frontier into cubes
    #: conquered across N workers (:mod:`repro.sat.cube`).  Also the
    #: process-pool width for portfolio helper attempts.
    solver_workers: int = 1
    #: Persist intermediate results (CNF blocks, commutativity
    #: verdicts, idempotence, exploration subtrees) across processes in
    #: the :mod:`repro.service.incremental` store, so re-verifying an
    #: edited catalog reuses everything the edit did not invalidate.
    #: Verdicts are byte-identical with the store hot, cold, or
    #: deleted mid-run; this flag is therefore *excluded* from the
    #: verdict-cache key.  Defaults from ``REHEARSAL_INCREMENTAL``.
    incremental: bool = field(default_factory=_incremental_default)
    #: Directory holding ``incremental.sqlite`` (default: the
    #: :func:`repro.service.cache.default_cache_dir`).
    incremental_dir: Optional[str] = None


@dataclass
class DeterminismStats:
    """Instrumentation reported by every check (feeds Fig. 11)."""

    resources_total: int = 0
    resources_after_elimination: int = 0
    paths_before_pruning: int = 0
    paths_after_pruning: int = 0
    #: Stateful paths written by two or more resources (from
    #: :attr:`repro.analysis.pruning.PruneReport.writers_by_path`) —
    #: the contention candidates race localization can name.
    contended_paths: int = 0
    modeled_paths: int = 0
    branches_explored: int = 0
    #: Transitions that landed on an already-visited
    #: (remaining, state-fingerprint) key: each one is a whole subtree
    #: of the order tree that was *not* re-explored.
    memo_hits: int = 0
    #: Distinct exploration states reached by two or more
    #: interleavings — the convergence points of the reachable-state
    #: DAG (≤ ``memo_hits``; a state arrived at k times contributes
    #: one merge and k-1 memo hits).
    states_merged: int = 0
    #: Final states surviving fingerprint deduplication — what the SAT
    #: loop actually compares (the order tree has one final per
    #: explored order; the DAG keeps one witness order per state).
    distinct_finals: int = 0
    sat_vars: int = 0
    sat_clauses: int = 0
    #: Assumption-based checks issued on the shared solver: one per
    #: candidate order pair until the first diverging pair (plus the
    #: localization checks, counted separately in the race report).
    sat_queries: int = 0
    #: Variables removed by CNF preprocessing before search.
    vars_eliminated: int = 0
    #: CDCL conflicts/decisions summed over every check on the shared
    #: solver (including localization) — the ``--profile`` view.
    sat_conflicts: int = 0
    sat_decisions: int = 0
    explore_seconds: float = 0.0
    encode_seconds: float = 0.0
    solve_seconds: float = 0.0
    total_seconds: float = 0.0
    elimination_fallback: bool = False
    #: True when the lint prefilter proved determinism footprint-only
    #: (every unordered pair commutes): no symbolic exploration, no
    #: encoding, zero SAT queries.
    prefilter_proved: bool = False
    #: Incremental-store reuse (0 unless ``options.incremental``):
    #: recorded results served — whole-run root hits, grafted
    #: exploration subtrees, and cached per-resource idempotence
    #: verdicts.  Like the timing fields, these describe the *run*, not
    #: the manifest: incremental and from-scratch rows agree on
    #: everything else.
    subtree_reuse_hits: int = 0
    #: Subformula encodings rehydrated from the persistent CNF cache.
    cnf_cache_hits: int = 0
    #: Resource-pair commutativity verdicts served from the store
    #: instead of recomputed from footprints.
    commute_cache_hits: int = 0


@dataclass
class DeterminismResult:
    deterministic: bool
    stats: DeterminismStats
    witness_fs: Optional[FileSystem] = None
    witness_orders: Optional[Tuple[List[NodeId], List[NodeId]]] = None
    witness_outcomes: Optional[Tuple[object, object]] = None
    #: For non-deterministic manifests: the racing resource pair and
    #: contended path recovered from the unsat core of the equality
    #: assumptions (see :mod:`repro.analysis.localize`).
    race: Optional[RaceReport] = None

    def __bool__(self) -> bool:
        return self.deterministic


class _Explorer:
    """Symbolic execution of Φ_G over the reachable-state DAG.

    An iterative, worklist-driven traversal replacing the recursive
    order-tree walk.  Each worklist entry is
    ``(remaining, state, order)``; expansion applies every schedulable
    resource (after the Fig. 9a commutativity reduction) and memoizes
    successors on ``(frozenset(remaining), state.fingerprint())``.
    When two interleavings converge on the same key, the second
    arrival is a :attr:`memo_hits` and its subtree is not re-explored
    — the n! order tree collapses to the distinct-state count.  Final
    states fall out of the same memo (the key with ``remaining`` empty),
    so :attr:`finals` is already deduplicated by fingerprint, holding
    one witness order per distinct final state for ``localize`` and
    ``--explain``.

    Per-branch costs are hoisted into ``__init__``: the full pairwise
    commutativity matrix and every node's descendant and predecessor
    sets are computed once (previously ``footprints_commute`` and
    ``nx.descendants`` ran on every ``_explore`` call, O(V·E) per
    branch).
    """

    def __init__(
        self,
        graph: "nx.DiGraph",
        programs: Dict[NodeId, fx.Expr],
        bank: TermBank,
        options: DeterminismOptions,
        deadline: Optional[float],
        template: Optional["_Explorer"] = None,
    ):
        self.graph = graph
        self.programs = programs
        self.bank = bank
        self.options = options
        self.deadline = deadline
        if template is not None:
            # A cube's sub-explorer shares the (read-only) per-graph
            # precomputations instead of redoing the O(V·E) work.
            self.prints = template.prints
            self.commutes = template.commutes
            self.descendants = template.descendants
            self.predecessors = template.predecessors
            self.sort_key = template.sort_key
        else:
            nodes = list(graph.nodes)
            self.prints: Dict[NodeId, Footprint] = {
                n: footprint(programs[n]) for n in nodes
            }
            self.commutes = commutativity_matrix(self.prints)
            self.descendants: Dict[NodeId, frozenset] = {
                n: frozenset(nx.descendants(graph, n)) for n in nodes
            }
            self.predecessors: Dict[NodeId, frozenset] = {
                n: frozenset(graph.predecessors(n)) for n in nodes
            }
            self.sort_key: Dict[NodeId, str] = {
                n: str(n) for n in nodes
            }
        self.branches = 0
        self.memo_hits = 0
        self.states_merged = 0
        self.explore_seconds = 0.0
        self.finals: List[Tuple[SymbolicState, List[NodeId]]] = []

    def run(
        self,
        init: SymbolicState,
        remaining: Optional[frozenset] = None,
        prefix: Tuple[NodeId, ...] = (),
    ) -> None:
        """Explore exhaustively (drains :meth:`walk`)."""
        for _ in self.walk(init, remaining, prefix):
            pass

    def walk(
        self,
        init: SymbolicState,
        remaining: Optional[frozenset] = None,
        prefix: Tuple[NodeId, ...] = (),
    ):
        """Lazy exploration: a generator yielding each deduplicated
        final ``(state, order)`` in DFS order, as it is discovered
        (and appended to :attr:`finals`).  Cube mode consumes finals
        eagerly — racing each against the base order while exploration
        continues — which is why this is a generator and not a loop;
        ``run`` drains it for the classic explore-then-solve shape.
        Time between yields accrues to :attr:`explore_seconds`, so the
        explore/solve split in the stats survives the interleaving.

        ``remaining``/``prefix`` let a cube start below the root: the
        sub-exploration behaves as if ``prefix`` was already applied
        to reach ``init``.
        """
        use_memo = self.options.use_memoization
        #: (frozenset(remaining), fingerprint) -> arrival count.  The
        #: first arrival enqueues the state; later ones only bump the
        #: counters.
        arrivals: Dict[tuple, int] = {}
        if remaining is None:
            remaining = frozenset(self.graph.nodes)
        stack: List[Tuple[frozenset, SymbolicState, tuple]] = [
            (remaining, init, tuple(prefix))
        ]
        tick = time.perf_counter()
        while stack:
            remaining, state, order = stack.pop()
            if not remaining:
                final = (state, list(order))
                self.finals.append(final)
                self.explore_seconds += time.perf_counter() - tick
                yield final
                tick = time.perf_counter()
                continue
            self._check_budget()
            chosen = self.frontier(remaining)
            pending = []
            for n in chosen:
                self.branches += 1
                next_state = apply_expr(
                    self.bank, state, self.programs[n]
                )
                next_remaining = remaining - {n}
                if use_memo:
                    key = (next_remaining, next_state.fingerprint())
                    count = arrivals.get(key, 0)
                    arrivals[key] = count + 1
                    if count:
                        self.memo_hits += 1
                        if count == 1:
                            self.states_merged += 1
                        continue
                pending.append(
                    (next_remaining, next_state, order + (n,))
                )
            # Reversed push keeps pop order equal to the old recursive
            # DFS's, so finals[0] is the same base order as before.
            stack.extend(reversed(pending))
        self.explore_seconds += time.perf_counter() - tick

    def frontier(self, remaining: frozenset) -> List[NodeId]:
        """The schedulable resources of ``remaining`` (no unsatisfied
        predecessor), in canonical sorted order, after the Fig. 9a
        commutativity reduction — the branching choices of one
        expansion, and the cube split of the root."""
        fringe = sorted(
            (
                n
                for n in remaining
                if not (self.predecessors[n] & remaining)
            ),
            key=self.sort_key.__getitem__,
        )
        assert fringe, "resource graph has a cycle"
        if self.options.use_commutativity:
            for n in fringe:
                if self._commutes_with_all(n, remaining):
                    return [n]
        return fringe

    def _commutes_with_all(self, n: NodeId, remaining: frozenset) -> bool:
        """True when n commutes with every other remaining resource
        that is not a descendant of n (descendants always run after n
        in every linearization, so they never need to swap past it)."""
        descendants = self.descendants[n]
        commutes = self.commutes[n]
        for m in remaining:
            if m == n or m in descendants:
                continue
            if not commutes[m]:
                return False
        return True

    def _check_budget(self) -> None:
        if self.branches > self.options.max_branches:
            raise AnalysisBudgetExceeded(
                f"exceeded {self.options.max_branches} exploration "
                f"branches with {self.memo_hits} memo hits over "
                f"{self.states_merged} merged states and "
                f"{len(self.finals)} finals so far (the manifest has "
                "too many unordered, non-commuting resources — "
                "see Fig. 13)",
                branches=self.branches,
                memo_hits=self.memo_hits,
                states_merged=self.states_merged,
            )
        if self.deadline is not None and time.perf_counter() > self.deadline:
            raise AnalysisBudgetExceeded(
                "determinism check timed out",
                branches=self.branches,
                wall_clock=True,
                memo_hits=self.memo_hits,
                states_merged=self.states_merged,
            )


class _IncrementalExplorer(_Explorer):
    """An :class:`_Explorer` that reads and writes the persistent
    exploration store (:mod:`repro.service.incremental`).

    Differences from the base walk, all invisible to the verdict:

    - the commutativity matrix is served per-pair from the store
      (identical booleans — :func:`footprints_commute` is pure);
    - on the *first* arrival at an interior ``(remaining, state)``
      node, the store is consulted; a hit **grafts** the recorded
      subtree — its final-state digests and effort counters are taken
      on faith and the subtree is not walked.  Grafted finals have no
      term-level states, so the caller may conclude *deterministic*
      only when every final digest (explored and grafted) coincides;
      any other outcome discards the grafted run and re-runs from
      scratch (see ``check_determinism``).  Grafted effort counters
      are kept out of :attr:`branches` so the budget check behaves
      like the explored walk;
    - every arrival DAG edge is recorded so a clean, graft-free walk
      can spill each subtree's standalone result for future runs.
    """

    def __init__(self, graph, programs, bank, options, deadline, inc):
        super().__init__(graph, programs, bank, options, deadline)
        self.inc = inc
        from repro.service.incremental import state_digest

        self._state_digest_fn = state_digest
        matrix, self.commute_hits = inc.commutativity(self.prints)
        self.commutes = matrix
        self.grafted = False
        self.subtree_hits = 0
        self.graft_final_digests: set = set()
        self.graft_branches = 0
        self.graft_memo = 0
        self.graft_merged = 0
        #: walk key -> dense index; per-index persistent digests.
        self._index: Dict[tuple, int] = {}
        self._subtree_digest: Dict[int, str] = {}
        self._state_digest: Dict[int, str] = {}
        self._is_final: Dict[int, bool] = {}
        self._edges: List[Tuple[int, int]] = []

    def _arrive(self, remaining: frozenset, state) -> int:
        """Index a first arrival, computing its persistent digests."""
        key = (remaining, state.fingerprint())
        idx = len(self._index)
        self._index[key] = idx
        sd = self._state_digest_fn(self.bank, state)
        self._state_digest[idx] = sd
        self._subtree_digest[idx] = self.inc.subtree_key(remaining, sd)
        self._is_final[idx] = not remaining
        return idx

    def walk(self, init, remaining=None, prefix=()):
        arrivals: Dict[tuple, int] = {}
        if remaining is None:
            remaining = frozenset(self.graph.nodes)
        root_idx = self._arrive(remaining, init)
        stack: List[Tuple[frozenset, SymbolicState, tuple, int]] = [
            (remaining, init, tuple(prefix), root_idx)
        ]
        tick = time.perf_counter()
        while stack:
            remaining, state, order, idx = stack.pop()
            if not remaining:
                final = (state, list(order))
                self.finals.append(final)
                self.explore_seconds += time.perf_counter() - tick
                yield final
                tick = time.perf_counter()
                continue
            self._check_budget()
            chosen = self.frontier(remaining)
            pending = []
            for n in chosen:
                self.branches += 1
                next_state = apply_expr(
                    self.bank, state, self.programs[n]
                )
                next_remaining = remaining - {n}
                key = (next_remaining, next_state.fingerprint())
                count = arrivals.get(key, 0)
                arrivals[key] = count + 1
                if count:
                    self.memo_hits += 1
                    if count == 1:
                        self.states_merged += 1
                    self._edges.append((idx, self._index[key]))
                    continue
                child_idx = self._arrive(next_remaining, next_state)
                self._edges.append((idx, child_idx))
                if next_remaining:
                    entry = self.inc.lookup_subtree(
                        self._subtree_digest[child_idx]
                    )
                    if entry is not None:
                        self.grafted = True
                        self.subtree_hits += 1
                        self.graft_final_digests.update(entry["finals"])
                        self.graft_branches += entry["branches"]
                        self.graft_memo += entry["memo"]
                        self.graft_merged += entry["merged"]
                        continue
                pending.append(
                    (next_remaining, next_state, order + (n,), child_idx)
                )
            # Reversed push keeps pop order equal to the base walk's.
            stack.extend(reversed(pending))
        self.explore_seconds += time.perf_counter() - tick

    def combined_final_digests(self) -> set:
        """Digests of every final — explored and grafted.  Hash-consing
        makes the digest injective within one bank, so size 1 here
        means every interleaving reaches the same symbolic state."""
        out = set(self.graft_final_digests)
        for idx, final in self._is_final.items():
            if final:
                out.add(self._state_digest[idx])
        return out

    def spill(self) -> None:
        """After a clean, graft-free, complete walk: persist each
        interior node's standalone subtree summary.  For a sub-DAG
        with V nodes and E (simple) edges, a standalone exploration
        from its root reports exactly E branches, E − (V − 1) memo
        hits, and one merged state per node with local in-degree ≥ 2 —
        arrivals and edges are in bijection."""
        if self.grafted:
            return
        count = len(self._index)
        if count == 0 or count > self.inc.SPILL_MAX_NODES:
            return
        children: List[List[int]] = [[] for _ in range(count)]
        outdeg = [0] * count
        for p, c in self._edges:
            children[p].append(c)
            outdeg[p] += 1
        # Reachability masks, children before parents (a child's index
        # can exceed its parent's only via memo edges, so iterate until
        # stable — the DAG is shallow: remaining strictly shrinks, so
        # |remaining| is a level function and one pass in decreasing
        # level order suffices.
        level = {
            idx: len(key[0]) for key, idx in self._index.items()
        }
        reach = [0] * count
        for idx in sorted(range(count), key=lambda i: level[i]):
            mask = 1 << idx
            for c in children[idx]:
                mask |= reach[c]
            reach[idx] = mask
        # Digest collisions (distinct walk nodes, same persistent key)
        # would make an entry ambiguous; skip those.
        seen_digest: Dict[str, int] = {}
        ambiguous: set = set()
        for idx, dig in self._subtree_digest.items():
            if dig in seen_digest:
                ambiguous.add(dig)
            seen_digest[dig] = idx
        items: List[Tuple[str, dict]] = []
        for idx in range(count):
            if self._is_final[idx]:
                continue
            dig = self._subtree_digest[idx]
            if dig in ambiguous:
                continue
            mask = reach[idx]
            nodes = mask.bit_count()
            edges = 0
            indeg: Dict[int, int] = {}
            for p, c in self._edges:
                if (mask >> p) & 1:
                    edges += 1
                    indeg[c] = indeg.get(c, 0) + 1
            finals = sorted(
                self._state_digest[i]
                for i in range(count)
                if (mask >> i) & 1 and self._is_final[i]
            )
            if not finals:
                continue  # should not happen; never record an
                # entry a graft could not conclude from
            items.append(
                (
                    dig,
                    {
                        "finals": finals,
                        "branches": edges,
                        "memo": edges - (nodes - 1),
                        "merged": sum(
                            1 for v in indeg.values() if v >= 2
                        ),
                    },
                )
            )
        if items:
            self.inc.spill_subtrees(items)


def check_determinism(
    graph: "nx.DiGraph",
    programs: Dict[NodeId, fx.Expr],
    options: Optional[DeterminismOptions] = None,
    incremental_store=None,
) -> DeterminismResult:
    """Decide determinism of a resource graph (Theorem 1).

    ``graph`` edges point prerequisite → dependent; ``programs`` maps
    node ids to compiled FS programs.

    ``incremental_store`` — an already-open
    :class:`repro.service.incremental.IncrementalStore` handle to
    reuse on the incremental path, instead of resolving one per call:
    the pipeline opens a single handle per verify, and the daemon
    keeps one open for the life of the process so the store's SQLite
    page cache stays hot across requests.
    """
    options = options or DeterminismOptions()
    stats = DeterminismStats(resources_total=graph.number_of_nodes())
    start = time.perf_counter()
    deadline = (
        start + options.timeout_seconds
        if options.timeout_seconds is not None
        else None
    )

    # The lint fast path runs before any other pass: footprints of the
    # original programs are exactly what `rehearsal lint` computes, so
    # a manifest lint proves pairwise-disjoint skips elimination,
    # pruning, symbolic exploration, and SAT entirely.
    if options.lint_prefilter and graph.number_of_nodes() > 1:
        prints = {n: footprint(programs[n]) for n in graph.nodes}
        if _unordered_pairs_commute(graph, commutativity_matrix(prints)):
            stats.prefilter_proved = True
            stats.resources_after_elimination = stats.resources_total
            stats.distinct_finals = 1
            stats.total_seconds = time.perf_counter() - start
            return DeterminismResult(True, stats)

    work_graph = graph
    work_programs = dict(programs)

    if options.use_elimination:
        work_graph, elim = eliminate_resources(work_graph, work_programs)
    stats.resources_after_elimination = work_graph.number_of_nodes()

    node_list = list(work_graph.nodes)
    exprs = [work_programs[n] for n in node_list]
    if options.use_pruning and node_list:
        pruned_exprs, prune_report = prune_manifest(exprs)
        stats.paths_before_pruning = prune_report.stateful_before
        stats.paths_after_pruning = prune_report.stateful_after
        stats.contended_paths = sum(
            1
            for writers in prune_report.writers_by_path.values()
            if len(writers) > 1
        )
        for n, e in zip(node_list, pruned_exprs):
            work_programs[n] = e
    else:
        from repro.analysis.commutativity import footprint as _fp

        writer_counts: Dict[object, int] = {}
        for e in exprs:
            fp = _fp(e)
            for p in fp.writes | fp.dir_ensures:
                writer_counts[p] = writer_counts.get(p, 0) + 1
        stats.paths_before_pruning = len(writer_counts)
        stats.paths_after_pruning = len(writer_counts)
        stats.contended_paths = sum(
            1 for count in writer_counts.values() if count > 1
        )

    if options.use_simplification:
        from repro.fs.rewrite import simplify

        for n in list(work_graph.nodes):
            work_programs[n] = simplify(work_programs[n])

    if work_graph.number_of_nodes() <= 1:
        stats.total_seconds = time.perf_counter() - start
        stats.modeled_paths = stats.paths_after_pruning
        stats.distinct_finals = 1  # the single (possibly empty) order
        return DeterminismResult(True, stats)

    bank = TermBank()
    domains = PathDomains.for_exprs(
        [work_programs[n] for n in work_graph.nodes]
    )
    stats.modeled_paths = len(domains)
    init = initial_state(bank, domains)

    # Cross-run persistence: only on the sequential, memoized path
    # (cube workers split the walk, and the graft bookkeeping assumes
    # the reachable-state DAG) and only for string node ids (recorded
    # orders and races round-trip through JSON).
    inc = None
    if (
        options.incremental
        and options.solver_workers == 1
        and options.use_memoization
        and all(isinstance(n, str) for n in graph.nodes)
    ):
        try:
            from repro.service.incremental import DetIncremental

            inc = DetIncremental.create(
                graph,
                programs,
                work_graph,
                work_programs,
                domains,
                options,
                store=incremental_store,
            )
        except Exception:
            inc = None  # unusable storage degrades to a cold run
    if inc is not None:
        served = inc.lookup_root()
        if served is not None:
            served.stats.subtree_reuse_hits += 1
            return served
        explorer: _Explorer = _IncrementalExplorer(
            work_graph, work_programs, bank, options, deadline, inc
        )
        stats.commute_cache_hits += explorer.commute_hits
    else:
        explorer = _Explorer(work_graph, work_programs, bank, options, deadline)
    backend = _backend_factory(options)

    # All order-pair queries for this manifest share one incrementally
    # reused solver: the initial-state constraints are asserted once,
    # each pair's state difference is guarded by a selector variable,
    # and every check retains the clauses (and learned clauses) of the
    # previous ones.  Pairs are encoded lazily — a diverging pair ends
    # the loop, and anything learned refuting earlier pairs carries
    # over to later ones.
    query: Optional[IncrementalQuery] = None
    result = None
    sat_index = None
    sat_selector = None

    def init_query() -> IncrementalQuery:
        encode_start = time.perf_counter()
        q = IncrementalQuery(bank, backend=backend)
        q.assert_term(
            initial_constraints(
                bank, domains, well_formed=options.well_formed_initial
            )
        )
        stats.encode_seconds += time.perf_counter() - encode_start
        return q

    eager_raced = False
    if options.solver_workers > 1:
        root = frozenset(work_graph.nodes)
        choices = explorer.frontier(root)
        if (
            len(choices) > 1
            and work_graph.number_of_nodes() >= CUBE_POOL_GRAIN
        ):
            # Coarse-grained graph: split the root frontier into cubes
            # conquered across workers, then race the merged finals
            # below exactly like the sequential path.
            _conquer_cubes(explorer, init, root, choices, options)
        else:
            # Fine-grained graph (the common case): eager in-process
            # cube mode.  Each final races against the canonical base
            # order the moment exploration lands it, and the first
            # divergence stops exploration — on nondeterministic
            # manifests most of the state space is never walked.
            # Discovery order equals the sequential DFS finals order,
            # so the selector names, clause assertion order, and solver
            # state at the first SAT are identical to the sequential
            # backend's — which is why race localizations match
            # byte-for-byte.
            eager_raced = True
            walk = explorer.walk(init)
            base_state, base_order = next(walk)
            for state_i, _order_i in walk:
                # walk() only re-checks the deadline at its next
                # expansion; finals already sitting on the DFS stack
                # would each get a full SAT query past the timeout
                # without this check (mirrors the sequential loop).
                if deadline is not None and time.perf_counter() > deadline:
                    raise AnalysisBudgetExceeded(
                        "determinism check timed out",
                        branches=explorer.branches,
                        wall_clock=True,
                        memo_hits=explorer.memo_hits,
                        states_merged=explorer.states_merged,
                    )
                i = len(explorer.finals) - 1
                encode_start = time.perf_counter()
                differ = states_differ(
                    bank, state_i, base_state, domains.paths
                )
                if differ is bank.FALSE:
                    stats.encode_seconds += (
                        time.perf_counter() - encode_start
                    )
                    continue  # symbolically identical final states
                if query is None:
                    query = init_query()
                selector = query.add_selector(f"pair${i}", differ)
                stats.encode_seconds += time.perf_counter() - encode_start
                result = query.check(
                    assumptions=[selector],
                    max_conflicts=options.max_conflicts,
                )
                stats.sat_queries += 1
                if result.sat:
                    sat_index = i
                    sat_selector = selector
                    break
                if not result.core_lits:
                    break
    else:
        explorer.run(init)

    stats.explore_seconds = explorer.explore_seconds
    stats.branches_explored = explorer.branches
    stats.memo_hits = explorer.memo_hits
    stats.states_merged = explorer.states_merged
    finals = explorer.finals
    stats.distinct_finals = len(finals)

    if inc is not None and isinstance(explorer, _IncrementalExplorer):
        stats.subtree_reuse_hits += explorer.subtree_hits
        stats.branches_explored += explorer.graft_branches
        stats.memo_hits += explorer.graft_memo
        stats.states_merged += explorer.graft_merged
        explorer.spill()
        if explorer.grafted:
            # Some subtrees were served from the store, so `finals`
            # only covers the explored region.  The graft is
            # conclusive only when every final state — explored and
            # grafted — has the same digest; anything else (including
            # a grafted divergence) needs the symbolic witness, which
            # only a from-scratch walk can produce.
            combined = explorer.combined_final_digests()
            stats.distinct_finals = len(combined)
            if len(combined) == 1:
                stats.total_seconds = time.perf_counter() - start
                return DeterminismResult(True, stats)
            scratch = check_determinism(
                graph, programs, replace(options, incremental=False)
            )
            inc.record_root(scratch)
            return scratch

    if len(finals) <= 1:
        stats.total_seconds = time.perf_counter() - start
        if inc is not None:
            inc.record_root(DeterminismResult(True, stats))
        return DeterminismResult(True, stats)

    base_state, base_order = finals[0]
    if not eager_raced:
        query = init_query()
        for i in range(1, len(finals)):
            if deadline is not None and time.perf_counter() > deadline:
                raise AnalysisBudgetExceeded(
                    "determinism check timed out",
                    branches=explorer.branches,
                    wall_clock=True,
                    memo_hits=explorer.memo_hits,
                    states_merged=explorer.states_merged,
                )
            state_i, _ = finals[i]
            encode_start = time.perf_counter()
            differ = states_differ(bank, state_i, base_state, domains.paths)
            if differ is bank.FALSE:
                stats.encode_seconds += time.perf_counter() - encode_start
                continue  # symbolically identical final states
            selector = query.add_selector(f"pair${i}", differ)
            stats.encode_seconds += time.perf_counter() - encode_start
            result = query.check(
                assumptions=[selector], max_conflicts=options.max_conflicts
            )
            stats.sat_queries += 1
            if result.sat:
                sat_index = i
                sat_selector = selector
                break
            if not result.core_lits:
                # The initial-state constraints alone are unsatisfiable:
                # no pair can ever diverge, skip the remaining queries.
                break

    if query is not None:
        stats.sat_vars = query.cnf.num_vars
        stats.sat_clauses = len(query.cnf.clauses)
        stats.solve_seconds = query.solve_seconds
        stats.sat_conflicts = query.conflicts
        stats.sat_decisions = query.decisions
    stats.vars_eliminated = result.eliminated_vars if result else 0
    stats.total_seconds = time.perf_counter() - start

    if result is None or not result.sat:
        if inc is not None:
            inc.record_root(DeterminismResult(True, stats))
        return DeterminismResult(True, stats)

    witness = decode_filesystem(domains, result.named_model)
    orders = _diverging_orders(
        witness, finals, {n: programs[n] for n in graph.nodes}, graph
    )
    if orders is None and options.use_elimination:
        # An eliminated resource masked the symbolic difference by
        # erroring on the witness state: the paper's "e1;e ≡ e2;e iff
        # e1 ≡ e2" step is incomplete for error-masking resources.
        # Re-check without elimination (sound and complete, slower).
        # dataclasses.replace carries every other option — including
        # the solver backend fields — unchanged.
        fallback = replace(options, use_elimination=False)
        retry = check_determinism(graph, programs, fallback)
        retry.stats.elimination_fallback = True
        retry.stats.total_seconds += stats.total_seconds
        return retry
    # Localize only once the verdict is final (the elimination
    # fallback above would discard this work and redo the analysis).
    race = localize_race(
        bank,
        domains,
        base_state,
        finals[sat_index][0],
        base_order,
        finals[sat_index][1],
        work_graph,
        {n: programs[n] for n in graph.nodes},
        query,
        sat_selector,
        max_conflicts=options.max_conflicts,
        deadline=deadline,
        descendants=explorer.descendants,
        witness=witness,
    )
    stats.solve_seconds = query.solve_seconds
    stats.sat_conflicts = query.conflicts
    stats.sat_decisions = query.decisions
    outcome_pair = None
    order_pair = None
    if orders is not None:
        order_pair = (orders[0], orders[1])
        outcome_pair = (orders[2], orders[3])
    nondet = DeterminismResult(
        False,
        stats,
        witness_fs=witness,
        witness_orders=order_pair,
        witness_outcomes=outcome_pair,
        race=race,
    )
    if inc is not None:
        inc.record_root(nondet)
    return nondet


#: Pool cube mode needs coarse grain to pay for itself: below this
#: many resources (post-elimination) the per-cube re-exploration of
#: memo-shared subtrees costs more than the overlap buys, so cube mode
#: uses the eager in-process scheduler instead.  Every §6 corpus
#: manifest sits below this threshold.
CUBE_POOL_GRAIN = 16


def _backend_factory(options: DeterminismOptions):
    """The ``backend=`` factory for this run's queries, or None for
    the plain reference solver (zero indirection on the default
    path)."""
    if options.solver == "cdcl" and options.portfolio <= 1:
        return None
    return parse_backend_spec(
        options.solver,
        workers=options.solver_workers,
        portfolio=options.portfolio,
    )


def _conquer_cubes(
    explorer: _Explorer,
    init: SymbolicState,
    root: frozenset,
    choices: Sequence[NodeId],
    options: DeterminismOptions,
) -> None:
    """Cube-and-conquer exploration: one cube per root frontier
    choice, each conquered by its own sub-explorer across
    ``options.solver_workers`` workers (:func:`repro.sat.cube.schedule`
    — results merged by cube index, so the outcome is independent of
    scheduling).  Merged finals land on ``explorer`` deduplicated by
    fingerprint in cube order, which reproduces the sequential DFS
    finals order; effort counters are summed (cross-cube memo sharing
    is lost, so ``branches_explored`` exceeds the sequential count —
    the classic cube-and-conquer overlap tax)."""
    bank = explorer.bank

    def run_cube(cube):
        sub = _Explorer(
            explorer.graph,
            explorer.programs,
            bank,
            options,
            explorer.deadline,
            template=explorer,
        )
        tick = time.perf_counter()
        state = apply_expr(bank, init, explorer.programs[cube.choice])
        sub.explore_seconds += time.perf_counter() - tick
        sub.branches += 1
        sub.run(
            state,
            remaining=root - {cube.choice},
            prefix=(cube.choice,),
        )
        return sub

    subs = schedule(
        split_frontier(choices), run_cube, workers=options.solver_workers
    )
    seen = set()
    merged: List[Tuple[SymbolicState, List[NodeId]]] = []
    for sub in subs:
        explorer.branches += sub.branches
        explorer.memo_hits += sub.memo_hits
        explorer.states_merged += sub.states_merged
        explorer.explore_seconds += sub.explore_seconds
        for state, order in sub.finals:
            fingerprint = state.fingerprint()
            if fingerprint in seen:
                explorer.memo_hits += 1
                continue
            seen.add(fingerprint)
            merged.append((state, order))
    explorer.finals = merged


def _unordered_pairs_commute(graph: "nx.DiGraph", matrix) -> bool:
    """True when every pair of resources with no ordering constraint
    between them commutes.  Any two topological linearizations are
    related by adjacent transpositions of unordered pairs, so this
    implies a unique outcome for every initial state (ordered pairs
    never swap and need no check)."""
    nodes = list(graph.nodes)
    reach = {n: nx.descendants(graph, n) for n in nodes}
    for i, a in enumerate(nodes):
        for b in nodes[i + 1 :]:
            if b in reach[a] or a in reach[b]:
                continue
            if not matrix[a][b]:
                return False
    return True


def _diverging_orders(
    witness: FileSystem,
    finals: Sequence[Tuple[SymbolicState, List[NodeId]]],
    original_programs: Dict[NodeId, fx.Expr],
    graph: "nx.DiGraph",
):
    """Concretely re-run the explored orders (with the *original*,
    unpruned programs) on the witness to exhibit two diverging ones.

    Eliminated resources are absent from the explored orders; they
    commute with everything after them, so appending them (in an order
    respecting their mutual dependencies) keeps the divergence visible
    while running full programs.
    """
    explored_nodes = set(finals[0][1])
    tail = [
        n
        for n in nx.topological_sort(graph)
        if n not in explored_nodes
    ]
    outcomes = []
    for _, order in finals:
        full_order = list(order) + tail
        program = seq(*[original_programs[n] for n in full_order])
        outcomes.append((full_order, eval_expr(program, witness)))
    base_order, base_outcome = outcomes[0]
    for other_order, other_outcome in outcomes[1:]:
        if other_outcome != base_outcome:
            return base_order, other_order, base_outcome, other_outcome
    return None
