"""Shared configuration for the §6 benchmark suite.

``REHEARSAL_BENCH_TIMEOUT`` (seconds, default 20) models the paper's
ten-minute budget: configurations that exceed it are recorded as
timeouts, exactly like the bars capped at "Timeout" in Fig. 11.
"""

import os

import pytest

BENCH_TIMEOUT = float(os.environ.get("REHEARSAL_BENCH_TIMEOUT", "20"))


@pytest.fixture(scope="session")
def bench_timeout() -> float:
    return BENCH_TIMEOUT
